//! Receiver-side overlap with `MPI_Parrived` (the paper's Table 2 "ready"
//! column): the receiver processes partitions as they land instead of
//! waiting for the whole buffer, overlapping its own compute with the
//! tail of the communication.
//!
//! Runs on the simulator so the timing is exact: we compare
//! receive-then-process (bulk) with process-as-arrived (pipelined
//! consumption) and report the application-availability metric.
//!
//! ```text
//! cargo run --release --example consumer_overlap
//! ```

use pcomm::netmodel::MachineConfig;
use pcomm::perfmodel::early_bird_utilization;
use pcomm::simcore::{Dur, Sim};
use pcomm::simmpi::part::{precv_init, psend_init, PartOptions};
use pcomm::simmpi::World;

fn main() {
    let n_parts = 8;
    let part_bytes = 1 << 20; // 1 MiB partitions: 40 µs wire each
    let process_us = 30.0; // receiver-side work per partition

    println!("consumer overlap: {n_parts} × 1 MiB partitions, {process_us} µs processing each");

    let bulk = run(n_parts, part_bytes, process_us, false);
    let piped = run(n_parts, part_bytes, process_us, true);
    println!("receive-all-then-process: {bulk:.1} µs");
    println!("process-as-arrived:       {piped:.1} µs");
    let total_work = process_us * n_parts as f64;
    println!(
        "overlap utilization: {:.0}% of the {total_work:.0} µs processing hidden",
        early_bird_utilization(bulk * 1e-6, piped * 1e-6, total_work * 1e-6) * 100.0
    );
}

/// Time from iteration start until the receiver has received AND
/// processed every partition.
fn run(n_parts: usize, part_bytes: usize, process_us: f64, pipelined: bool) -> f64 {
    let sim = Sim::new();
    let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 1, 1);
    let opts = PartOptions {
        first_iteration_cts: false,
        ..PartOptions::default()
    };
    let ps = psend_init(
        &world.comm_world(0),
        1,
        0,
        n_parts,
        part_bytes,
        n_parts,
        opts.clone(),
    );
    let pr = precv_init(
        &world.comm_world(1),
        0,
        0,
        n_parts,
        n_parts,
        part_bytes,
        opts,
    );

    sim.spawn({
        let ps = ps.clone();
        async move {
            ps.start().await;
            for p in 0..n_parts {
                ps.pready(p).await;
            }
            ps.wait().await;
        }
    });
    let done = sim.spawn({
        let sim = sim.clone();
        async move {
            pr.start().await;
            if pipelined {
                // Poll Parrived and process each partition as it lands.
                let mut processed = vec![false; n_parts];
                let mut left = n_parts;
                while left > 0 {
                    let mut progressed = false;
                    #[allow(clippy::needless_range_loop)] // index drives parrived(p) too
                    for p in 0..n_parts {
                        if !processed[p] && pr.parrived(p) {
                            sim.sleep(Dur::from_us_f64(process_us)).await;
                            processed[p] = true;
                            left -= 1;
                            progressed = true;
                        }
                    }
                    if !progressed {
                        // Nothing new yet: poll again shortly.
                        sim.sleep(Dur::from_us(1)).await;
                    }
                }
                pr.wait().await;
            } else {
                pr.wait().await;
                for _ in 0..n_parts {
                    sim.sleep(Dur::from_us_f64(process_us)).await;
                }
            }
            sim.now().as_us_f64()
        }
    });
    sim.run();
    done.try_take().unwrap()
}
