//! Shard-lock contention made visible: the same all-to-one workload run
//! on 1 shard and on 8 shards, traced with the unified `pcomm-trace`
//! subsystem. Prints the per-shard lock-wait summary for both runs and
//! writes Chrome trace-event JSON you can load in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! ```text
//! cargo run --release --example trace_contention
//! ```
//!
//! The same files can be produced from any run of your own program with
//! `PCOMM_TRACE=trace.json` (and `PCOMM_TRACE_REPORT=trace.txt`) in the
//! environment, and from the simulator with `figures trace`.

use pcomm::core::part::PartOptions;
use pcomm::core::{Comm, Universe};
use pcomm::trace::{chrome_trace_json, summary_report, EventKind, TraceData};

const RANKS: usize = 4;
const MSGS: usize = 200;
const BYTES: usize = 1024;
const N_PARTS: usize = 8;

/// Everyone hammers rank 0: eager floods from ranks 2.., a partitioned
/// stream (early-bird sends) from rank 1.
fn workload(comm: &Comm) {
    match comm.rank() {
        0 => {
            let precv = comm.precv_init(1, 9, N_PARTS, BYTES, PartOptions::default());
            precv.start();
            let mut buf = vec![0u8; BYTES];
            for _ in 0..(RANKS - 2) * MSGS {
                comm.recv_into(None, Some(5), &mut buf);
            }
            precv.wait();
        }
        1 => {
            let psend = comm.psend_init(0, 9, N_PARTS, BYTES, PartOptions::default());
            psend.start();
            for p in 0..N_PARTS {
                psend.write_partition(p, |b| b.fill(p as u8));
                psend.pready(p);
            }
            psend.wait();
        }
        _ => {
            let buf = vec![7u8; BYTES];
            for _ in 0..MSGS {
                comm.send(0, 5, &buf);
            }
        }
    }
    comm.barrier();
}

fn traced_run(shards: usize) -> TraceData {
    let (_, data) = Universe::new(RANKS)
        .with_shards(shards)
        .run_traced(|comm| workload(&comm));
    data
}

fn total_lock_wait_ns(data: &TraceData) -> u64 {
    data.events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::LockWait { wait_ns, .. } => Some(wait_ns),
            _ => None,
        })
        .sum()
}

fn main() {
    for shards in [1, 8] {
        let data = traced_run(shards);
        println!(
            "=== {shards} shard(s): {} events, {} dropped, total lock wait {:.1} us ===",
            data.events.len(),
            data.dropped,
            total_lock_wait_ns(&data) as f64 / 1e3
        );
        println!("{}", summary_report(&data.events, data.dropped));
        let path = format!("trace_contention_{shards}shard.json");
        match std::fs::write(&path, chrome_trace_json(&data.events, data.dropped)) {
            Ok(()) => println!("wrote {path} (load it in Perfetto)\n"),
            Err(e) => eprintln!("could not write {path}: {e}\n"),
        }
    }
}
