//! Multi-rank ring pipeline on the real runtime: every rank
//! simultaneously sends a partitioned buffer to its right neighbour and
//! receives one from its left — the communication skeleton of pipelined
//! stencil sweeps.
//!
//! Demonstrates that the partitioned API composes across more than two
//! ranks and that early partitions propagate around the ring before late
//! ones are even produced.
//!
//! ```text
//! cargo run --release --example ring_pipeline
//! ```

use std::time::Instant;

use pcomm::core::{part::PartOptions, Universe};

fn main() {
    let n_ranks = 4;
    let n_parts = 8;
    let part_bytes = 16 * 1024;
    let rounds = 10;

    println!(
        "ring pipeline: {n_ranks} ranks, {n_parts} partitions × {part_bytes} B, {rounds} rounds"
    );

    let times = Universe::new(n_ranks).with_shards(4).run(|comm| {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let psend = comm.psend_init(right, 0, n_parts, part_bytes, PartOptions::default());
        let precv = comm.precv_init(left, 0, n_parts, part_bytes, PartOptions::default());
        comm.barrier();
        let t0 = Instant::now();
        for round in 0..rounds {
            precv.start();
            psend.start();
            for p in 0..n_parts {
                // Produce partition p: stamp it with (rank, round, p).
                psend.write_partition(p, |buf| {
                    let stamp = (comm.rank() * 1000 + round * 10 + p) as u32;
                    for (i, b) in buf.iter_mut().enumerate() {
                        *b = (stamp as usize + i) as u8;
                    }
                });
                psend.pready(p);
            }
            psend.wait();
            precv.wait();
            // Verify the neighbour's stamps.
            for p in 0..n_parts {
                let stamp = (left * 1000 + round * 10 + p) as u32;
                let data = precv.partition(p);
                assert!(
                    data.iter()
                        .enumerate()
                        .all(|(i, &b)| b == (stamp as usize + i) as u8),
                    "rank {} round {round} partition {p} corrupted",
                    comm.rank()
                );
            }
        }
        t0.elapsed()
    });
    let times = times.unwrap_or_else(|err| {
        eprintln!("ring_pipeline: universe failed: {err}");
        std::process::exit(2);
    });

    for (rank, t) in times.iter().enumerate() {
        println!("rank {rank}: {rounds} rounds in {t:?}");
    }
    println!("ring verified: every rank received every neighbour partition intact.");
}
