//! Quickstart: MPI-4 partitioned communication on the real in-process
//! runtime — two ranks, four worker threads, early-bird sends.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;

use pcomm::core::{part::PartOptions, Universe};

fn main() {
    let n_threads = 4;
    let theta = 2; // partitions per thread
    let n_parts = n_threads * theta;
    let part_bytes = 64 * 1024;

    println!(
        "pcomm quickstart: 2 ranks, {n_threads} threads, {n_parts} partitions of {part_bytes} B"
    );

    Universe::new(2)
        .with_shards(n_threads)
        .run(|comm| {
            if comm.rank() == 0 {
                // ---- sender ------------------------------------------------
                let psend = comm.psend_init(1, 0, n_parts, part_bytes, PartOptions::default());
                let t0 = Instant::now();
                psend.start();
                std::thread::scope(|s| {
                    for t in 0..n_threads {
                        let psend = psend.clone();
                        s.spawn(move || {
                            for j in 0..theta {
                                let p = t + j * n_threads;
                                // "Compute" the partition, then hand it to MPI.
                                psend.write_partition(p, |buf| {
                                    buf.fill(p as u8);
                                });
                                psend.pready(p); // early-bird: leaves immediately
                            }
                        });
                    }
                });
                psend.wait();
                println!(
                    "rank 0: all {n_parts} partitions sent in {:?}",
                    t0.elapsed()
                );
            } else {
                // ---- receiver ----------------------------------------------
                let precv = comm.precv_init(0, 0, n_parts, part_bytes, PartOptions::default());
                precv.start();
                // Poll a couple of partitions while the rest is in flight.
                let mut first_seen = None;
                while first_seen.is_none() {
                    for p in 0..n_parts {
                        if precv.parrived(p) {
                            first_seen = Some(p);
                            break;
                        }
                    }
                }
                precv.wait();
                for p in 0..n_parts {
                    assert!(
                        precv.partition(p).iter().all(|&b| b == p as u8),
                        "partition {p} corrupted"
                    );
                }
                println!(
                    "rank 1: first partition observed early: #{}, all {n_parts} verified",
                    first_seen.unwrap()
                );
            }
        })
        .unwrap_or_else(|err| {
            eprintln!("quickstart: universe failed: {err}");
            std::process::exit(2);
        });

    println!("done.");
}
