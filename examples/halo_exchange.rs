//! Halo exchange for a 3D finite-difference stencil — the workload of the
//! paper's Appendix A.2.2 — comparing bulk-synchronized and partitioned
//! pipelined communication on the real runtime.
//!
//! Two ranks each own a 64³ block; after every "compute" step they
//! exchange a ghost plane. Threads finish their sub-planes at different
//! times (the stencil's algorithmic imbalance, δ = 0.5); partitioned
//! communication lets early sub-planes leave immediately.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use std::time::Instant;

use pcomm::core::{part::PartOptions, sync::spin_for_micros, Universe};
use pcomm::perfmodel::{ComputeProfile, DelayModel, NoiseModel};
use pcomm::prng::Xoshiro256pp;
use pcomm::workloads::{partitions_of_thread, DelaySchedule};

fn main() {
    let n = 64usize; // block edge
    let plane_bytes = n * n * 8; // one f64 ghost plane
    let n_threads = 4;
    let theta = 2;
    let n_parts = n_threads * theta;
    let part_bytes = plane_bytes / n_parts;
    let steps = 20;

    // Appendix A.2.2 stencil delay model (δ = 0.5 algorithmic imbalance).
    let model = DelayModel::new(
        ComputeProfile::stencil3d(),
        NoiseModel {
            epsilon: 0.04,
            delta: 0.5,
        },
    );
    let sched = DelaySchedule::GaussianCompute { model };
    println!(
        "halo exchange: {n}³ block, {plane_bytes} B plane, {n_parts} partitions, γ₁ = {:.2} µs/MB",
        pcomm::perfmodel::s_per_b_to_us_per_mb(model.gamma(1)),
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 * (n_threads + 1) {
        println!(
            "note: {cores} core(s) available for {} threads — wall-clock numbers below \
             reflect scheduler oversubscription, not communication overhead; \
             use the simulator (`figures fig8`) for calibrated timing",
            2 * (n_threads + 1)
        );
    }

    for (label, pipelined) in [
        ("bulk (single message)", false),
        ("partitioned (pipelined)", true),
    ] {
        let wall = run_exchange(
            n_threads,
            theta,
            part_bytes,
            steps,
            pipelined,
            sched.clone(),
        );
        println!("{label:<26} {steps} steps in {wall:?}");
    }
}

fn run_exchange(
    n_threads: usize,
    theta: usize,
    part_bytes: usize,
    steps: usize,
    pipelined: bool,
    sched: DelaySchedule,
) -> std::time::Duration {
    let n_parts = n_threads * theta;
    let out = Universe::new(2).with_shards(n_threads).run(|comm| {
        let peer = 1 - comm.rank();
        let psend = comm.psend_init(peer, 0, n_parts, part_bytes, PartOptions::default());
        let precv = comm.precv_init(peer, 0, n_parts, part_bytes, PartOptions::default());
        let mut rng = Xoshiro256pp::seed_from_u64(42 + comm.rank() as u64);
        comm.barrier();
        let t0 = Instant::now();
        for _step in 0..steps {
            let delays = sched.ready_times(n_threads, theta, part_bytes, &mut rng);
            precv.start();
            psend.start();
            if pipelined {
                // Each thread computes its sub-planes and marks them ready.
                std::thread::scope(|s| {
                    for t in 0..n_threads {
                        let psend = psend.clone();
                        let delays = &delays;
                        s.spawn(move || {
                            let mut elapsed = 0.0;
                            for p in partitions_of_thread(t, n_threads, theta) {
                                let ready = delays[p].as_us_f64();
                                spin_for_micros(ready - elapsed);
                                elapsed = ready;
                                psend.pready(p);
                            }
                        });
                    }
                });
            } else {
                // Bulk: compute everything, synchronize, then send.
                std::thread::scope(|s| {
                    for t in 0..n_threads {
                        let delays = &delays;
                        s.spawn(move || {
                            let last = partitions_of_thread(t, n_threads, theta)
                                .into_iter()
                                .map(|p| delays[p].as_us_f64())
                                .fold(0.0, f64::max);
                            spin_for_micros(last);
                        });
                    }
                });
                for p in 0..n_parts {
                    psend.pready(p);
                }
            }
            psend.wait();
            precv.wait();
        }
        t0.elapsed()
    });
    out.unwrap_or_else(|err| {
        eprintln!("halo_exchange: universe failed: {err}");
        std::process::exit(2);
    })
    .into_iter()
    .max()
    .unwrap()
}
