//! Message aggregation (paper §4.2.2 / Fig. 7): sweep the aggregation
//! bound (`MPIR_CVAR_PART_AGGR_SIZE` analogue) for a many-small-partitions
//! workload and print the overhead against the single-message bound.
//!
//! ```text
//! cargo run --release --example aggregation_sweep
//! ```

use pcomm::netmodel::MachineConfig;
use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};

fn main() {
    let cfg = MachineConfig::meluxina();
    let n_threads = 4;
    let theta = 32; // 128 partitions
    let n_parts = n_threads * theta;
    let iters = 40;
    let warmup = 1;

    println!("aggregation sweep: {n_threads} threads × θ={theta} partitions");
    println!(
        "{:>10}  {:>10}  {:>12}  {:>12}  {:>14}",
        "total", "aggr", "msgs", "time [us]", "vs single"
    );

    for total in [16 << 10, 64 << 10, 256 << 10, 1 << 20] {
        let part_bytes = total / n_parts;
        let base = Scenario::immediate(n_threads, theta, part_bytes, iters + warmup);
        let mean = |a: Approach, sc: &Scenario| -> f64 {
            let times = run_scenario(&cfg, 1, 3, a, sc);
            let xs: Vec<f64> = times[warmup..].iter().map(|t| t.as_us_f64()).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let single = mean(Approach::PtpSingle, &base);
        for aggr in [None, Some(512usize), Some(2048), Some(16384)] {
            let mut sc = base.clone();
            sc.aggr_size = aggr;
            let layout = pcomm::core::part::negotiate_layout(n_parts, n_parts, part_bytes, aggr);
            let t = mean(Approach::PtpPart, &sc);
            println!(
                "{:>10}  {:>10}  {:>12}  {:>12.2}  {:>13.1}x",
                human(total),
                aggr.map(human).unwrap_or_else(|| "off".into()),
                layout.n_msgs(),
                t,
                t / single
            );
        }
        println!(
            "{:>10}  {:>10}  {:>12}  {:>12.2}  {:>13.1}x",
            human(total),
            "(single)",
            1,
            single,
            1.0
        );
        println!();
    }
}

fn human(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}
