//! Classic ping-pong microbenchmark (OSU-style) on the real runtime:
//! half round-trip latency and bandwidth across message sizes, through
//! the eager and rendezvous protocols.
//!
//! ```text
//! cargo run --release --example pingpong
//! ```

use std::time::Instant;

use pcomm::core::{Comm, Universe};
use pcomm::perfmodel::perceived_bandwidth;

fn round_trip(comm: &Comm, peer: usize, buf: &mut [u8]) {
    if comm.rank() == 0 {
        comm.send(peer, 0, buf);
        comm.recv_into(Some(peer), Some(0), buf);
    } else {
        comm.recv_into(Some(peer), Some(0), buf);
        comm.send(peer, 0, buf);
    }
}

fn main() {
    let warmup = 20;
    let iters = 200;
    println!("in-process ping-pong (eager <= 64 KiB, rendezvous above)");
    println!(
        "{:>10}  {:>14}  {:>16}",
        "size", "latency [us]", "bandwidth [GB/s]"
    );
    let mut size = 8usize;
    while size <= 4 << 20 {
        let out = Universe::new(2).run(|comm| {
            let peer = 1 - comm.rank();
            let mut buf = vec![0u8; size];
            for _ in 0..warmup {
                round_trip(&comm, peer, &mut buf);
            }
            comm.barrier();
            let t0 = Instant::now();
            for _ in 0..iters {
                round_trip(&comm, peer, &mut buf);
            }
            t0.elapsed()
        });
        let out = out.unwrap_or_else(|err| {
            eprintln!("pingpong: universe failed: {err}");
            std::process::exit(2);
        });
        let elapsed = out[0].max(out[1]);
        let half_rt_us = elapsed.as_secs_f64() * 1e6 / (iters as f64) / 2.0;
        let bw = perceived_bandwidth(size, half_rt_us * 1e-6) / 1e9;
        println!("{:>10}  {:>14.2}  {:>16.2}", human(size), half_rt_us, bw);
        size *= 4;
    }
}

fn human(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}
