//! The early-bird effect (paper §4.3 / Fig. 8) on the simulated MeluXina:
//! sweep the message size and print the measured gain of pipelined
//! strategies over the bulk-synchronized single message, next to the
//! analytical prediction of eq. (4).
//!
//! ```text
//! cargo run --release --example early_bird
//! ```

use pcomm::netmodel::MachineConfig;
use pcomm::perfmodel::{eta_large, us_per_mb_to_s_per_b};
use pcomm::simcore::Dur;
use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};

fn main() {
    let cfg = MachineConfig::meluxina();
    let n_threads = 4;
    let gamma = us_per_mb_to_s_per_b(100.0); // 100 µs/MB delay rate
    let iters = 40;
    let warmup = 1;

    println!("early-bird gain, γ = 100 µs/MB, {n_threads} threads / partitions");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>12}  {:>10}",
        "total", "single [us]", "part [us]", "gain", "theory"
    );

    let ideal = eta_large(n_threads as u64, 1, gamma, cfg.bandwidth);
    let mut total = 8 << 10;
    while total <= 64 << 20 {
        let part_bytes = total / n_threads;
        let mut sc = Scenario::immediate(n_threads, 1, part_bytes, iters + warmup);
        let d = Dur::from_secs_f64(gamma * part_bytes as f64);
        let n = sc.delays.len();
        sc.delays[n - 1] = d;

        let mean = |a: Approach| -> f64 {
            let times = run_scenario(&cfg, 1, 7, a, &sc);
            let xs: Vec<f64> = times[warmup..].iter().map(|t| t.as_us_f64()).collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let single = mean(Approach::PtpSingle);
        let part = mean(Approach::PtpPart);
        println!(
            "{:>10}  {:>12.2}  {:>12.2}  {:>12.3}  {:>10.3}",
            human(total),
            single,
            part,
            single / part,
            ideal
        );
        total *= 4;
    }
    println!("\n(eq. 4 gain is the large-size asymptote; at small sizes latency and");
    println!(" thread contention make pipelining lose, as in the paper's Fig. 8)");
}

fn human(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else {
        format!("{}KiB", b >> 10)
    }
}
