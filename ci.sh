#!/bin/sh
# Offline CI: format check, release build, default tests, opt-in
# randomized property tests, bench compilation. Mirrors what reviewers
# run; no network access required at any step.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings (workspace, offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (workspace, offline) =="
cargo build --workspace --release --offline

echo "== cargo test (workspace, offline) =="
cargo test --workspace -q --offline

echo "== cargo test --features proptests (offline) =="
cargo test -q --offline --features proptests

echo "== cargo bench --no-run (offline) =="
cargo bench --workspace --no-run --offline

echo "== hotpath bench smoke (release, quick, scratch output) =="
mkdir -p target
cargo run --release -p pcomm-bench --bin hotpath --offline -- \
    --quick --out target/bench_hotpath_smoke.json

echo "== chaos smoke (seeded faults, hard timeout, must never hang) =="
# Examples under a seeded drop/delay/reorder plan with a bounded retry
# budget and an armed watchdog. Two acceptable outcomes: the retries
# recover everything (exit 0) or the run fails *cleanly* with a typed
# PcommError (exit 2). A hang (timeout exit 124) or a panic/abort is a
# CI failure. `dup` is deliberately absent: duplicated eager messages
# can satisfy a later iteration's receive with stale data, turning a
# clean chaos error into an assertion panic.
chaos_smoke() {
    name="$1"; spec="$2"
    echo "-- $name under PCOMM_FAULTS='$spec'"
    status=0
    PCOMM_FAULTS="$spec" PCOMM_WATCHDOG_MS=5000 \
        timeout 120 "./target/release/examples/$name" >/dev/null 2>&1 || status=$?
    case "$status" in
        0) echo "   recovered (exit 0)" ;;
        2) echo "   clean typed error (exit 2)" ;;
        124) echo "   HANG: watchdog failed to fire" >&2; exit 1 ;;
        *) echo "   unclean exit $status (panic/abort?)" >&2; exit 1 ;;
    esac
}
cargo build --release --offline --example pingpong --example ring_pipeline
chaos_smoke pingpong      "seed=42,drop=0.05,delay=0.05:200,reorder=0.02,retries=3"
chaos_smoke ring_pipeline "seed=42,drop=0.05,delay=0.05:200,reorder=0.02,retries=3"
# Guaranteed loss: every attempt drops, retries exhaust — the run must
# come back as a clean MessageLost/Stall error, never a hang.
chaos_smoke pingpong      "seed=7,drop=1.0,retries=2"

echo "== verify (PCOMM_VERIFY=1 examples + schedule-exploration sweep) =="
# Every example runs with the verification layer armed: the run captures
# an analysis-grade trace and teardown executes all three pcomm-verify
# passes (happens-before races, deadlock verdicts, protocol lints); any
# finding turns the exit status nonzero. Simulator-only examples ignore
# the knob and simply rerun.
cargo build --release --offline --examples
for name in quickstart pingpong ring_pipeline halo_exchange consumer_overlap \
            early_bird aggregation_sweep trace_contention; do
    echo "-- $name under PCOMM_VERIFY=1"
    PCOMM_VERIFY=1 timeout 120 "./target/release/examples/$name" >/dev/null
done
# Bounded schedule exploration in the simulator: the Fig. 3 scenario
# under all 8 strategies × seeded pready-jitter permutations, all three
# verification passes per interleaving. A finding prints the seed that
# replays it against the real runtime via PCOMM_FAULTS.
cargo run --release -p pcomm-bench --bin verify_sweep --offline -- --quick

echo "== net (multi-process over UDS: launcher + examples + bench smoke) =="
# The unmodified examples as two real OS processes wired over Unix
# domain sockets by pcomm-launch. A hang (timeout exit 124) is a CI
# failure — teardown must be bounded even across processes.
cargo build --release --offline -p pcomm-net --bin pcomm-launch
net_smoke() {
    name="$1"
    echo "-- $name under pcomm-launch -n 2 (uds)"
    status=0
    timeout 120 ./target/release/pcomm-launch -n 2 -- \
        "./target/release/examples/$name" >/dev/null 2>&1 || status=$?
    case "$status" in
        0) echo "   ok" ;;
        124) echo "   HANG over the wire" >&2; exit 1 ;;
        *) echo "   failed with exit $status" >&2; exit 1 ;;
    esac
}
net_smoke quickstart
net_smoke pingpong
net_smoke halo_exchange
# netbench smoke: every fabric, scratch output (committed BENCH_net.json
# stays untouched). --guard fails the stage if the measured partitioned
# bandwidth regresses below the committed baseline on any fabric the
# baseline records — uds always, ipc wherever the platform supports it. The
# partitioned bench runs at full rep depth (part-only skips pingpongs
# and the sweep, so it stays fast); the shared 1-CPU container can
# still depress a whole run, so a guard failure gets bounded retries
# before it fails the stage.
for attempt in 1 2 3; do
    if PCOMM_NETBENCH_PART_ONLY=1 cargo run --release -p pcomm-bench --bin netbench --offline -- \
        --out target/bench_net_smoke.json --guard BENCH_net.json; then
        break
    elif [ "$attempt" = 3 ]; then
        echo "netbench guard failed on all $attempt attempts" >&2
        exit 1
    else
        echo "netbench guard attempt $attempt failed; retrying" >&2
    fi
done

echo "== ipc (same-host segment fabric: launcher examples + audited cell) =="
# The same examples over the shared-memory ipc fabric
# (PCOMM_NET_FABRIC=ipc): a memfd segment bootstrapped over the UDS
# mesh, then zero syscalls per message. Hard timeout as always —
# futex-parked progress threads must still tear down bounded. The
# netbench guard above already floors ipc partitioned bandwidth against
# the committed baseline. On platforms without the raw-syscall layer
# the runtime falls back to sockets, so this stage degrades instead of
# failing there. DESIGN.md §15.
ipc_smoke() {
    name="$1"
    echo "-- $name under pcomm-launch -n 2 (ipc)"
    status=0
    PCOMM_NET_FABRIC=ipc timeout 120 ./target/release/pcomm-launch -n 2 -- \
        "./target/release/examples/$name" >/dev/null 2>&1 || status=$?
    case "$status" in
        0) echo "   ok" ;;
        124) echo "   HANG on the ipc fabric" >&2; exit 1 ;;
        *) echo "   failed with exit $status" >&2; exit 1 ;;
    esac
}
ipc_smoke pingpong
ipc_smoke halo_exchange
# One audited cell: a verified ipc run persists per-rank .events rings
# like any other fabric (one lane, epoch pinned to 0) and the merged
# cross-process audit must come back clean.
cargo build --release --offline -p pcomm-verify --bin pcomm-audit
ipc_ring_dir=$(mktemp -d)
status=0
PCOMM_NET_FABRIC=ipc PCOMM_VERIFY=1 PCOMM_TRACE="$ipc_ring_dir/trace.json" \
    timeout 120 ./target/release/pcomm-launch -n 2 -- \
    ./target/release/examples/halo_exchange >/dev/null 2>&1 || status=$?
if [ "$status" != 0 ]; then
    echo "verified ipc halo_exchange failed with exit $status" >&2
    exit 1
fi
if ./target/release/pcomm-audit "$ipc_ring_dir"/trace.json.rank*.events >/dev/null; then
    echo "-- ipc audit cell clean"
else
    echo "AUDIT FINDINGS for the ipc cell:" >&2
    ./target/release/pcomm-audit "$ipc_ring_dir"/trace.json.rank*.events >&2 || true
    exit 1
fi
rm -rf "$ipc_ring_dir"

echo "== wire chaos (seeded wire faults under pcomm-launch, must never hang) =="
# The self-healing matrix: reset, torn-write/short-read, and lane-kill
# plans over two examples running as real processes. Same contract as
# the in-process chaos smoke — recover (exit 0) or fail with a typed
# error (exit 2); a hang past the watchdog (timeout exit 124) or a
# panic/abort fails CI. Lane kills run on a 3-lane mesh so the stream
# has survivors to fail over to.
wire_chaos() {
    name="$1"; spec="$2"; lanes="${3:-2}"
    echo "-- $name under pcomm-launch -n 2, PCOMM_FAULTS='$spec' (lanes=$lanes)"
    status=0
    PCOMM_FAULTS="$spec" PCOMM_WATCHDOG_MS=5000 PCOMM_NET_LANES="$lanes" \
        timeout 120 ./target/release/pcomm-launch -n 2 -- \
        "./target/release/examples/$name" >/dev/null 2>&1 || status=$?
    case "$status" in
        0) echo "   recovered (exit 0)" ;;
        2) echo "   clean typed error (exit 2)" ;;
        124) echo "   HANG over the wire: watchdog failed to fire" >&2; exit 1 ;;
        *) echo "   unclean exit $status (panic/abort?)" >&2; exit 1 ;;
    esac
}
for name in pingpong halo_exchange; do
    wire_chaos "$name" "seed=42,reset=0.001"
    wire_chaos "$name" "seed=42,torn=0.3,shortread=0.3"
    wire_chaos "$name" "seed=42,lanekill=2:65536" 3
done
# Degraded-bandwidth floor: kill a data lane mid-stream and require the
# failover path to keep at least half the healthy partitioned bandwidth
# (bounded retries against shared-box noise, like the guard above).
for attempt in 1 2 3; do
    if PCOMM_NETBENCH_PART_ONLY=1 cargo run --release -p pcomm-bench --bin netbench --offline -- \
        --quick --degraded --out target/bench_net_degraded.json; then
        break
    elif [ "$attempt" = 3 ]; then
        echo "netbench --degraded failed on all $attempt attempts" >&2
        exit 1
    else
        echo "netbench --degraded attempt $attempt failed; retrying" >&2
    fi
done

echo "== audit (wire-chaos matrix with rings armed; every cell must audit clean) =="
# The same matrix as above, re-run with PCOMM_VERIFY=1 and PCOMM_TRACE
# so every rank persists its analysis-grade .events ring (typed-error
# exits included). pcomm-audit merges each cell's rings and must find
# nothing: chaos proves the run survives, the audit proves the survival
# was correct (wire FSM, stream-ledger soundness, cross-process
# happens-before). Audit wall time lands in target/bench_audit_smoke.json
# (committed record: the "audit" object in BENCH_net.json). DESIGN.md §14.
cargo build --release --offline -p pcomm-verify --bin pcomm-audit
audit_cell() {
    name="$1"; spec="$2"; lanes="${3:-2}"
    echo "-- audit $name under PCOMM_FAULTS='$spec' (lanes=$lanes)"
    ring_dir=$(mktemp -d)
    status=0
    PCOMM_FAULTS="$spec" PCOMM_WATCHDOG_MS=5000 PCOMM_NET_LANES="$lanes" \
        PCOMM_VERIFY=1 PCOMM_TRACE="$ring_dir/trace.json" \
        timeout 120 ./target/release/pcomm-launch -n 2 -- \
        "./target/release/examples/$name" >/dev/null 2>&1 || status=$?
    case "$status" in
        0|2) ;;
        124) echo "   HANG over the wire: watchdog failed to fire" >&2; exit 1 ;;
        *) echo "   unclean exit $status (panic/abort?)" >&2; exit 1 ;;
    esac
    if ./target/release/pcomm-audit --bench-json target/bench_audit_smoke.json \
        "$ring_dir"/trace.json.rank*.events >/dev/null; then
        echo "   audits clean (run exit $status)"
    else
        echo "   AUDIT FINDINGS for $name under '$spec':" >&2
        ./target/release/pcomm-audit "$ring_dir"/trace.json.rank*.events >&2 || true
        exit 1
    fi
    rm -rf "$ring_dir"
}
for name in pingpong halo_exchange; do
    audit_cell "$name" "seed=42,reset=0.001"
    audit_cell "$name" "seed=42,torn=0.3,shortread=0.3"
    audit_cell "$name" "seed=42,lanekill=2:65536" 3
done

echo "== safety lint (SAFETY / ORDERING / PANIC justification comments) =="
# Every `unsafe` site repo-wide needs a `// SAFETY:` justification; on
# the wire hot path (crates/core/src/transport.rs + crates/net/) every
# Relaxed atomic needs `// ORDERING:` and every unwrap/expect needs
# `// PANIC:`. See crates/bench/src/bin/safety_lint.rs.
cargo run --release -p pcomm-bench --bin safety_lint --offline

echo "CI OK"
