#!/bin/sh
# Offline CI: format check, release build, default tests, opt-in
# randomized property tests, bench compilation. Mirrors what reviewers
# run; no network access required at any step.
set -eu

cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings (workspace, offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release (workspace, offline) =="
cargo build --workspace --release --offline

echo "== cargo test (workspace, offline) =="
cargo test --workspace -q --offline

echo "== cargo test --features proptests (offline) =="
cargo test -q --offline --features proptests

echo "== cargo bench --no-run (offline) =="
cargo bench --workspace --no-run --offline

echo "== hotpath bench smoke (release, quick, scratch output) =="
mkdir -p target
cargo run --release -p pcomm-bench --bin hotpath --offline -- \
    --quick --out target/bench_hotpath_smoke.json

echo "CI OK"
