//! # pcomm — Partitioned Communication in MPI, reproduced in Rust
//!
//! A full reproduction of *Quantifying the Performance Benefits of
//! Partitioned Communication in MPI* (Gillis, Raffenetti, Zhou, Guo,
//! Thakur — ICPP 2023): the MPI-4 partitioned-communication machinery the
//! paper improves in MPICH, the seven MPI-3.1 strategies it compares
//! against, the analytical performance model of §2.2/Appendix A, and the
//! benchmark harness that regenerates every figure.
//!
//! The workspace is layered:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `pcomm-core` | **real** multithreaded in-process runtime: tag matching, eager/rendezvous, RMA windows, partitioned requests with real atomic counters and early-bird sends |
//! | [`simcore`] | `pcomm-simcore` | deterministic discrete-event async executor on virtual time |
//! | [`netmodel`] | `pcomm-netmodel` | MeluXina-calibrated cost model: UCX-style protocols, VCIs, contention |
//! | [`simmpi`] | `pcomm-simmpi` | simulated MPI runtime + the eight benchmark strategies of Tables 1–2 |
//! | [`perfmodel`] | `pcomm-perfmodel` | closed-form gain/delay model (eqs. 1–9) and the paper's measurement statistics |
//! | [`workloads`] | `pcomm-workloads` | compute/delay generators (Gaussian noise model, FFT/stencil presets) |
//! | [`prng`] | `pcomm-prng` | deterministic xoshiro256++ / Gaussian sampling |
//! | [`trace`] | `pcomm-trace` | unified low-overhead tracing: typed events, per-thread rings, Chrome JSON + summary exporters |
//! | [`net`] | `pcomm-net` | inter-process transport: versioned wire framing, UDS/TCP endpoints, mesh rendezvous, `pcomm-launch` |
//!
//! ## Quickstart (real runtime)
//!
//! ```
//! use pcomm::core::{Universe, part::PartOptions};
//!
//! Universe::new(2).with_shards(4).run(|comm| {
//!     if comm.rank() == 0 {
//!         let psend = comm.psend_init(1, 7, 4, 1024, PartOptions::default());
//!         psend.start();
//!         for p in 0..4 {
//!             psend.write_partition(p, |buf| buf.fill(p as u8));
//!             psend.pready(p); // early-bird: sends as soon as ready
//!         }
//!         psend.wait();
//!     } else {
//!         let precv = comm.precv_init(0, 7, 4, 1024, PartOptions::default());
//!         precv.start();
//!         precv.wait();
//!         assert_eq!(precv.partition(3)[0], 3);
//!     }
//! }).unwrap();
//! ```
//!
//! ## Quickstart (simulator + model)
//!
//! ```
//! use pcomm::netmodel::MachineConfig;
//! use pcomm::simmpi::scenario::{run_scenario, Approach, Scenario};
//! use pcomm::perfmodel::eta_large;
//!
//! let sc = Scenario::immediate(4, 1, 4096, 3);
//! let times = run_scenario(&MachineConfig::meluxina_quiet(), 1, 0,
//!                          Approach::PtpPart, &sc);
//! assert_eq!(times.len(), 3);
//! // Theoretical early-bird gain for γ = 100 µs/MB, N = 4, β = 25 GB/s:
//! assert!((eta_large(4, 1, 1e-10, 25e9) - 8.0 / 3.0).abs() < 1e-9);
//! ```

pub use pcomm_core as core;
pub use pcomm_net as net;
pub use pcomm_netmodel as netmodel;
pub use pcomm_perfmodel as perfmodel;
pub use pcomm_prng as prng;
pub use pcomm_simcore as simcore;
pub use pcomm_simmpi as simmpi;
pub use pcomm_trace as trace;
pub use pcomm_workloads as workloads;
