//! Criterion benches on the simulation stack itself: executor throughput
//! and full-scenario simulation cost (how fast the figures regenerate).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcomm_netmodel::MachineConfig;
use pcomm_simcore::{Dur, Sim};
use pcomm_simmpi::scenario::{run_scenario, Approach, Scenario};

/// Raw executor throughput: tasks ping-ponging through timers.
fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("simcore_executor");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for n_tasks in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("timer_storm", n_tasks), &n_tasks, |b, &n| {
            b.iter(|| {
                let sim = Sim::new();
                for i in 0..n as u64 {
                    let s = sim.clone();
                    sim.spawn(async move {
                        for k in 0..20u64 {
                            s.sleep(Dur::from_ns((i * 7 + k) % 100 + 1)).await;
                        }
                    });
                }
                sim.run();
                sim.polls()
            })
        });
    }
    g.finish();
}

/// End-to-end scenario simulation cost per strategy (small scenario).
fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("simmpi_scenarios");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let cfg = MachineConfig::meluxina();
    for a in Approach::ALL {
        let sc = Scenario::immediate(8, 1, 4096, 10);
        g.bench_with_input(
            BenchmarkId::new("iterate", a.label().replace(' ', "_")),
            &sc,
            |b, sc| b.iter(|| run_scenario(&cfg, 2, 1, a, sc)),
        );
    }
    g.finish();
}

/// The congestion scenario the paper's Fig. 5 needs (heaviest case).
fn bench_fig5_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("simmpi_fig5_cell");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let cfg = MachineConfig::meluxina();
    let sc = Scenario::immediate(32, 1, 512, 10);
    for a in [Approach::PtpPart, Approach::PtpMany, Approach::RmaManyPassive] {
        g.bench_with_input(
            BenchmarkId::new("32threads", a.label().replace(' ', "_")),
            &sc,
            |b, sc| b.iter(|| run_scenario(&cfg, 1, 1, a, sc)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_executor, bench_scenarios, bench_fig5_cell);
criterion_main!(benches);
