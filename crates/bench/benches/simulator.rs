//! Benches on the simulation stack itself: executor throughput and
//! full-scenario simulation cost (how fast the figures regenerate).
//!
//! Plain timing harness (no external bench framework); see
//! `real_runtime.rs` for the conventions. Run with
//! `cargo bench --bench simulator`.

use std::time::{Duration, Instant};

use pcomm_netmodel::MachineConfig;
use pcomm_simcore::{Dur, Sim};
use pcomm_simmpi::scenario::{run_scenario, Approach, Scenario};

const SAMPLES: usize = 10;

fn bench<T>(group: &str, id: &str, mut f: impl FnMut() -> T) {
    f(); // warm-up
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let t0 = Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed());
    }
    let min = samples.iter().copied().min().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group:<20} {id:<36} min {:>10.2?}  mean {:>10.2?}  ({SAMPLES} samples)",
        min, mean,
    );
}

/// Raw executor throughput: tasks ping-ponging through timers.
fn bench_executor() {
    for n_tasks in [10usize, 100, 1000] {
        bench(
            "simcore_executor",
            &format!("timer_storm/{n_tasks}"),
            || {
                let sim = Sim::new();
                for i in 0..n_tasks as u64 {
                    let s = sim.clone();
                    sim.spawn(async move {
                        for k in 0..20u64 {
                            s.sleep(Dur::from_ns((i * 7 + k) % 100 + 1)).await;
                        }
                    });
                }
                sim.run();
                sim.polls()
            },
        );
    }
}

/// End-to-end scenario simulation cost per strategy (small scenario).
fn bench_scenarios() {
    let cfg = MachineConfig::meluxina();
    for a in Approach::ALL {
        let sc = Scenario::immediate(8, 1, 4096, 10);
        let id = format!("iterate/{}", a.label().replace(' ', "_"));
        bench("simmpi_scenarios", &id, || run_scenario(&cfg, 2, 1, a, &sc));
    }
}

/// The congestion scenario the paper's Fig. 5 needs (heaviest case).
fn bench_fig5_cell() {
    let cfg = MachineConfig::meluxina();
    let sc = Scenario::immediate(32, 1, 512, 10);
    for a in [
        Approach::PtpPart,
        Approach::PtpMany,
        Approach::RmaManyPassive,
    ] {
        let id = format!("32threads/{}", a.label().replace(' ', "_"));
        bench("simmpi_fig5_cell", &id, || run_scenario(&cfg, 1, 1, a, &sc));
    }
}

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    if want("executor") {
        bench_executor();
    }
    if want("scenarios") {
        bench_scenarios();
    }
    if want("fig5") {
        bench_fig5_cell();
    }
}
