//! Benches on the REAL multithreaded runtime (`pcomm-core`): wall-clock
//! analogues of the paper's figures.
//!
//! Plain timing harness (no external bench framework): each case is run
//! a fixed number of times after one warm-up, and the minimum and mean
//! are printed — the minimum is the robust statistic on noisy CI hosts.
//! Run with `cargo bench --bench real_runtime`.

use std::time::{Duration, Instant};

use pcomm_core::strategies::{measure, RealApproach, RealScenario};

const SAMPLES: usize = 10;

fn bench(group: &str, id: &str, mut f: impl FnMut() -> Duration) {
    f(); // warm-up
    let mut samples = Vec::with_capacity(SAMPLES);
    let wall = Instant::now();
    for _ in 0..SAMPLES {
        samples.push(f());
    }
    let wall = wall.elapsed();
    let min = samples.iter().copied().min().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group:<24} {id:<36} min {:>10.2?}  mean {:>10.2?}  ({SAMPLES} samples, {:.1?} wall)",
        min, mean, wall,
    );
}

/// Steady-state overhead: run a few iterations, discard the warm-up,
/// return the minimum (robust against scheduler noise on small hosts).
fn steady(a: RealApproach, sc: &RealScenario) -> Duration {
    let times = measure(a, sc);
    times[1..].iter().copied().min().unwrap()
}

/// Fig. 4 analogue: single thread, one partition, across sizes.
fn bench_fig4_latency() {
    for size in [1 << 10, 64 << 10, 1 << 20] {
        for a in [
            RealApproach::PtpPart,
            RealApproach::PtpPartOld,
            RealApproach::PtpSingle,
        ] {
            let sc = RealScenario::immediate(1, 1, size, 1, 4);
            let id = format!("{}/{size}", a.label().replace(' ', "_"));
            bench("fig4_single_thread", &id, || steady(a, &sc));
        }
    }
}

/// Fig. 5/6 analogue: contended vs sharded matching (threads on one lock
/// vs per-thread shards).
fn bench_contention() {
    let n_threads = 4; // modest: CI hosts may have few cores
    for shards in [1usize, 4] {
        for a in [
            RealApproach::PtpPart,
            RealApproach::PtpMany,
            RealApproach::PtpSingle,
        ] {
            let sc = RealScenario::immediate(n_threads, 1, 512, shards, 4);
            let id = format!("{}/{shards}shards", a.label().replace(' ', "_"));
            bench("fig5_fig6_contention", &id, || steady(a, &sc));
        }
    }
}

/// Fig. 7 analogue: aggregation of many small partitions.
fn bench_aggregation() {
    for aggr in [None, Some(4096usize), Some(16384)] {
        let mut sc = RealScenario::immediate(2, 16, 512, 2, 4);
        sc.aggr_size = aggr;
        let label = aggr.map(|a| format!("aggr{a}")).unwrap_or("no_aggr".into());
        bench("fig7_aggregation", &format!("Pt2Pt_part/{label}"), || {
            steady(RealApproach::PtpPart, &sc)
        });
    }
    let sc = RealScenario::immediate(2, 16, 512, 2, 4);
    bench("fig7_aggregation", "Pt2Pt_single/ref", || {
        steady(RealApproach::PtpSingle, &sc)
    });
}

/// Fig. 8 analogue: early-bird overlap with an injected delay.
fn bench_early_bird() {
    let part_bytes = 1 << 20;
    let delay_us = 300.0;
    for a in [RealApproach::PtpPart, RealApproach::PtpSingle] {
        let mut sc = RealScenario::immediate(2, 1, part_bytes, 2, 4);
        sc.delays_us[1] = delay_us;
        let id = format!("{}/1MiB_300us_delay", a.label().replace(' ', "_"));
        bench("fig8_early_bird", &id, || steady(a, &sc));
    }
}

fn main() {
    // `cargo bench -- <filter>` runs only the groups whose name contains
    // the filter; `--bench`-style extra flags are ignored.
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let want = |name: &str| filter.is_empty() || filter.iter().any(|f| name.contains(f.as_str()));
    if want("fig4") {
        bench_fig4_latency();
    }
    if want("fig5") || want("fig6") || want("contention") {
        bench_contention();
    }
    if want("fig7") || want("aggregation") {
        bench_aggregation();
    }
    if want("fig8") || want("early_bird") {
        bench_early_bird();
    }
}
