//! Criterion benches on the REAL multithreaded runtime (`pcomm-core`):
//! wall-clock analogues of the paper's figures.
//!
//! One bench group per figure. Each measured iteration runs a short
//! benchmark campaign (spawn universe, a few warm iterations) and reports
//! the steady-state per-iteration overhead.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcomm_core::strategies::{measure, RealApproach, RealScenario};

/// Steady-state overhead: run a few iterations, discard the warm-up,
/// return the minimum (robust against scheduler noise on small hosts).
fn steady(a: RealApproach, sc: &RealScenario) -> Duration {
    let times = measure(a, sc);
    times[1..].iter().copied().min().unwrap()
}

/// Fig. 4 analogue: single thread, one partition, across sizes.
fn bench_fig4_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_single_thread");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for size in [1 << 10, 64 << 10, 1 << 20] {
        for a in [
            RealApproach::PtpPart,
            RealApproach::PtpPartOld,
            RealApproach::PtpSingle,
        ] {
            let sc = RealScenario::immediate(1, 1, size, 1, 4);
            g.bench_with_input(
                BenchmarkId::new(a.label().replace(' ', "_"), size),
                &sc,
                |b, sc| b.iter(|| steady(a, sc)),
            );
        }
    }
    g.finish();
}

/// Fig. 5/6 analogue: contended vs sharded matching (threads on one lock
/// vs per-thread shards).
fn bench_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fig6_contention");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    let n_threads = 4; // modest: CI hosts may have few cores
    for shards in [1usize, 4] {
        for a in [RealApproach::PtpPart, RealApproach::PtpMany, RealApproach::PtpSingle] {
            let sc = RealScenario::immediate(n_threads, 1, 512, shards, 4);
            g.bench_with_input(
                BenchmarkId::new(a.label().replace(' ', "_"), format!("{shards}shards")),
                &sc,
                |b, sc| b.iter(|| steady(a, sc)),
            );
        }
    }
    g.finish();
}

/// Fig. 7 analogue: aggregation of many small partitions.
fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_aggregation");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for aggr in [None, Some(4096usize), Some(16384)] {
        let mut sc = RealScenario::immediate(2, 16, 512, 2, 4);
        sc.aggr_size = aggr;
        let label = aggr.map(|a| format!("aggr{a}")).unwrap_or("no_aggr".into());
        g.bench_with_input(BenchmarkId::new("Pt2Pt_part", label), &sc, |b, sc| {
            b.iter(|| steady(RealApproach::PtpPart, sc))
        });
    }
    let sc = RealScenario::immediate(2, 16, 512, 2, 4);
    g.bench_with_input(BenchmarkId::new("Pt2Pt_single", "ref"), &sc, |b, sc| {
        b.iter(|| steady(RealApproach::PtpSingle, sc))
    });
    g.finish();
}

/// Fig. 8 analogue: early-bird overlap with an injected delay.
fn bench_early_bird(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_early_bird");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    let part_bytes = 1 << 20;
    let delay_us = 300.0;
    for a in [RealApproach::PtpPart, RealApproach::PtpSingle] {
        let mut sc = RealScenario::immediate(2, 1, part_bytes, 2, 4);
        sc.delays_us[1] = delay_us;
        g.bench_with_input(
            BenchmarkId::new(a.label().replace(' ', "_"), "1MiB_300us_delay"),
            &sc,
            |b, sc| b.iter(|| steady(a, sc)),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fig4_latency,
    bench_contention,
    bench_aggregation,
    bench_early_bird
);
criterion_main!(benches);
