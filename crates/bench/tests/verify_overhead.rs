//! Guard: the verification layer must not tax the verify-off hot path.
//!
//! The repo's trajectory (BENCH_hotpath.json) records `pready` at
//! 144.2 ns under an armed watchdog; the verify gate added on top is a
//! single predictable branch (`Trace::emit_verify` with a disabled or
//! plain trace), so the off-path cost must stay within noise of that
//! figure. The envelope here is deliberately generous — CI boxes vary
//! and `cargo test` builds unoptimized — so it catches a *structural*
//! regression (events allocated, clocks read, or locks taken with
//! verification off), not a few-nanosecond drift. `hotpath` remains
//! the precise instrument.

use std::time::Instant;

use pcomm_core::part::PartOptions;
use pcomm_core::Universe;

/// The `pready_watchdog_ns` figure committed to BENCH_hotpath.json.
const RECORDED_PREADY_NS: f64 = 144.2;

/// A structural regression on the off path (per-op event emission or
/// locking) multiplies the cost; plain noise does not. Debug builds pay
/// a large constant factor over the recorded release figure.
const NOISE_FACTOR: f64 = if cfg!(debug_assertions) { 100.0 } else { 12.0 };

fn pready_ns_verify_off(reps: usize) -> f64 {
    const N: usize = 64;
    let out = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 1, N, 64, PartOptions::default());
                let mut best = f64::INFINITY;
                for _ in 0..reps {
                    ps.start();
                    let t0 = Instant::now();
                    for p in 0..N {
                        ps.pready(p);
                    }
                    let per_op = t0.elapsed().as_nanos() as f64 / N as f64;
                    ps.wait();
                    best = best.min(per_op);
                }
                best
            } else {
                let pr = comm.precv_init(0, 1, N, 64, PartOptions::default());
                for _ in 0..reps {
                    pr.start();
                    pr.wait();
                }
                0.0
            }
        })
        .unwrap();
    out[0]
}

#[test]
fn verify_off_pready_stays_within_noise_of_recorded_figure() {
    let measured = pready_ns_verify_off(20);
    let ceiling = RECORDED_PREADY_NS * NOISE_FACTOR;
    assert!(
        measured > 0.0 && measured < ceiling,
        "verify-off pready took {measured:.1} ns/op, over the {ceiling:.0} ns \
         noise envelope around the recorded {RECORDED_PREADY_NS} ns — the \
         verification layer is taxing the off path"
    );
}
