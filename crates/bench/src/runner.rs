//! The measurement protocol driver: paper §4's statistics applied to the
//! simulated runtime.

use pcomm_netmodel::MachineConfig;
use pcomm_perfmodel::ConfidenceInterval;
use pcomm_simmpi::scenario::{run_scenario, Approach, Scenario};

/// Protocol and sweep options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Measured iterations per attempt (paper: 150).
    pub iterations: usize,
    /// Warm-up iterations discarded (paper: 1).
    pub warmup: usize,
    /// Maximum reruns on a too-wide interval (paper: 50).
    pub max_retries: usize,
    /// Accepted relative half-width (paper: 0.05).
    pub rel_halfwidth: f64,
    /// Base RNG seed; attempt `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Take every `size_stride`-th point of each size sweep (1 = all).
    pub size_stride: usize,
}

impl RunOpts {
    /// The paper's protocol over the full size sweeps.
    pub fn paper() -> RunOpts {
        RunOpts {
            iterations: 150,
            warmup: 1,
            max_retries: 50,
            rel_halfwidth: 0.05,
            base_seed: 0x1CC9_2023,
            size_stride: 1,
        }
    }

    /// A fast variant for tests/CI: fewer iterations, coarser sweeps,
    /// looser convergence.
    pub fn quick() -> RunOpts {
        RunOpts {
            iterations: 25,
            warmup: 1,
            max_retries: 2,
            rel_halfwidth: 0.25,
            base_seed: 0x1CC9_2023,
            size_stride: 4,
        }
    }
}

/// One measured data point.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean communication overhead in µs.
    pub mean_us: f64,
    /// 90% CI half-width in µs.
    pub halfwidth_us: f64,
    /// Reruns needed (0 = first attempt converged).
    pub retries: usize,
}

/// Measure one (approach, scenario, VCI count) cell under the protocol.
pub fn measure(
    cfg: &MachineConfig,
    n_vcis: usize,
    approach: Approach,
    base: &Scenario,
    opts: &RunOpts,
) -> Measured {
    let mut sc = base.clone();
    sc.iterations = opts.warmup + opts.iterations;
    let mut retries = 0;
    loop {
        let times = run_scenario(cfg, n_vcis, opts.base_seed + retries as u64, approach, &sc);
        let xs: Vec<f64> = times[opts.warmup..].iter().map(|d| d.as_us_f64()).collect();
        let ci = ConfidenceInterval::of(&xs);
        if ci.relative_halfwidth() <= opts.rel_halfwidth || retries >= opts.max_retries {
            return Measured {
                mean_us: ci.mean,
                halfwidth_us: ci.halfwidth,
                retries,
            };
        }
        retries += 1;
    }
}

/// Powers-of-two total-size sweep `[min, max]`, subsampled by
/// `opts.size_stride` (endpoints always kept).
pub fn size_sweep(min_total: usize, max_total: usize, opts: &RunOpts) -> Vec<usize> {
    let mut all = Vec::new();
    let mut s = min_total;
    while s <= max_total {
        all.push(s);
        s *= 2;
    }
    if opts.size_stride <= 1 || all.len() <= 2 {
        return all;
    }
    let last = *all.last().unwrap();
    let mut out: Vec<usize> = all.iter().copied().step_by(opts.size_stride).collect();
    if *out.last().unwrap() != last {
        out.push(last);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_constants() {
        let p = RunOpts::paper();
        assert_eq!(p.iterations, 150);
        assert_eq!(p.warmup, 1);
        assert_eq!(p.max_retries, 50);
        assert_eq!(p.rel_halfwidth, 0.05);
    }

    #[test]
    fn size_sweep_powers_of_two() {
        let opts = RunOpts::paper();
        let s = size_sweep(16, 128, &opts);
        assert_eq!(s, vec![16, 32, 64, 128]);
    }

    #[test]
    fn size_sweep_stride_keeps_endpoints() {
        let mut opts = RunOpts::paper();
        opts.size_stride = 3;
        let s = size_sweep(16, 4096, &opts);
        assert_eq!(s.first(), Some(&16));
        assert_eq!(s.last(), Some(&4096));
        assert!(s.len() < 9);
    }

    #[test]
    fn measure_converges_on_quiet_machine() {
        let cfg = MachineConfig::meluxina_quiet();
        let sc = Scenario::immediate(1, 1, 1024, 1);
        let mut opts = RunOpts::quick();
        opts.iterations = 10;
        let m = measure(&cfg, 1, Approach::PtpSingle, &sc, &opts);
        assert!(m.mean_us > 1.0 && m.mean_us < 10.0, "mean {}", m.mean_us);
        assert!(
            m.halfwidth_us < 1e-9,
            "quiet machine should have (numerically) zero variance, got {}",
            m.halfwidth_us
        );
        assert_eq!(m.retries, 0);
    }

    #[test]
    fn measure_with_noise_has_finite_ci() {
        let cfg = MachineConfig::meluxina();
        let sc = Scenario::immediate(2, 1, 2048, 1);
        let opts = RunOpts::quick();
        let m = measure(&cfg, 1, Approach::PtpPart, &sc, &opts);
        assert!(m.mean_us > 0.0);
        assert!(m.halfwidth_us >= 0.0);
        assert!(m.halfwidth_us < m.mean_us, "CI wider than the mean");
    }
}
