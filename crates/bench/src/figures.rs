//! Figure generators: one function per table/figure of the paper.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use pcomm_netmodel::MachineConfig;
use pcomm_perfmodel::{
    eta_large, s_per_b_to_us_per_mb, us_per_mb_to_s_per_b, ComputeProfile, DelayModel, NoiseModel,
    RefinedGainModel,
};
use pcomm_simcore::Dur;
use pcomm_simmpi::scenario::{Approach, Scenario};

use crate::runner::{measure, size_sweep, RunOpts};

/// One data point of a series.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// X value (total message size in bytes, unless stated otherwise).
    pub x: f64,
    /// Y value (time in µs, or gain for Fig. 8).
    pub y: f64,
    /// Symmetric error (90% CI half-width); 0 for analytic series.
    pub err: f64,
}

/// A named series of points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Display label (matches the paper's legend).
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

/// How the x axis is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XUnit {
    /// Byte sizes (rendered as B/KiB/MiB).
    #[default]
    Bytes,
    /// Plain counts (e.g. θ).
    Count,
}

/// A rendered figure: series over a common x sweep.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier (`fig4` … `fig8`, `theta`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// X axis rendering.
    pub x_unit: XUnit,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (rows = x, columns = series).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(header, "  {:>22}", s.label);
        }
        let _ = writeln!(out, "{header}");
        let n = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..n {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.x))
                .unwrap_or(f64::NAN);
            let x_str = match self.x_unit {
                XUnit::Bytes => format_bytes(x),
                XUnit::Count => format!("{x:.0}"),
            };
            let mut row = format!("{:>12}", x_str);
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) if p.err > 0.0 => {
                        let _ = write!(row, "  {:>13.3}±{:>7.3}", p.y, p.err);
                    }
                    Some(p) => {
                        let _ = write!(row, "  {:>22.3}", p.y);
                    }
                    None => {
                        let _ = write!(row, "  {:>22}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// CSV rendering: `x,series,y,err` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x_bytes,series,y,err\n");
        for s in &self.series {
            for p in &s.points {
                let _ = writeln!(out, "{},{},{},{}", p.x, s.label, p.y, p.err);
            }
        }
        out
    }

    /// Write the CSV under `dir` as `<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Look up a measured y value by series label and x.
    pub fn value(&self, label: &str, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == label)?
            .points
            .iter()
            .find(|p| (p.x - x).abs() < 0.5)
            .map(|p| p.y)
    }
}

fn format_bytes(x: f64) -> String {
    if !x.is_finite() {
        return "-".into();
    }
    let b = x as u64;
    if b >= 1 << 20 {
        format!("{}MiB", b >> 20)
    } else if b >= 1 << 10 {
        format!("{}KiB", b >> 10)
    } else {
        format!("{b}B")
    }
}

fn measured_series(
    cfg: &MachineConfig,
    n_vcis: usize,
    approach: Approach,
    label: &str,
    scenarios: &[(usize, Scenario)],
    opts: &RunOpts,
) -> Series {
    let points = scenarios
        .iter()
        .map(|(total, sc)| {
            let m = measure(cfg, n_vcis, approach, sc, opts);
            Point {
                x: *total as f64,
                y: m.mean_us,
                err: m.halfwidth_us,
            }
        })
        .collect();
    Series {
        label: label.to_string(),
        points,
    }
}

/// Fig. 4 — time across message sizes with 1 thread and 1 partition:
/// existing vs improved partitioned implementation vs MPI-3.1 approaches,
/// plus the theoretical 25 GB/s line.
pub fn fig4(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    let sizes = size_sweep(16, 16 << 20, opts);
    let scenarios: Vec<(usize, Scenario)> = sizes
        .iter()
        .map(|&s| (s, Scenario::immediate(1, 1, s, 1)))
        .collect();
    let mut series: Vec<Series> = Approach::ALL
        .iter()
        .map(|a| measured_series(cfg, 1, *a, a.label(), &scenarios, opts))
        .collect();
    series.push(Series {
        label: "theory 25 GB/s".into(),
        points: sizes
            .iter()
            .map(|&s| Point {
                x: s as f64,
                y: s as f64 / cfg.bandwidth * 1e6,
                err: 0.0,
            })
            .collect(),
    });
    Figure {
        id: "fig4".into(),
        title: "1 thread, 1 partition: improved vs existing vs MPI-3.1".into(),
        x_label: "size".into(),
        y_label: "time [us]".into(),
        x_unit: XUnit::Bytes,
        series,
    }
}

fn congestion_figure(
    cfg: &MachineConfig,
    n_vcis: usize,
    id: &str,
    title: &str,
    opts: &RunOpts,
) -> Figure {
    let n_threads = 32;
    let sizes = size_sweep(512, 16 << 20, opts);
    let scenarios: Vec<(usize, Scenario)> = sizes
        .iter()
        .map(|&s| (s, Scenario::immediate(n_threads, 1, s / n_threads, 1)))
        .collect();
    let approaches = [
        Approach::PtpPart,
        Approach::PtpSingle,
        Approach::PtpMany,
        Approach::RmaSinglePassive,
        Approach::RmaManyPassive,
        Approach::RmaSingleActive,
        Approach::RmaManyActive,
    ];
    let series = approaches
        .iter()
        .map(|a| measured_series(cfg, n_vcis, *a, a.label(), &scenarios, opts))
        .collect();
    Figure {
        id: id.into(),
        title: title.into(),
        x_label: "size".into(),
        y_label: "time [us]".into(),
        x_unit: XUnit::Bytes,
        series,
    }
}

/// Fig. 5 — thread congestion: 32 threads, 32 partitions, 1 VCI.
pub fn fig5(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    congestion_figure(cfg, 1, "fig5", "thread congestion: 32 threads, 1 VCI", opts)
}

/// Fig. 6 — same with 32 VCIs.
pub fn fig6(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    congestion_figure(
        cfg,
        32,
        "fig6",
        "thread congestion: 32 threads, 32 VCIs",
        opts,
    )
}

/// Fig. 7 — message aggregation: θ = 32 partitions per thread, 4 threads,
/// aggregation bounds 512 B – 16 KiB.
pub fn fig7(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    let n_threads = 4;
    let theta = 32;
    let n_parts = n_threads * theta; // 128
    let sizes = size_sweep(512, 16 << 20, opts);
    let mk = |aggr: Option<usize>| -> Vec<(usize, Scenario)> {
        sizes
            .iter()
            .map(|&s| {
                let mut sc = Scenario::immediate(n_threads, theta, s / n_parts, 1);
                sc.aggr_size = aggr;
                (s, sc)
            })
            .collect()
    };
    let mut series = Vec::new();
    series.push(measured_series(
        cfg,
        1,
        Approach::PtpPart,
        "Pt2Pt part (no aggr)",
        &mk(None),
        opts,
    ));
    for aggr in [512usize, 2048, 16384] {
        series.push(measured_series(
            cfg,
            1,
            Approach::PtpPart,
            &format!("Pt2Pt part aggr={aggr}"),
            &mk(Some(aggr)),
            opts,
        ));
    }
    series.push(measured_series(
        cfg,
        1,
        Approach::PtpMany,
        Approach::PtpMany.label(),
        &mk(None),
        opts,
    ));
    series.push(measured_series(
        cfg,
        1,
        Approach::PtpSingle,
        Approach::PtpSingle.label(),
        &mk(None),
        opts,
    ));
    Figure {
        id: "fig7".into(),
        title: "message aggregation: θ=32 partitions/thread, 4 threads".into(),
        x_label: "size".into(),
        y_label: "time [us]".into(),
        x_unit: XUnit::Bytes,
        series,
    }
}

/// Fig. 8 — early-bird gain (γ = 100 µs/MB, 4 threads, 4 partitions):
/// measured gain per approach plus the refined and ideal theory curves.
pub fn fig8(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    let n_threads = 4;
    let gamma = us_per_mb_to_s_per_b(100.0);
    let sizes = size_sweep(4 << 10, 64 << 20, opts);
    let mk = |total: usize| -> Scenario {
        let part_bytes = total / n_threads;
        let mut sc = Scenario::immediate(n_threads, 1, part_bytes, 1);
        let delay = Dur::from_secs_f64(gamma * part_bytes as f64);
        let n = sc.delays.len();
        sc.delays[n - 1] = delay;
        sc
    };
    let scenarios: Vec<(usize, Scenario)> = sizes.iter().map(|&s| (s, mk(s))).collect();
    // Reference: bulk-synchronized single message.
    let single: Vec<f64> = scenarios
        .iter()
        .map(|(_, sc)| measure(cfg, 1, Approach::PtpSingle, sc, opts).mean_us)
        .collect();
    let mut series = Vec::new();
    for a in [
        Approach::PtpPart,
        Approach::PtpMany,
        Approach::RmaSinglePassive,
    ] {
        let points = scenarios
            .iter()
            .zip(&single)
            .map(|((total, sc), s_us)| {
                let m = measure(cfg, 1, a, sc, opts);
                Point {
                    x: *total as f64,
                    y: s_us / m.mean_us,
                    err: 0.0,
                }
            })
            .collect();
        series.push(Series {
            label: format!("gain {}", a.label()),
            points,
        });
    }
    // Theory overlays.
    let refined = RefinedGainModel {
        beta: cfg.bandwidth,
        latency: cfg.latency.as_secs_f64(),
        bulk_overhead: cfg.o_send.as_secs_f64(),
        pipelined_msg_overhead: 2.0e-6,
        gamma,
    };
    series.push(Series {
        label: "theory (refined)".into(),
        points: sizes
            .iter()
            .map(|&s| Point {
                x: s as f64,
                y: refined.eta(n_threads as u64, (s / n_threads) as f64),
                err: 0.0,
            })
            .collect(),
    });
    let ideal = eta_large(n_threads as u64, 1, gamma, cfg.bandwidth);
    series.push(Series {
        label: "theory eq.(4)".into(),
        points: sizes
            .iter()
            .map(|&s| Point {
                x: s as f64,
                y: ideal,
                err: 0.0,
            })
            .collect(),
    });
    Figure {
        id: "fig8".into(),
        title: "early-bird gain (γ=100 µs/MB, 4 threads, 4 partitions)".into(),
        x_label: "size".into(),
        y_label: "gain η".into(),
        x_unit: XUnit::Bytes,
        series,
    }
}

/// θ sweep (paper §2.2.1 / Appendix A): measured early-bird gain vs the
/// analytic η(γ_θ) for the FFT and stencil compute models, N = 8 threads.
pub fn theta_sweep(cfg: &MachineConfig, opts: &RunOpts) -> Figure {
    use pcomm_prng::Xoshiro256pp;
    use pcomm_workloads::DelaySchedule;

    let n_threads = 8usize;
    let part_bytes = 1 << 20; // bandwidth-dominated partitions
    let thetas: Vec<usize> = vec![1, 2, 4, 8];
    let realizations = 4usize;
    let cases = [
        (
            "FFT",
            DelayModel::new(
                ComputeProfile::fft(),
                NoiseModel {
                    epsilon: 0.04,
                    delta: 0.0,
                },
            ),
        ),
        (
            "stencil",
            DelayModel::new(
                ComputeProfile::stencil3d(),
                NoiseModel {
                    epsilon: 0.04,
                    delta: 0.5,
                },
            ),
        ),
    ];
    let mut series = Vec::new();
    for (name, model) in cases {
        let sched = DelaySchedule::GaussianCompute { model };
        let mut measured = Vec::new();
        let mut analytic = Vec::new();
        for &theta in &thetas {
            // Analytic gain.
            analytic.push(Point {
                x: theta as f64,
                y: eta_large(
                    n_threads as u64,
                    theta as u64,
                    model.gamma(theta as u64),
                    cfg.bandwidth,
                ),
                err: 0.0,
            });
            // Measured: average over several delay realizations.
            let mut rng = Xoshiro256pp::seed_from_u64(0xD11A + theta as u64);
            let mut gains = Vec::new();
            for _ in 0..realizations {
                let delays = sched.ready_times(n_threads, theta, part_bytes, &mut rng);
                let mut sc = Scenario::immediate(n_threads, theta, part_bytes, 1);
                sc.delays = delays;
                let single = measure(cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
                let part = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
                gains.push(single / part);
            }
            let mean = gains.iter().sum::<f64>() / gains.len() as f64;
            let sd =
                (gains.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gains.len() as f64).sqrt();
            measured.push(Point {
                x: theta as f64,
                y: mean,
                err: sd,
            });
        }
        series.push(Series {
            label: format!("measured {name}"),
            points: measured,
        });
        series.push(Series {
            label: format!("analytic {name}"),
            points: analytic,
        });
    }
    Figure {
        id: "theta".into(),
        title: "gain vs partitions per thread (N=8, 1 MiB partitions)".into(),
        x_label: "theta".into(),
        y_label: "gain η".into(),
        x_unit: XUnit::Count,
        series,
    }
}

/// Ablations of the design choices DESIGN.md calls out.
pub fn ablation(cfg: &MachineConfig, opts: &RunOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Ablations ==");

    // (a) Early-bird on/off: the gain of Fig. 8 disappears when sends are
    // deferred to wait().
    {
        let part_bytes = 4 << 20;
        let gamma = us_per_mb_to_s_per_b(100.0);
        let mut sc = Scenario::immediate(4, 1, part_bytes, 1);
        sc.delays[3] = Dur::from_secs_f64(gamma * part_bytes as f64);
        let single = measure(cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
        let eager = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
        sc.defer_sends = true;
        let deferred = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
        let _ = writeln!(
            out,
            "(a) early-bird @16MiB, γ=100 µs/MB: gain {:.2} with early-bird, {:.2} deferred",
            single / eager,
            single / deferred
        );
    }

    // (b) VCI attribution (paper §3.2.2 / §5): sender-side injection time
    // for 8 threads × θ=8 small partitions (block ownership) under three
    // attributions — the default round-robin by message index, the
    // MPIX_Stream-style per-thread hint (conflict-free by construction),
    // and a degenerate single-stream hint (everything on one VCI).
    {
        use pcomm_simcore::Sim;
        use pcomm_simmpi::part::{psend_init, PartOptions, VciMapping};
        use pcomm_simmpi::World;
        use std::rc::Rc;

        let n_threads = 8usize;
        let theta = 8usize;
        let n_parts = n_threads * theta;
        let inject_time = |mapping: VciMapping| -> f64 {
            let sim = Sim::new();
            let world = World::new(&sim, cfg.clone(), 2, n_threads, 7);
            let po = PartOptions {
                vci_mapping: mapping,
                first_iteration_cts: false,
                ..PartOptions::default()
            };
            let ps = psend_init(&world.comm_world(0), 1, 0, n_parts, 512, n_parts, po);
            let done = sim.spawn({
                let sim = sim.clone();
                async move {
                    ps.start().await;
                    let mut handles = Vec::new();
                    for t in 0..n_threads {
                        let ps = ps.clone();
                        handles.push(sim.spawn(async move {
                            for j in 0..theta {
                                ps.pready(t * theta + j).await; // block ownership
                            }
                        }));
                    }
                    for h in handles {
                        h.await;
                    }
                    ps.wait().await;
                    sim.now().as_us_f64()
                }
            });
            sim.run();
            done.try_take().unwrap()
        };
        let rr = inject_time(VciMapping::RoundRobinByMessage);
        let block_hint: Vec<usize> = (0..n_parts).map(|p| p / theta).collect();
        let hinted = inject_time(VciMapping::ThreadHint(Rc::new(block_hint)));
        let single_stream = inject_time(VciMapping::ThreadHint(Rc::new(vec![0; n_parts])));
        let _ = writeln!(
            out,
            "(b) injection of 64 partitions, 8 threads / 8 VCIs, block ownership: round-robin {rr:.2} us, thread hint {hinted:.2} us, single-VCI {single_stream:.2} us"
        );
    }

    // (c) Contention model: linear vs quadratic waiter penalty at the
    // Fig. 5 operating point.
    {
        let sc = Scenario::immediate(32, 1, 512, 1);
        let single = measure(cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
        let quad = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
        let linear_cfg = MachineConfig {
            contention_exponent: 1,
            ..cfg.clone()
        };
        let lin = measure(&linear_cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
        let _ = writeln!(
            out,
            "(c) contention model @32 thr, 16KiB: quadratic {:.1}x vs single (paper ≈30), linear {:.1}x",
            quad / single,
            lin / single
        );
    }

    // (d) First-iteration CTS (receiver-decided message count, §3.2.1):
    // warm-up iteration vs steady state.
    {
        use pcomm_simmpi::scenario::run_scenario;
        let sc = Scenario::immediate(2, 1, 1024, 5);
        let times = run_scenario(cfg, 1, 1, Approach::PtpPart, &sc);
        let _ = writeln!(
            out,
            "(d) first-iteration CTS: warm-up iter {:.2} us vs steady {:.2} us (the paper's \"1 warm-up iteration to get rid of the overhead\")",
            times[0].as_us_f64(),
            times[4].as_us_f64()
        );
    }
    out
}

/// Tables 1–2: the MPI operations of every strategy, generated from the
/// strategy implementations.
pub fn tables() -> String {
    let mut out = String::new();
    for (name, pick) in [("Table 1 (sender)", 0usize), ("Table 2 (receiver)", 1)] {
        let _ = writeln!(out, "== {name} ==");
        let _ = writeln!(
            out,
            "{:<22}  {:<42}  {:<12}  {:<28}  {:<24}",
            "approach", "init", "start", "ready", "wait"
        );
        for a in Approach::ALL {
            let ops = if pick == 0 {
                a.sender_ops()
            } else {
                a.receiver_ops()
            };
            let _ = writeln!(
                out,
                "{:<22}  {:<42}  {:<12}  {:<28}  {:<24}",
                a.label(),
                ops[0],
                ops[1],
                ops[2],
                ops[3]
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// §2.2 numeric examples: expected gains from the analytic model.
pub fn model_examples() -> String {
    let beta = 25e9;
    let mut out = String::new();
    let _ = writeln!(out, "== Sec. 2.2 model examples (β = 25 GB/s, N = 8) ==");
    for (theta, gamma_us_mb) in [(1u64, 1.0), (1, 10.0), (8, 1000.0)] {
        let eta = eta_large(8, theta, us_per_mb_to_s_per_b(gamma_us_mb), beta);
        let _ = writeln!(out, "θ={theta}, γ={gamma_us_mb:>6.1} µs/MB → η = {eta:.3}");
    }
    let _ = writeln!(out, "small-message law: η = 1/(Nθ), e.g. N=8,θ=1 → 0.125");
    let _ = writeln!(
        out,
        "1 kB buffer at γ=100 µs/MB offsets {:.1}% of a 1 µs latency",
        us_per_mb_to_s_per_b(100.0) * 1024.0 / 1e-6 * 100.0
    );
    out
}

/// Appendix A: delay rates and gains for the FFT and stencil examples.
pub fn appendix() -> String {
    let beta = 25e9;
    let mut out = String::new();
    let cases = [
        (
            "FFT (AI=5, CI=1, δ=0, ε=0.04)",
            DelayModel::new(
                ComputeProfile::fft(),
                NoiseModel {
                    epsilon: 0.04,
                    delta: 0.0,
                },
            ),
        ),
        (
            "stencil (AI=1/13, CI=(66/64)³−1, δ=0.5, ε=0.04)",
            DelayModel::new(
                ComputeProfile::stencil3d(),
                NoiseModel {
                    epsilon: 0.04,
                    delta: 0.5,
                },
            ),
        ),
    ];
    let _ = writeln!(out, "== Appendix A.2 — delay rates and gains (N = 8) ==");
    for (name, model) in cases {
        let _ = writeln!(out, "{name}");
        for theta in [1u64, 2, 8] {
            let g = model.gamma(theta);
            let eta = eta_large(8, theta, g, beta);
            let _ = writeln!(
                out,
                "  θ={theta}: γ = {:>10.4} µs/MB, η = {:.4}",
                s_per_b_to_us_per_mb(g),
                eta
            );
        }
    }
    let _ = writeln!(
        out,
        "note: the paper's stencil η values (1.1060/1.1718/1.2169) correspond to 2×γ·β;\n\
         its FFT η values use 1×γ·β — see EXPERIMENTS.md."
    );
    out
}

/// A readable timeline of one partitioned iteration (4 threads, one
/// delayed partition): every injection, VCI wait and pready, with virtual
/// timestamps — the early-bird effect made visible. When `out_dir` is
/// given, the same events are exported as Chrome trace-event JSON
/// (`trace_sim.json`, the exact schema `PCOMM_TRACE` produces on the real
/// runtime) and the plain-text summary report is appended.
pub fn trace(out_dir: Option<&std::path::Path>) -> String {
    use pcomm_simcore::Sim;
    use pcomm_simmpi::part::{precv_init, psend_init, PartOptions};
    use pcomm_simmpi::World;

    let sim = Sim::new();
    let cfg = MachineConfig::meluxina_quiet();
    let world = World::new(&sim, cfg, 2, 1, 0);
    world.enable_trace();
    let opts = PartOptions {
        first_iteration_cts: false,
        ..PartOptions::default()
    };
    let n_parts = 4;
    let part_bytes = 1 << 20;
    let ps = psend_init(
        &world.comm_world(0),
        1,
        0,
        n_parts,
        part_bytes,
        n_parts,
        opts.clone(),
    );
    let pr = precv_init(
        &world.comm_world(1),
        0,
        0,
        n_parts,
        n_parts,
        part_bytes,
        opts,
    );
    sim.spawn({
        let ps = ps.clone();
        let sim = sim.clone();
        async move {
            ps.start().await;
            for p in 0..n_parts - 1 {
                ps.pready(p).await;
            }
            // Delayed last partition: 100 µs/MB × 1 MiB.
            sim.sleep(Dur::from_us(105)).await;
            ps.pready(n_parts - 1).await;
            ps.wait().await;
        }
    });
    sim.spawn({
        let pr = pr.clone();
        async move {
            pr.start().await;
            pr.wait().await;
        }
    });
    sim.run();
    let events = world.take_trace();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== trace — one partitioned iteration (4 × 1 MiB, last partition +105 µs) =="
    );
    let _ = writeln!(out, "{:>12}  {:>4}  event", "t [us]", "rank");
    for ev in &events {
        let _ = writeln!(out, "{ev}");
    }
    let _ = writeln!(out);
    out.push_str(&pcomm_trace::summary_report(&events, 0));
    if let Some(dir) = out_dir {
        let json = pcomm_trace::chrome_trace_json(&events, 0);
        let path = dir.join("trace_sim.json");
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json)) {
            Ok(()) => {
                let _ = writeln!(out, "   -> {}", path.display());
            }
            Err(e) => {
                let _ = writeln!(out, "   json write failed: {e}");
            }
        }
    }
    out
}

/// Sensitivity of the paper's trade-off points to the machine balance:
/// the early-bird crossover and the contention penalty on the
/// MeluXina-like testbed vs a commodity 100 GbE cluster.
pub fn sensitivity(opts: &RunOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Machine sensitivity ==");
    for (name, cfg) in [
        (
            "MeluXina-like (25 GB/s, 1.22 us)",
            MachineConfig::meluxina(),
        ),
        (
            "commodity (12.5 GB/s, 2.5 us)",
            MachineConfig::commodity_cluster(),
        ),
    ] {
        // Early-bird crossover: smallest power-of-two total size where
        // partitioned beats bulk-single under the Fig. 8 setup.
        let gamma = us_per_mb_to_s_per_b(100.0);
        let mut crossover = None;
        let mut total = 4 << 10;
        while total <= 64 << 20 {
            let part_bytes = total / 4;
            let mut sc = Scenario::immediate(4, 1, part_bytes, 1);
            sc.delays[3] = Dur::from_secs_f64(gamma * part_bytes as f64);
            let single = measure(&cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
            let part = measure(&cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
            if single / part >= 1.0 {
                crossover = Some(total);
                break;
            }
            total *= 2;
        }
        // Contention factor at the Fig. 5 operating point.
        let sc = Scenario::immediate(32, 1, 512, 1);
        let single = measure(&cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
        let part = measure(&cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
        let _ = writeln!(
            out,
            "{name}: early-bird crossover ≈ {}, contention penalty @16KiB {:.1}x",
            crossover
                .map(|c| format_bytes(c as f64))
                .unwrap_or_else(|| "none <= 64MiB".into()),
            part / single
        );
    }
    let _ = writeln!(
        out,
        "(slower links shift the crossover smaller: wire time grows relative to\n\
         the fixed per-message overheads, so pipelining pays off earlier)"
    );
    out
}

/// Headline penalty/gain factors the paper quotes in §4–§5, computed from
/// the simulator, next to the paper's values.
pub fn summary(cfg: &MachineConfig, opts: &RunOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Headline factors: paper vs this reproduction ==");
    // Thread congestion at a small message size (32 threads, θ=1).
    let total = 16 << 10;
    let sc32 = Scenario::immediate(32, 1, total / 32, 1);
    let single_1 = measure(cfg, 1, Approach::PtpSingle, &sc32, opts).mean_us;
    let part_1 = measure(cfg, 1, Approach::PtpPart, &sc32, opts).mean_us;
    let single_32 = measure(cfg, 32, Approach::PtpSingle, &sc32, opts).mean_us;
    let part_32 = measure(cfg, 32, Approach::PtpPart, &sc32, opts).mean_us;
    let _ = writeln!(
        out,
        "contention penalty vs single @16KiB, 32 thr: 1 VCI {:>5.1}x (paper ≈30), 32 VCIs {:>4.1}x (paper ≈4)",
        part_1 / single_1,
        part_32 / single_32
    );
    // Aggregation (4 threads, θ=32, small partitions).
    let total = 64 << 10;
    let mut sc = Scenario::immediate(4, 32, total / 128, 1);
    let single = measure(cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
    let noag = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
    sc.aggr_size = Some(16384);
    let ag = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
    let _ = writeln!(
        out,
        "aggregation penalty vs single @64KiB, 128 parts: none {:>5.1}x (paper ≈10), aggr 16KiB {:>4.1}x (paper ≈3)",
        noag / single,
        ag / single
    );
    // Early-bird gain at a large size.
    let total = 64 << 20;
    let part_bytes = total / 4;
    let gamma = us_per_mb_to_s_per_b(100.0);
    let mut sc = Scenario::immediate(4, 1, part_bytes, 1);
    sc.delays[3] = Dur::from_secs_f64(gamma * part_bytes as f64);
    let single = measure(cfg, 1, Approach::PtpSingle, &sc, opts).mean_us;
    let part = measure(cfg, 1, Approach::PtpPart, &sc, opts).mean_us;
    let _ = writeln!(
        out,
        "early-bird gain @64MiB, γ=100 µs/MB: {:.2} (paper ≈2.54, theory 2.67)",
        single / part
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_bytes_units() {
        assert_eq!(format_bytes(16.0), "16B");
        assert_eq!(format_bytes(2048.0), "2KiB");
        assert_eq!(format_bytes((16 << 20) as f64), "16MiB");
    }

    #[test]
    fn figure_render_and_csv() {
        let fig = Figure {
            id: "t".into(),
            title: "test".into(),
            x_label: "size".into(),
            y_label: "time".into(),
            x_unit: XUnit::Bytes,
            series: vec![Series {
                label: "a".into(),
                points: vec![Point {
                    x: 1024.0,
                    y: 2.5,
                    err: 0.1,
                }],
            }],
        };
        let text = fig.render_text();
        assert!(text.contains("1KiB"));
        assert!(text.contains("2.500"));
        let csv = fig.to_csv();
        assert!(csv.starts_with("x_bytes,series,y,err"));
        assert!(csv.contains("1024,a,2.5,0.1"));
        assert_eq!(fig.value("a", 1024.0), Some(2.5));
        assert_eq!(fig.value("a", 99.0), None);
        assert_eq!(fig.value("zzz", 1024.0), None);
    }

    #[test]
    fn tables_match_paper_ops() {
        let t = tables();
        assert!(t.contains("MPI_Psend_init"));
        assert!(t.contains("MPI_Pready"));
        assert!(t.contains("MPI_Win_flush"));
        assert!(t.contains("MPI_Parrived"));
    }

    #[test]
    fn model_examples_text() {
        let t = model_examples();
        assert!(t.contains("η = 1.003"));
        assert!(t.contains("η = 1.641"));
    }

    #[test]
    fn theta_sweep_tracks_analytic_model() {
        let cfg = MachineConfig::meluxina();
        let mut opts = crate::runner::RunOpts::quick();
        opts.iterations = 6;
        let fig = theta_sweep(&cfg, &opts);
        assert_eq!(fig.x_unit, XUnit::Count);
        for name in ["FFT", "stencil"] {
            for theta in [1.0, 8.0] {
                let m = fig.value(&format!("measured {name}"), theta).unwrap();
                let a = fig.value(&format!("analytic {name}"), theta).unwrap();
                let rel = (m - a).abs() / a;
                assert!(rel < 0.15, "{name} θ={theta}: measured {m} vs analytic {a}");
            }
        }
        // Gain grows with θ (the §2.2.1 claim).
        let g1 = fig.value("measured FFT", 1.0).unwrap();
        let g8 = fig.value("measured FFT", 8.0).unwrap();
        assert!(g8 > g1 + 0.5, "θ growth: {g1} → {g8}");
    }

    #[test]
    fn ablation_text_contains_all_four() {
        let cfg = MachineConfig::meluxina();
        let mut opts = crate::runner::RunOpts::quick();
        opts.iterations = 8;
        let t = ablation(&cfg, &opts);
        assert!(t.contains("(a) early-bird"), "{t}");
        assert!(t.contains("(b) injection"), "{t}");
        assert!(t.contains("(c) contention model"), "{t}");
        assert!(t.contains("(d) first-iteration CTS"), "{t}");
    }

    #[test]
    fn appendix_text_matches_paper_gammas() {
        let t = appendix();
        assert!(t.contains("7.1429"), "{t}"); // paper's 7.1428 µs/MB, shown rounded
        assert!(t.contains("1263.6"), "{t}");
        assert!(t.contains("15.3398"), "{t}");
        assert!(t.contains("228.2131"), "{t}");
    }
}
