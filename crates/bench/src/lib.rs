//! `pcomm-bench` — the harness that regenerates every table and figure of
//! *Quantifying the Performance Benefits of Partitioned Communication in
//! MPI* (ICPP 2023).
//!
//! The `figures` binary drives the simulated runtime through the paper's
//! exact scenarios using the paper's measurement protocol (150 iterations,
//! 1 warm-up, 90% Student-t confidence interval, rerun while the half
//! width exceeds 5% of the mean, at most 50 times) and prints the series
//! of each figure alongside CSV files. Criterion benches on the *real*
//! runtime live in `benches/`.
//!
//! ```text
//! cargo run --release -p pcomm-bench --bin figures -- all
//! cargo run --release -p pcomm-bench --bin figures -- fig5 --quick
//! ```

#![warn(missing_docs)]

pub mod figures;
pub mod runner;
