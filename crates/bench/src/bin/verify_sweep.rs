//! CI sweep: bounded schedule exploration over all eight strategies.
//!
//! Replays the Fig. 3 scenario under every strategy × a bank of jitter
//! seeds, running the full verification suite (races, deadlock
//! verdicts, protocol lints) on each interleaving. Any finding is a
//! CI failure and prints the seed that reproduces it.
//!
//! `--quick` shrinks the seed bank for the smoke stage; the default
//! sweep is still small enough for an offline CI box.

use std::process::ExitCode;

use pcomm_netmodel::MachineConfig;
use pcomm_simmpi::explore::explore_scenario;
use pcomm_simmpi::scenario::{Approach, Scenario};

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds: Vec<u64> = if quick {
        (1..=4).collect()
    } else {
        (1..=8).collect()
    };

    let cfg = MachineConfig::meluxina_quiet();
    let sc = Scenario::immediate(4, 2, 256, 2);

    let mut findings = 0usize;
    let mut runs = 0usize;
    for approach in Approach::ALL {
        let sweep = explore_scenario(&cfg, 2, approach, &sc, &seeds);
        let partitioned = matches!(approach, Approach::PtpPart | Approach::PtpPartOld);
        for r in &sweep {
            runs += 1;
            if partitioned && r.verify_events == 0 {
                eprintln!(
                    "verify_sweep: {} seed {}: partitioned run emitted no verify events",
                    approach.label(),
                    r.seed
                );
                findings += 1;
            }
            if !r.report.is_clean() {
                eprintln!(
                    "verify_sweep: {} seed {} (replay with PCOMM_FAULTS='seed={},jitter'):\n{}",
                    approach.label(),
                    r.seed,
                    r.seed,
                    r.report
                );
                findings += 1;
            }
        }
    }

    if findings == 0 {
        println!(
            "verify_sweep: {} interleavings across {} strategies × {} seeds, all clean",
            runs,
            Approach::ALL.len(),
            seeds.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("verify_sweep: {findings} finding(s) across {runs} interleavings");
        ExitCode::FAILURE
    }
}
