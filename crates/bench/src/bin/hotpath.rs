//! `hotpath` — microbenchmarks of the real runtime's per-operation hot
//! paths, persisted as the repo's performance trajectory.
//!
//! Measures the four costs the partitioned-communication paper's
//! small-message regime (Figs. 5–6) is sensitive to:
//!
//! * `pready_ns` — cost of one `MPI_Pready`, including the early-bird
//!   injection of its internal message;
//! * `parrived_probe_ns` — cost of probing an already-arrived partition
//!   (`MPI_Parrived` returning `true`), the `MPI_Test`-style polling loop
//!   consumers sit in;
//! * `eager_roundtrip_ns` — a 256 B eager ping-pong between two ranks;
//! * `contended_{1,8}shard_ns` — per-message injection cost with 8
//!   threads hammering 1 shard vs 8 shards (the Fig. 5 vs Fig. 6 setup).
//!
//! Results go to `BENCH_hotpath.json` at the repo root. The first run
//! seeds the `baseline` block; later runs preserve it and overwrite
//! `current`, so the file always carries a before/after pair
//! (`--set-baseline` re-seeds explicitly, `--out <path>` redirects, e.g.
//! for CI smoke runs that must not touch the committed trajectory).
//!
//! ```text
//! cargo run --release -p pcomm-bench --bin hotpath
//! cargo run --release -p pcomm-bench --bin hotpath -- --quick --out /tmp/h.json
//! ```

use std::hint::black_box;
use std::time::Instant;

use pcomm_core::part::PartOptions;
use pcomm_core::{Comm, Universe};
use pcomm_trace::Trace;

/// One full set of hot-path measurements, in nanoseconds.
#[derive(Debug, Clone, Copy)]
struct HotpathNumbers {
    pready_ns: f64,
    pready_watchdog_ns: f64,
    pready_verify_ns: f64,
    parrived_probe_ns: f64,
    eager_roundtrip_ns: f64,
    contended_1shard_ns: f64,
    contended_8shard_ns: f64,
}

impl HotpathNumbers {
    fn to_json(self, label: &str) -> String {
        format!(
            concat!(
                "{{\n",
                "    \"label\": \"{}\",\n",
                "    \"pready_ns\": {:.1},\n",
                "    \"pready_watchdog_ns\": {:.1},\n",
                "    \"pready_verify_ns\": {:.1},\n",
                "    \"parrived_probe_ns\": {:.2},\n",
                "    \"eager_roundtrip_ns\": {:.1},\n",
                "    \"contended_1shard_ns\": {:.1},\n",
                "    \"contended_8shard_ns\": {:.1}\n",
                "  }}"
            ),
            label,
            self.pready_ns,
            self.pready_watchdog_ns,
            self.pready_verify_ns,
            self.parrived_probe_ns,
            self.eager_roundtrip_ns,
            self.contended_1shard_ns,
            self.contended_8shard_ns,
        )
    }
}

/// Minimum of `reps` timed runs of `f`, where `f` returns (total ns, ops).
fn min_ns_per_op(reps: usize, mut f: impl FnMut() -> (f64, usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (ns, ops) = f();
        let per_op = ns / ops.max(1) as f64;
        if per_op < best {
            best = per_op;
        }
    }
    best
}

/// Cost of one `pready` (64 partitions of 64 B, improved path): the
/// readying thread pays counter update + early-bird injection. With
/// `watchdog` the universe runs under an armed hang supervisor — the
/// number must not move, because supervision only touches the sliced
/// `wait_timeout` path of blocking waits, never the pready/probe fast
/// path. With `verify` the universe records analysis-grade `Verify*`
/// events for `pcomm-verify` — this is the one mode *allowed* to cost
/// more (each pready also emits an instant event into the per-thread
/// ring); the off mode must stay at the plain figure because the gate
/// is a single branch.
fn bench_pready(reps: usize, watchdog: bool, verify: bool) -> f64 {
    const N: usize = 64;
    const BYTES: usize = 64;
    let mut universe = Universe::new(2);
    if watchdog {
        universe = universe.with_watchdog_ms(5_000);
    }
    if verify {
        universe = universe.with_trace(Trace::ring_verify(1 << 16));
    }
    let out = universe
        .run(|comm| {
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 1, N, BYTES, PartOptions::default());
                min_ns_per_op(reps, || {
                    ps.start();
                    let t0 = Instant::now();
                    for p in 0..N {
                        ps.pready(p);
                    }
                    let ns = t0.elapsed().as_nanos() as f64;
                    ps.wait();
                    (ns, N)
                })
            } else {
                let pr = comm.precv_init(0, 1, N, BYTES, PartOptions::default());
                for _ in 0..reps {
                    pr.start();
                    pr.wait();
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Cost of probing a partition that has already arrived — the fast path
/// of a consumer's polling loop.
fn bench_parrived(reps: usize, probes: usize) -> f64 {
    const N: usize = 4;
    let out = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 1, N, 64, PartOptions::default());
                for _ in 0..reps {
                    ps.start();
                    for p in 0..N {
                        ps.pready(p);
                    }
                    ps.wait();
                    comm.barrier();
                }
                0.0
            } else {
                let pr = comm.precv_init(0, 1, N, 64, PartOptions::default());
                min_ns_per_op(reps, || {
                    pr.start();
                    while !(0..N).all(|p| pr.parrived(p)) {
                        std::hint::spin_loop();
                    }
                    let t0 = Instant::now();
                    for i in 0..probes {
                        black_box(pr.parrived(black_box(i % N)));
                    }
                    let ns = t0.elapsed().as_nanos() as f64;
                    pr.wait();
                    comm.barrier();
                    (ns, probes)
                })
            }
        })
        .expect("bench universe failed");
    out[1]
}

/// 256 B eager ping-pong; rank 0 reports ns per round trip.
fn bench_eager_roundtrip(reps: usize, iters: usize) -> f64 {
    const BYTES: usize = 256;
    let out = Universe::new(2)
        .run(|comm| {
            let mut buf = vec![0u8; BYTES];
            if comm.rank() == 0 {
                min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        comm.send(1, 0, &buf);
                        comm.recv_into(Some(1), Some(0), &mut buf);
                    }
                    (t0.elapsed().as_nanos() as f64, iters)
                })
            } else {
                for _ in 0..reps {
                    comm.barrier();
                    for _ in 0..iters {
                        comm.recv_into(Some(0), Some(0), &mut buf);
                        comm.send(0, 0, &buf);
                    }
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// 8 sender threads × `msgs` eager messages, on `n_shards` shards.
/// Reports ns per injected message on the sending rank.
fn bench_contention(reps: usize, msgs: usize, n_shards: usize) -> f64 {
    const THREADS: usize = 8;
    const BYTES: usize = 256;
    let out = Universe::new(2)
        .with_shards(n_shards)
        .run(|comm| {
            // Per-thread communicators: with 1 shard they all collide on one
            // lock; with 8 shards dup() spreads them round-robin.
            let comms: Vec<Comm> = (0..THREADS).map(|_| comm.dup()).collect();
            if comm.rank() == 0 {
                min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    std::thread::scope(|s| {
                        for (t, c) in comms.iter().enumerate() {
                            s.spawn(move || {
                                let payload = [t as u8; BYTES];
                                for _ in 0..msgs {
                                    c.send(1, t as i64, &payload);
                                }
                            });
                        }
                    });
                    let ns = t0.elapsed().as_nanos() as f64;
                    comm.barrier(); // receiver drained
                    (ns, THREADS * msgs)
                })
            } else {
                for _ in 0..reps {
                    comm.barrier();
                    std::thread::scope(|s| {
                        for (t, c) in comms.iter().enumerate() {
                            s.spawn(move || {
                                let mut buf = [0u8; BYTES];
                                for _ in 0..msgs {
                                    c.recv_into(Some(0), Some(t as i64), &mut buf);
                                }
                            });
                        }
                    });
                    comm.barrier();
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Extract the balanced-brace object following `"<key>":` in `json`.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let set_baseline = args.iter().any(|a| a == "--set-baseline");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_hotpath.json", env!("CARGO_MANIFEST_DIR")));

    let (reps, probes, pp_iters, cont_msgs) = if quick {
        (5, 20_000, 2_000, 500)
    } else {
        (30, 200_000, 10_000, 2_000)
    };

    eprintln!("hotpath: pready ...");
    let pready_ns = bench_pready(reps, false, false);
    eprintln!("hotpath: pready under watchdog ...");
    let pready_watchdog_ns = bench_pready(reps, true, false);
    eprintln!("hotpath: pready under verification ...");
    let pready_verify_ns = bench_pready(reps, false, true);
    eprintln!("hotpath: parrived probe ...");
    let parrived_probe_ns = bench_parrived(reps, probes);
    eprintln!("hotpath: eager roundtrip ...");
    let eager_roundtrip_ns = bench_eager_roundtrip(reps, pp_iters);
    eprintln!("hotpath: contention 1 shard ...");
    let contended_1shard_ns = bench_contention(reps.min(10), cont_msgs, 1);
    eprintln!("hotpath: contention 8 shards ...");
    let contended_8shard_ns = bench_contention(reps.min(10), cont_msgs, 8);

    let now = HotpathNumbers {
        pready_ns,
        pready_watchdog_ns,
        pready_verify_ns,
        parrived_probe_ns,
        eager_roundtrip_ns,
        contended_1shard_ns,
        contended_8shard_ns,
    };

    println!("pready                  {pready_ns:>10.1} ns/op");
    println!("pready (watchdog on)    {pready_watchdog_ns:>10.1} ns/op");
    println!("pready (verify on)      {pready_verify_ns:>10.1} ns/op");
    println!("parrived probe (hit)    {parrived_probe_ns:>10.2} ns/op");
    println!("eager roundtrip 256B    {eager_roundtrip_ns:>10.1} ns/rt");
    println!("8 threads / 1 shard     {contended_1shard_ns:>10.1} ns/msg");
    println!("8 threads / 8 shards    {contended_8shard_ns:>10.1} ns/msg");

    // The shard comparison is only physical when the 8 sender threads
    // can actually run in parallel: on a box with enough cores, 8
    // shards must beat 1 shard (the paper's Fig. 5 vs Fig. 6 effect),
    // and a run where they don't is a real contention regression. On a
    // 1-core host the threads timeshare one CPU, the shard count cannot
    // matter, and any delta between the two cells is scheduler noise —
    // so the guard stays quiet rather than flagging phantom
    // regressions.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let shard_note = if cores >= 4 {
        if contended_8shard_ns > contended_1shard_ns * 0.9 {
            eprintln!(
                "hotpath: SHARD GUARD FAILED: 8-shard {contended_8shard_ns:.1} ns/msg is not \
                 at least 10% under 1-shard {contended_1shard_ns:.1} ns/msg on a \
                 {cores}-core host — shard spreading has stopped paying"
            );
            std::process::exit(1);
        }
        eprintln!(
            "hotpath: shard guard ok: 8-shard {contended_8shard_ns:.1} <= 0.9x 1-shard \
             {contended_1shard_ns:.1} ns/msg ({cores} cores)"
        );
        "multi-core host: shard comparison is physical and guarded"
    } else {
        eprintln!(
            "hotpath: shard guard skipped: {cores} core(s) — 8 sender threads timeshare \
             one CPU, 1-shard vs 8-shard deltas are scheduler noise"
        );
        "single-core host: 8 sender threads timeshare one CPU, so shard spreading \
         cannot show; 1-shard vs 8-shard deltas are scheduler noise, not contention"
    };

    let current = now.to_json("current");
    let baseline = if set_baseline {
        now.to_json("baseline")
    } else {
        std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|old| extract_object(&old, "baseline").map(str::to_owned))
            .unwrap_or_else(|| now.to_json("baseline"))
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pcomm-hotpath-v1\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"host_parallelism\": {},\n",
            "  \"shard_note\": \"{}\",\n",
            "  \"baseline\": {},\n",
            "  \"current\": {}\n",
            "}}\n"
        ),
        if quick { "quick" } else { "full" },
        cores,
        shard_note,
        baseline,
        current
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("hotpath: wrote {out_path}");
}
