//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [--out DIR] <target>...
//! targets: fig4 fig5 fig6 fig7 fig8 tables model appendix summary all
//! ```

use std::path::PathBuf;
use std::time::Instant;

use pcomm_bench::figures;
use pcomm_bench::runner::RunOpts;
use pcomm_netmodel::MachineConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = RunOpts::paper();
    let mut out_dir = PathBuf::from("results");
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts = RunOpts::quick(),
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--out DIR] <fig4|fig5|fig6|fig7|fig8|theta|ablation|sensitivity|trace|tables|model|appendix|summary|all>..."
                );
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }
    if targets.iter().any(|t| t == "all") {
        targets = [
            "tables",
            "model",
            "appendix",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "theta",
            "ablation",
            "sensitivity",
            "trace",
            "summary",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let cfg = MachineConfig::meluxina();
    println!(
        "machine: MeluXina-like ({} GB/s, {} latency), protocol: {} iters + {} warmup, CI 90% ≤ {}%",
        cfg.bandwidth / 1e9,
        cfg.latency,
        opts.iterations,
        opts.warmup,
        opts.rel_halfwidth * 100.0
    );
    for t in targets {
        let t0 = Instant::now();
        match t.as_str() {
            "tables" => print!("{}", figures::tables()),
            "model" => print!("{}", figures::model_examples()),
            "appendix" => print!("{}", figures::appendix()),
            "summary" => print!("{}", figures::summary(&cfg, &opts)),
            "ablation" => print!("{}", figures::ablation(&cfg, &opts)),
            "sensitivity" => print!("{}", figures::sensitivity(&opts)),
            "trace" => print!("{}", figures::trace(Some(&out_dir))),
            "theta" => {
                let fig = figures::theta_sweep(&cfg, &opts);
                print!("{}", fig.render_text());
                match fig.write_csv(&out_dir) {
                    Ok(p) => println!("   -> {}", p.display()),
                    Err(e) => eprintln!("   csv write failed: {e}"),
                }
            }
            "fig4" | "fig5" | "fig6" | "fig7" | "fig8" => {
                let fig = match t.as_str() {
                    "fig4" => figures::fig4(&cfg, &opts),
                    "fig5" => figures::fig5(&cfg, &opts),
                    "fig6" => figures::fig6(&cfg, &opts),
                    "fig7" => figures::fig7(&cfg, &opts),
                    _ => figures::fig8(&cfg, &opts),
                };
                print!("{}", fig.render_text());
                match fig.write_csv(&out_dir) {
                    Ok(p) => println!("   -> {}", p.display()),
                    Err(e) => eprintln!("   csv write failed: {e}"),
                }
            }
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        }
        println!("   [{} took {:.1?}]\n", t, t0.elapsed());
    }
}
