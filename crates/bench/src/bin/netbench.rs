//! `netbench` — the same workload timed on both fabrics: ranks as
//! threads in one address space (shared memory) vs ranks as OS processes
//! wired together over Unix domain sockets.
//!
//! Three figures per fabric:
//!
//! * `pingpong_small_ns` — 256 B eager round trip;
//! * `pingpong_large_us` — 256 KiB rendezvous round trip (RTS/CTS and,
//!   on the wire, `RdvData` frames);
//! * `part_bw_mbps` — perceived bandwidth of a partitioned transfer
//!   (16 × 64 KiB partitions), timed on the receiving rank from `start`
//!   to `wait` — the paper's receiver-side view of early-bird overlap.
//!
//! The shared-memory pass runs in-process. The socket pass re-execs this
//! binary twice with `--child` under a `PCOMM_NET_*` environment, so the
//! numbers go through the real mesh rendezvous, progress threads, and
//! wire framing. Results go to `BENCH_net.json` at the repo root; the
//! first run seeds `baseline`, later runs overwrite `current`
//! (`--set-baseline` re-seeds, `--out <path>` redirects).
//!
//! ```text
//! cargo run --release -p pcomm-bench --bin netbench
//! cargo run --release -p pcomm-bench --bin netbench -- --quick --out /tmp/n.json
//! ```

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use pcomm_core::part::PartOptions;
use pcomm_core::Universe;
use pcomm_net::{launch, Backend, MultiprocEnv};

/// One fabric's worth of measurements.
#[derive(Debug, Clone, Copy)]
struct NetNumbers {
    pingpong_small_ns: f64,
    pingpong_large_us: f64,
    part_bw_mbps: f64,
}

impl NetNumbers {
    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"pingpong_small_ns\": {:.1},\n",
                "      \"pingpong_large_us\": {:.2},\n",
                "      \"part_bw_mbps\": {:.1}\n",
                "    }}"
            ),
            self.pingpong_small_ns, self.pingpong_large_us, self.part_bw_mbps,
        )
    }
}

/// Minimum of `reps` timed runs of `f`, where `f` returns (total ns, ops).
fn min_ns_per_op(reps: usize, mut f: impl FnMut() -> (f64, usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (ns, ops) = f();
        let per_op = ns / ops.max(1) as f64;
        if per_op < best {
            best = per_op;
        }
    }
    best
}

/// `bytes`-sized ping-pong; rank 0 reports ns per round trip. Works on
/// either fabric: under a `PCOMM_NET_*` environment `Universe::run`
/// routes rank 1 to the other process.
fn bench_pingpong(reps: usize, iters: usize, bytes: usize) -> f64 {
    let out = Universe::new(2)
        .run(|comm| {
            let mut buf = vec![0u8; bytes];
            if comm.rank() == 0 {
                min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        comm.send(1, 0, &buf);
                        comm.recv_into(Some(1), Some(0), &mut buf);
                    }
                    (t0.elapsed().as_nanos() as f64, iters)
                })
            } else {
                for _ in 0..reps {
                    comm.barrier();
                    for _ in 0..iters {
                        comm.recv_into(Some(0), Some(0), &mut buf);
                        comm.send(0, 0, &buf);
                    }
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Perceived bandwidth of a partitioned transfer, receiver-side. Rank 0
/// *receives* so the reporting rank is the same process in both the
/// in-process and multi-process configurations. Returns MB/s (best rep).
fn bench_part_bw(reps: usize, n_parts: usize, part_bytes: usize) -> f64 {
    let total = (n_parts * part_bytes) as f64;
    let out = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let pr = comm.precv_init(1, 3, n_parts, part_bytes, PartOptions::default());
                let best_ns = min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    pr.start();
                    pr.wait();
                    (t0.elapsed().as_nanos() as f64, 1)
                });
                // bytes per ns == GB/s; ×1000 for MB/s.
                total / best_ns * 1000.0
            } else {
                let ps = comm.psend_init(0, 3, n_parts, part_bytes, PartOptions::default());
                for _ in 0..reps {
                    comm.barrier();
                    ps.start();
                    for p in 0..n_parts {
                        ps.pready(p);
                    }
                    ps.wait();
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Run all three sections on whatever fabric the environment selects.
fn wire_sections(quick: bool) -> NetNumbers {
    let (reps, pp_iters) = if quick { (3, 300) } else { (10, 2_000) };
    let pingpong_small_ns = bench_pingpong(reps, pp_iters, 256);
    let pingpong_large_us = bench_pingpong(reps, pp_iters / 10 + 1, 256 * 1024) / 1_000.0;
    let part_bw_mbps = bench_part_bw(reps, 16, 64 * 1024);
    NetNumbers {
        pingpong_small_ns,
        pingpong_large_us,
        part_bw_mbps,
    }
}

/// SPMD child body: rank 0 writes its numbers where the parent reads them.
fn run_child(quick: bool) {
    let env = MultiprocEnv::from_env().expect("--child requires the PCOMM_NET_* environment");
    let n = wire_sections(quick);
    if env.rank == 0 {
        std::fs::write(env.dir.join("out-0"), n.to_json()).expect("write child results");
    }
}

/// Spawn the UDS pass: this binary, twice, as a 2-rank SPMD mesh.
fn run_uds_pass(quick: bool) -> NetNumbers {
    let dir = launch::unique_rendezvous_dir().expect("rendezvous dir");
    let spmd = MultiprocEnv {
        rank: 0,
        n_ranks: 2,
        dir: dir.clone(),
        backend: Backend::Uds,
    };
    let exe = std::env::current_exe().expect("netbench binary path");
    let children: Vec<_> = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--child");
            if quick {
                cmd.arg("--quick");
            }
            cmd.stdout(Stdio::null());
            spmd.apply_to(&mut cmd, rank);
            cmd.spawn().expect("spawn netbench child")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(600);
    for (rank, mut child) in children.into_iter().enumerate() {
        loop {
            match child.try_wait().expect("poll netbench child") {
                Some(status) => {
                    assert!(status.success(), "netbench child rank {rank}: {status}");
                    break;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    panic!("netbench child rank {rank} hung");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
    let raw = std::fs::read_to_string(dir.join("out-0")).expect("child results");
    let _ = std::fs::remove_dir_all(&dir);
    let field = |key: &str| -> f64 {
        let pat = format!("\"{key}\":");
        let at = raw.find(&pat).unwrap_or_else(|| panic!("missing {key}")) + pat.len();
        raw[at..]
            .trim_start()
            .split([',', '\n', '}'])
            .next()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("bad {key} in child output"))
    };
    NetNumbers {
        pingpong_small_ns: field("pingpong_small_ns"),
        pingpong_large_us: field("pingpong_large_us"),
        part_bw_mbps: field("part_bw_mbps"),
    }
}

/// Extract the balanced-brace object following `"<key>":` in `json`.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

fn pair_json(label: &str, shm: NetNumbers, uds: NetNumbers) -> String {
    format!(
        concat!(
            "{{\n",
            "    \"label\": \"{}\",\n",
            "    \"shm\": {},\n",
            "    \"uds\": {}\n",
            "  }}"
        ),
        label,
        shm.to_json(),
        uds.to_json()
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--child") {
        run_child(quick);
        return;
    }
    let set_baseline = args.iter().any(|a| a == "--set-baseline");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_net.json", env!("CARGO_MANIFEST_DIR")));

    eprintln!("netbench: shared-memory pass ...");
    let shm = wire_sections(quick);
    eprintln!("netbench: UDS pass (2 processes) ...");
    let uds = run_uds_pass(quick);

    println!("                          shared-mem          UDS");
    println!(
        "pingpong 256 B       {:>10.1} ns/rt {:>10.1} ns/rt",
        shm.pingpong_small_ns, uds.pingpong_small_ns
    );
    println!(
        "pingpong 256 KiB     {:>10.2} us/rt {:>10.2} us/rt",
        shm.pingpong_large_us, uds.pingpong_large_us
    );
    println!(
        "partitioned 1 MiB    {:>10.1} MB/s  {:>10.1} MB/s",
        shm.part_bw_mbps, uds.part_bw_mbps
    );

    let current = pair_json("current", shm, uds);
    let baseline = if set_baseline {
        pair_json("baseline", shm, uds)
    } else {
        std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|old| extract_object(&old, "baseline").map(str::to_owned))
            .unwrap_or_else(|| pair_json("baseline", shm, uds))
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pcomm-net-v1\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"baseline\": {},\n",
            "  \"current\": {}\n",
            "}}\n"
        ),
        if quick { "quick" } else { "full" },
        baseline,
        current
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("netbench: wrote {out_path}");
}
