//! `netbench` — the same workload timed on all three fabrics: ranks as
//! threads in one address space (shared memory), ranks as OS processes
//! wired together over Unix domain sockets, and ranks as OS processes
//! sharing a mapped segment with futex doorbells (`ipc`).
//!
//! Three figures per fabric:
//!
//! * `pingpong_small_ns` — 256 B eager round trip;
//! * `pingpong_large_us` — 256 KiB rendezvous round trip (RTS/CTS and,
//!   on the wire, `RdvData` frames);
//! * `part_bw_mbps` — perceived bandwidth of a partitioned transfer
//!   (16 × 64 KiB partitions), timed on the receiving rank from `start`
//!   to `wait` — the paper's receiver-side view of early-bird overlap.
//!
//! The shared-memory pass runs in-process. The socket pass re-execs this
//! binary twice with `--child` under a `PCOMM_NET_*` environment, so the
//! numbers go through the real mesh rendezvous, progress threads, and
//! wire framing. Results go to `BENCH_net.json` at the repo root; the
//! first run seeds `baseline`, later runs overwrite `current`
//! (`--set-baseline` re-seeds, `--out <path>` redirects).
//!
//! ```text
//! cargo run --release -p pcomm-bench --bin netbench
//! cargo run --release -p pcomm-bench --bin netbench -- --quick --out /tmp/n.json
//! ```

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use pcomm_core::part::PartOptions;
use pcomm_core::Universe;
use pcomm_net::{launch, Backend, MultiprocEnv};

/// One fabric's worth of measurements.
#[derive(Debug, Clone, Copy)]
struct NetNumbers {
    pingpong_small_ns: f64,
    pingpong_large_us: f64,
    part_bw_mbps: f64,
}

impl NetNumbers {
    fn to_json(self) -> String {
        format!(
            concat!(
                "{{\n",
                "      \"pingpong_small_ns\": {:.1},\n",
                "      \"pingpong_large_us\": {:.2},\n",
                "      \"part_bw_mbps\": {:.1}\n",
                "    }}"
            ),
            self.pingpong_small_ns, self.pingpong_large_us, self.part_bw_mbps,
        )
    }
}

/// Minimum of `reps` timed runs of `f`, where `f` returns (total ns, ops).
fn min_ns_per_op(reps: usize, mut f: impl FnMut() -> (f64, usize)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (ns, ops) = f();
        let per_op = ns / ops.max(1) as f64;
        if per_op < best {
            best = per_op;
        }
    }
    best
}

/// `bytes`-sized ping-pong; rank 0 reports ns per round trip. Works on
/// either fabric: under a `PCOMM_NET_*` environment `Universe::run`
/// routes rank 1 to the other process.
fn bench_pingpong(reps: usize, iters: usize, bytes: usize) -> f64 {
    let out = Universe::new(2)
        .run(|comm| {
            let mut buf = vec![0u8; bytes];
            if comm.rank() == 0 {
                min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        comm.send(1, 0, &buf);
                        comm.recv_into(Some(1), Some(0), &mut buf);
                    }
                    (t0.elapsed().as_nanos() as f64, iters)
                })
            } else {
                for _ in 0..reps {
                    comm.barrier();
                    for _ in 0..iters {
                        comm.recv_into(Some(0), Some(0), &mut buf);
                        comm.send(0, 0, &buf);
                    }
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Perceived bandwidth of a partitioned transfer, receiver-side. Rank 0
/// *receives* so the reporting rank is the same process in both the
/// in-process and multi-process configurations. `legacy` selects the
/// single-message CTS baseline instead of the improved (and, over the
/// wire, streaming) path. Returns MB/s (best rep).
fn bench_part_bw(reps: usize, n_parts: usize, part_bytes: usize, legacy: bool) -> f64 {
    let total = (n_parts * part_bytes) as f64;
    let opts = PartOptions {
        legacy_single_message: legacy,
        ..PartOptions::default()
    };
    let out = Universe::new(2)
        .run(|comm| {
            if comm.rank() == 0 {
                let pr = comm.precv_init(1, 3, n_parts, part_bytes, opts.clone());
                let best_ns = min_ns_per_op(reps, || {
                    comm.barrier();
                    let t0 = Instant::now();
                    pr.start();
                    pr.wait();
                    (t0.elapsed().as_nanos() as f64, 1)
                });
                // bytes per ns == GB/s; ×1000 for MB/s.
                total / best_ns * 1000.0
            } else {
                let ps = comm.psend_init(0, 3, n_parts, part_bytes, opts.clone());
                for _ in 0..reps {
                    comm.barrier();
                    ps.start();
                    for p in 0..n_parts {
                        ps.pready(p);
                    }
                    ps.wait();
                }
                0.0
            }
        })
        .expect("bench universe failed");
    out[0]
}

/// Total message sizes of the early-bird crossover sweep (16 KiB …
/// 4 MiB, 16 partitions each).
const SWEEP_BYTES: [usize; 5] = [
    16 * 1024,
    64 * 1024,
    256 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
];
const SWEEP_PARTS: usize = 16;

/// One point of the crossover sweep: the streaming (improved) path vs
/// the legacy single-message baseline at the same total size.
#[derive(Debug, Clone, Copy)]
struct SweepPoint {
    bytes: usize,
    stream_mbps: f64,
    legacy_mbps: f64,
}

/// Message-size sweep on the current fabric: where does early-bird
/// streaming pull ahead of the legacy single-message transfer?
fn bench_sweep(quick: bool) -> Vec<SweepPoint> {
    if part_only() {
        return Vec::new();
    }
    let reps = if quick { 2 } else { 8 };
    SWEEP_BYTES
        .iter()
        .map(|&bytes| SweepPoint {
            bytes,
            stream_mbps: bench_part_bw(reps, SWEEP_PARTS, bytes / SWEEP_PARTS, false),
            legacy_mbps: bench_part_bw(reps, SWEEP_PARTS, bytes / SWEEP_PARTS, true),
        })
        .collect()
}

fn sweep_json(fabric: &str, points: &[SweepPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"bytes\": {}, \"stream_mbps\": {:.1}, \"legacy_mbps\": {:.1} }}",
                p.bytes, p.stream_mbps, p.legacy_mbps
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"fabric\": \"{}\",\n",
            "    \"n_parts\": {},\n",
            "    \"points\": [\n{}\n    ]\n",
            "  }}"
        ),
        fabric,
        SWEEP_PARTS,
        rows.join(",\n")
    )
}

/// The wire fabric this process (or its children) will use, as the
/// label that goes into the output JSON.
fn fabric_label() -> &'static str {
    match launch::fabric_from_env() {
        launch::FabricKind::Ipc => "ipc",
        launch::FabricKind::Socket => "uds",
    }
}

/// Run all three sections on whatever fabric the environment selects.
/// `PCOMM_NETBENCH_PART_ONLY=1` skips the ping-pongs and the sweep — a
/// fast inner loop for tuning the streaming path.
fn part_only() -> bool {
    std::env::var("PCOMM_NETBENCH_PART_ONLY").is_ok_and(|v| v == "1")
}

fn wire_sections(quick: bool) -> NetNumbers {
    let (reps, pp_iters) = if quick { (3, 300) } else { (10, 2_000) };
    let (pingpong_small_ns, pingpong_large_us) = if part_only() {
        (0.0, 0.0)
    } else {
        (
            bench_pingpong(reps, pp_iters, 256),
            bench_pingpong(reps, pp_iters / 10 + 1, 256 * 1024) / 1_000.0,
        )
    };
    // One transfer is ~hundreds of µs; a deep rep count is cheap and the
    // min is what rejects this box's scheduler noise (1 shared CPU).
    let part_reps = if quick { 3 } else { 40 };
    let part_bw_mbps = bench_part_bw(part_reps, 16, 64 * 1024, false);
    NetNumbers {
        pingpong_small_ns,
        pingpong_large_us,
        part_bw_mbps,
    }
}

/// SPMD child body: rank 0 writes its numbers where the parent reads
/// them. Both ranks run the sweep too — each point is its own 2-rank
/// universe, and the mesh sequence numbers stay in lockstep only if both
/// processes execute the same run sequence.
fn run_child(quick: bool) {
    let env = MultiprocEnv::from_env().expect("--child requires the PCOMM_NET_* environment");
    let n = wire_sections(quick);
    let sweep = bench_sweep(quick);
    if env.rank == 0 {
        let body = format!(
            "{{\n  \"figures\": {},\n  \"sweep\": {}\n}}",
            n.to_json(),
            sweep_json(fabric_label(), &sweep)
        );
        std::fs::write(env.dir.join("out-0"), body).expect("write child results");
    }
}

/// Spawn this binary twice as a 2-rank SPMD mesh over UDS and return
/// rank 0's raw result file. `common_env` applies to both ranks,
/// `rank1_env` only to rank 1 (per-rank fault plans).
fn spawn_uds_children(
    quick: bool,
    common_env: &[(&str, &str)],
    rank1_env: &[(&str, &str)],
) -> String {
    let dir = launch::unique_rendezvous_dir().expect("rendezvous dir");
    let spmd = MultiprocEnv {
        rank: 0,
        n_ranks: 2,
        dir: dir.clone(),
        backend: Backend::Uds,
    };
    let exe = std::env::current_exe().expect("netbench binary path");
    let children: Vec<_> = (0..2)
        .map(|rank| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--child");
            if quick {
                cmd.arg("--quick");
            }
            cmd.stdout(Stdio::null());
            spmd.apply_to(&mut cmd, rank);
            for (k, v) in common_env {
                cmd.env(k, v);
            }
            if rank == 1 {
                for (k, v) in rank1_env {
                    cmd.env(k, v);
                }
            }
            cmd.spawn().expect("spawn netbench child")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(600);
    for (rank, mut child) in children.into_iter().enumerate() {
        loop {
            match child.try_wait().expect("poll netbench child") {
                Some(status) => {
                    assert!(status.success(), "netbench child rank {rank}: {status}");
                    break;
                }
                None if Instant::now() >= deadline => {
                    let _ = child.kill();
                    panic!("netbench child rank {rank} hung");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
    let raw = std::fs::read_to_string(dir.join("out-0")).expect("child results");
    let _ = std::fs::remove_dir_all(&dir);
    raw
}

/// Read `"key": <number>` from `json`, panicking with context if absent.
fn field(json: &str, key: &str) -> f64 {
    json_f64(json, key).unwrap_or_else(|| panic!("missing or bad {key} in child output"))
}

/// Spawn a wire pass: this binary, twice, as a 2-rank SPMD mesh over a
/// UDS bootstrap, with `common_env` selecting the fabric. Returns the
/// three figures plus the crossover sweep (as a JSON object, passed
/// through to the output file verbatim).
fn run_wire_pass(quick: bool, common_env: &[(&str, &str)]) -> (NetNumbers, String) {
    let raw = spawn_uds_children(quick, common_env, &[]);
    let sweep = extract_object(&raw, "sweep")
        .expect("missing sweep in child output")
        .to_owned();
    (
        NetNumbers {
            pingpong_small_ns: field(&raw, "pingpong_small_ns"),
            pingpong_large_us: field(&raw, "pingpong_large_us"),
            part_bw_mbps: field(&raw, "part_bw_mbps"),
        },
        sweep,
    )
}

/// The `--degraded` pass: the same partitioned-bandwidth workload over a
/// 3-lane mesh whose data lane 2 is killed (seeded) 128 KiB into the
/// sender's stream. The writer fails the lane over to the survivor
/// mid-transfer; the min-of-reps figure is therefore the steady-state
/// bandwidth of the degraded mesh, not the hiccup itself.
fn run_degraded_pass(quick: bool) -> f64 {
    let raw = spawn_uds_children(
        quick,
        &[("PCOMM_NETBENCH_PART_ONLY", "1"), ("PCOMM_NET_LANES", "3")],
        &[("PCOMM_FAULTS", "seed=7,lanekill=2:131072")],
    );
    field(&raw, "part_bw_mbps")
}

/// Extract the balanced-brace object following `"<key>":` in `json`.
fn extract_object<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = json.find(&pat)?;
    let open = at + json[at..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[open..open + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

fn trio_json(label: &str, shm: NetNumbers, uds: NetNumbers, ipc: Option<NetNumbers>) -> String {
    let ipc_line = match ipc {
        Some(n) => format!(",\n    \"ipc\": {}", n.to_json()),
        None => String::new(),
    };
    format!(
        concat!(
            "{{\n",
            "    \"label\": \"{}\",\n",
            "    \"shm\": {},\n",
            "    \"uds\": {}{}\n",
            "  }}"
        ),
        label,
        shm.to_json(),
        uds.to_json(),
        ipc_line
    )
}

/// Read `"key": <number>` anywhere in `json`.
fn json_f64(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    json[at..]
        .trim_start()
        .split([',', '\n', '}'])
        .next()
        .and_then(|v| v.trim().parse().ok())
}

/// Regression guard: the freshly measured partitioned bandwidth must
/// not fall below the recorded baseline (10 % noise allowance), per
/// fabric — `uds` always, `ipc` whenever the baseline has recorded ipc
/// figures and this run measured them. Exits nonzero on regression so
/// CI fails loudly.
fn run_guard(guard_path: &str, uds: NetNumbers, ipc: Option<NetNumbers>) {
    let raw = std::fs::read_to_string(guard_path)
        .unwrap_or_else(|e| panic!("--guard: cannot read {guard_path}: {e}"));
    let baseline = extract_object(&raw, "baseline")
        .unwrap_or_else(|| panic!("--guard: no baseline in {guard_path}"));
    let check = |fabric: &str, measured: f64| {
        let Some(base) = extract_object(baseline, fabric).and_then(|u| json_f64(u, "part_bw_mbps"))
        else {
            if fabric == "uds" {
                panic!("--guard: no baseline.uds.part_bw_mbps in {guard_path}");
            }
            eprintln!("netbench: guard: no {fabric} baseline recorded yet, skipping");
            return;
        };
        let floor = base * 0.9;
        if measured < floor {
            eprintln!(
                "netbench: GUARD FAILED: {fabric} part_bw_mbps {measured:.1} < {floor:.1} \
                 (baseline {base:.1} from {guard_path}, 10% allowance)"
            );
            std::process::exit(1);
        }
        eprintln!(
            "netbench: guard ok: {fabric} part_bw_mbps {measured:.1} >= {floor:.1} \
             (baseline {base:.1})"
        );
    };
    check("uds", uds.part_bw_mbps);
    if let Some(ipc) = ipc {
        check("ipc", ipc.part_bw_mbps);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--child") {
        run_child(quick);
        return;
    }
    let set_baseline = args.iter().any(|a| a == "--set-baseline");
    let degraded = args.iter().any(|a| a == "--degraded");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| format!("{}/../../BENCH_net.json", env!("CARGO_MANIFEST_DIR")));
    let guard_path = args
        .iter()
        .position(|a| a == "--guard")
        .and_then(|i| args.get(i + 1).cloned());

    eprintln!("netbench: shared-memory pass ...");
    let shm = wire_sections(quick);
    eprintln!("netbench: UDS pass (2 processes) ...");
    let (uds, sweep) = run_wire_pass(quick, &[]);
    let ipc_pass = pcomm_net::sys::supported().then(|| {
        eprintln!("netbench: ipc pass (2 processes, shared segment) ...");
        run_wire_pass(quick, &[("PCOMM_NET_FABRIC", "ipc")])
    });
    if ipc_pass.is_none() {
        eprintln!("netbench: ipc fabric unsupported on this platform, skipping");
    }
    let ipc = ipc_pass.as_ref().map(|(n, _)| *n);
    let degraded_bw = degraded.then(|| {
        eprintln!("netbench: degraded pass (lane 2 killed mid-stream) ...");
        run_degraded_pass(quick)
    });

    let ipc_col = |v: f64, unit: &str| match ipc {
        Some(_) => format!(" {v:>10.1} {unit}"),
        None => String::new(),
    };
    println!("                          shared-mem          UDS          ipc");
    println!(
        "pingpong 256 B       {:>10.1} ns/rt {:>10.1} ns/rt{}",
        shm.pingpong_small_ns,
        uds.pingpong_small_ns,
        ipc_col(ipc.map_or(0.0, |n| n.pingpong_small_ns), "ns/rt")
    );
    println!(
        "pingpong 256 KiB     {:>10.2} us/rt {:>10.2} us/rt{}",
        shm.pingpong_large_us,
        uds.pingpong_large_us,
        ipc_col(ipc.map_or(0.0, |n| n.pingpong_large_us), "us/rt")
    );
    println!(
        "partitioned 1 MiB    {:>10.1} MB/s  {:>10.1} MB/s{}",
        shm.part_bw_mbps,
        uds.part_bw_mbps,
        ipc_col(ipc.map_or(0.0, |n| n.part_bw_mbps), "MB/s")
    );
    if let Some(bw) = degraded_bw {
        println!(
            "  degraded (lane killed) {:>24.1} MB/s  ({:.2}x healthy)",
            bw,
            bw / uds.part_bw_mbps.max(f64::MIN_POSITIVE)
        );
    }
    println!("early-bird crossover (uds, {SWEEP_PARTS} parts):");
    println!("      bytes      stream      legacy");
    for &bytes in &SWEEP_BYTES {
        let at = sweep.find(&format!("\"bytes\": {bytes},"));
        let (s, l) = at
            .map(|i| &sweep[i..])
            .map(|row| {
                (
                    json_f64(row, "stream_mbps").unwrap_or(0.0),
                    json_f64(row, "legacy_mbps").unwrap_or(0.0),
                )
            })
            .unwrap_or((0.0, 0.0));
        println!("{bytes:>11} {s:>9.1} MB/s {l:>7.1} MB/s");
    }

    let current = trio_json("current", shm, uds, ipc);
    let baseline = if set_baseline {
        trio_json("baseline", shm, uds, ipc)
    } else {
        std::fs::read_to_string(&out_path)
            .ok()
            .and_then(|old| extract_object(&old, "baseline").map(str::to_owned))
            .unwrap_or_else(|| trio_json("baseline", shm, uds, ipc))
    };
    let degraded_json = match degraded_bw {
        Some(bw) => format!(
            concat!(
                "  \"degraded\": {{\n",
                "    \"part_bw_mbps\": {:.1},\n",
                "    \"healthy_part_bw_mbps\": {:.1},\n",
                "    \"ratio\": {:.3}\n",
                "  }},\n"
            ),
            bw,
            uds.part_bw_mbps,
            bw / uds.part_bw_mbps.max(f64::MIN_POSITIVE)
        ),
        None => String::new(),
    };
    let sweep_ipc = match &ipc_pass {
        Some((_, s)) => format!(",\n  \"sweep_ipc\": {s}"),
        None => String::new(),
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"pcomm-net-v1\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"baseline\": {},\n",
            "  \"current\": {},\n",
            "{}",
            "  \"sweep\": {}{}\n",
            "}}\n"
        ),
        if quick { "quick" } else { "full" },
        baseline,
        current,
        degraded_json,
        sweep,
        sweep_ipc
    );
    std::fs::write(&out_path, json).expect("write bench output");
    eprintln!("netbench: wrote {out_path}");
    if let Some(gpath) = guard_path {
        run_guard(&gpath, uds, ipc);
    }
    if let Some(bw) = degraded_bw {
        // A mesh minus one data lane must keep at least half its healthy
        // bandwidth — failover that limps is a regression, fail loudly.
        let floor = uds.part_bw_mbps * 0.5;
        if bw < floor {
            eprintln!(
                "netbench: DEGRADED FLOOR FAILED: {bw:.1} MB/s < {floor:.1} MB/s \
                 (healthy {:.1} MB/s, 0.5x floor)",
                uds.part_bw_mbps
            );
            std::process::exit(1);
        }
        eprintln!(
            "netbench: degraded ok: {bw:.1} MB/s >= {floor:.1} MB/s (healthy {:.1} MB/s)",
            uds.part_bw_mbps
        );
    }
}
