//! Repo lint: every `unsafe` site must carry a written justification.
//!
//! A site passes when the `unsafe` line itself carries a `// SAFETY:`
//! trailing comment, or when the contiguous block of lines directly
//! above it — comments, attributes, or sibling `unsafe impl` lines —
//! contains `SAFETY:` (block/impl justifications) or `# Safety` (the
//! rustdoc section conventionally documenting an `unsafe fn`'s
//! contract). Run from the repo root (`ci.sh` does); exits non-zero
//! listing every unjustified site.
//!
//! The transport hot path gets two extra marker rules, scoped to
//! `crates/core/src/transport.rs` and `crates/net/` (non-test code):
//!
//! * every `Ordering::Relaxed` load/store needs an adjacent
//!   `// ORDERING:` comment saying why relaxed is enough — these are
//!   exactly the sites where a missing fence becomes a wire-protocol
//!   heisenbug, and the audit tooling can only check what the code
//!   promises;
//! * every `unwrap()` / `expect()` needs an adjacent `// PANIC:`
//!   comment naming the invariant that makes the panic unreachable —
//!   a panic in the progress engine takes the whole mesh down, so
//!   "can't happen" must be written down where it can be reviewed;
//! * every inline-`asm!` raw-syscall site needs an adjacent
//!   `// SYSCALL:` comment naming the kernel interface it issues and
//!   why std has no safe equivalent — the ipc fabric talks to the
//!   kernel directly (`crates/net/src/sys.rs`) and each such site must
//!   be auditable against the documented ABI.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// `unsafe` as a whole word in the code portion of a line.
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let after_ok =
            end >= bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// The code portion of a line: everything before a `//` comment, with a
/// crude string-literal strip so `"unsafe"` inside a string or a `//`
/// inside one do not confuse the scan.
fn code_portion(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => in_str = !in_str,
            '\\' if in_str => {
                chars.next();
            }
            '/' if !in_str && chars.peek() == Some(&'/') => break,
            _ if in_str => {}
            _ => out.push(c),
        }
    }
    out
}

/// Is this line part of a justification block when walking upwards?
fn continues_block(trimmed: &str) -> bool {
    trimmed.starts_with("//")
        || trimmed.starts_with('#')
        || trimmed.starts_with("unsafe impl")
        || trimmed.is_empty()
}

/// A site is justified when the line itself, or the contiguous block of
/// comment/attribute lines directly above it, contains any of `markers`.
fn justified_by(lines: &[&str], idx: usize, markers: &[&str]) -> bool {
    let hit = |line: &str| markers.iter().any(|m| line.contains(m));
    if hit(lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let trimmed = lines[i].trim_start();
        if !continues_block(trimmed) {
            return false;
        }
        if hit(trimmed) {
            return true;
        }
    }
    false
}

fn justified(lines: &[&str], idx: usize) -> bool {
    justified_by(lines, idx, &["SAFETY:", "# Safety"])
}

/// One scoped marker rule: `pattern` in the code portion of a line
/// demands an adjacent `marker` justification comment.
struct MarkerRule {
    patterns: &'static [&'static str],
    marker: &'static str,
    what: &'static str,
}

const MARKER_RULES: &[MarkerRule] = &[
    MarkerRule {
        patterns: &["Ordering::Relaxed"],
        marker: "ORDERING:",
        what: "Relaxed atomic",
    },
    MarkerRule {
        patterns: &[".unwrap(", ".expect("],
        marker: "PANIC:",
        what: "unwrap/expect",
    },
    MarkerRule {
        patterns: &["asm!"],
        marker: "SYSCALL:",
        what: "raw syscall (inline asm)",
    },
];

/// Do the extra marker rules apply to this file? The scope is the wire
/// transport and everything under `crates/net/` — the code where a
/// silent ordering bug or a progress-engine panic is most expensive.
fn marker_scoped(path: &Path) -> bool {
    let p = path.to_string_lossy().replace('\\', "/");
    // Integration tests get the same dispensation as `#[cfg(test)]`.
    if p.contains("/tests/") {
        return false;
    }
    p.ends_with("crates/core/src/transport.rs") || p.contains("crates/net/")
}

fn scan_file(path: &Path, offenders: &mut Vec<String>) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    let lines: Vec<&str> = text.lines().collect();
    let scoped = marker_scoped(path);
    let mut sites = 0;
    let mut in_tests = false;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        // The marker rules stop at the test module: tests unwrap freely
        // and poke atomics without the hot path's obligations.
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        // Doc/comment lines mentioning unsafe are prose, not sites.
        if trimmed.starts_with("//") {
            continue;
        }
        let code = code_portion(line);
        if has_unsafe_token(&code) {
            sites += 1;
            if !justified(&lines, idx) {
                offenders.push(format!("{}:{}: {}", path.display(), idx + 1, trimmed));
            }
        }
        if !scoped || in_tests {
            continue;
        }
        for rule in MARKER_RULES {
            if !rule.patterns.iter().any(|p| code.contains(p)) {
                continue;
            }
            sites += 1;
            if !justified_by(&lines, idx, &[rule.marker]) {
                offenders.push(format!(
                    "{}:{}: {} needs `// {}`: {}",
                    path.display(),
                    idx + 1,
                    rule.what,
                    rule.marker,
                    trimmed
                ));
            }
        }
    }
    sites
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

fn main() -> ExitCode {
    let mut files = Vec::new();
    for root in ["crates", "src", "tests", "examples", "benches"] {
        walk(Path::new(root), &mut files);
    }
    files.sort();
    let mut offenders = Vec::new();
    let mut sites = 0;
    for f in &files {
        sites += scan_file(f, &mut offenders);
    }
    if offenders.is_empty() {
        println!(
            "safety_lint: {} justified sites (unsafe / Relaxed / unwrap / asm) across {} files",
            sites,
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "safety_lint: {} of {} sites lack a written justification:",
            offenders.len(),
            sites
        );
        for o in &offenders {
            eprintln!("  {o}");
        }
        eprintln!(
            "add a `// SAFETY: ...` (unsafe), `// ORDERING: ...` (Relaxed atomics), \
             `// PANIC: ...` (unwrap/expect), or `// SYSCALL: ...` (inline asm) comment \
             above each site"
        );
        ExitCode::FAILURE
    }
}
