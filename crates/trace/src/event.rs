//! The typed event taxonomy: every phenomenon the paper measures, as a
//! compact fixed-size record.
//!
//! Events encode to four `u64` words so the ring recorder can store them
//! in atomic slots (seqlock publication, no allocation on the hot path):
//!
//! ```text
//! w0 = timestamp [ns]
//! w1 = tag(16) | rank(16) | aux1(16) | aux2(16)
//! w2, w3 = two u64 payload fields (bytes, durations, counters)
//! ```

use std::fmt;

/// Which chaos fault a [`EventKind::FaultInjected`] event records.
///
/// The discriminants are the on-wire codes (stored in `aux1` of the
/// four-word encoding); they are stable and must not be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A message attempt was dropped before delivery.
    Drop = 1,
    /// A message was delayed before delivery.
    Delay = 2,
    /// An eager message was delivered twice.
    Duplicate = 3,
    /// A message was held back so a later one overtakes it.
    Reorder = 4,
    /// The issue order of a `pready_range`/`pready_list` was permuted.
    PreadyJitter = 5,
}

impl FaultKind {
    /// Stable wire code (the enum discriminant).
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decode a wire code; `None` for unknown codes.
    pub fn from_code(code: u16) -> Option<FaultKind> {
        Some(match code {
            1 => FaultKind::Drop,
            2 => FaultKind::Delay,
            3 => FaultKind::Duplicate,
            4 => FaultKind::Reorder,
            5 => FaultKind::PreadyJitter,
            _ => return None,
        })
    }

    /// Stable lower-case name, greppable in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::PreadyJitter => "pready_jitter",
        }
    }
}

/// One trace event: a timestamp, the rank it is attributed to, and a
/// typed payload.
///
/// Timestamps are nanoseconds since the trace epoch — wall-clock on the
/// real runtime, virtual time in the simulator. The shared timebase is
/// what makes sim and real traces directly comparable in one viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Rank the event is attributed to.
    pub rank: u16,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy, covering the paper's phenomena end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Waited to acquire a match-shard lock (real runtime) or a VCI
    /// (simulator) — the contention of Figs. 5–6. Span.
    LockWait {
        /// Shard / VCI index.
        shard: u16,
        /// Time spent waiting for the lock, in ns.
        wait_ns: u64,
    },
    /// Injected an eager (bcopy) message. Instant.
    EagerSend {
        /// Destination rank.
        dst: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
    },
    /// Posted a rendezvous (zcopy) send — the RTS. Instant.
    RdvSend {
        /// Destination rank.
        dst: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
    },
    /// A rendezvous transfer completed: from RTS to the zero-copy data
    /// landing (the time the sender's buffer stayed pinned). Span.
    RdvCopy {
        /// Shard the match completed on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
        /// RTS-to-completion time in ns.
        wait_ns: u64,
    },
    /// `MPI_Pready(p)` was called. Instant.
    Pready {
        /// Partition index.
        part: u64,
    },
    /// The last `pready` of an internal message injected it — the
    /// early-bird send of Fig. 8. `gap_ns` is the pready→fabric-send
    /// latency. Instant.
    EarlyBird {
        /// Internal message index.
        msg: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Message bytes.
        bytes: u64,
        /// Latency from the completing `pready` to the fabric send, ns.
        gap_ns: u64,
    },
    /// A partitioned layout was negotiated: `base_msgs` gcd messages
    /// folded into `msgs` under the aggregation bound (Fig. 7). Instant.
    AggrLayout {
        /// gcd(N_send, N_recv) base message count.
        base_msgs: u16,
        /// Messages after aggregation.
        msgs: u16,
        /// Bytes of the first (typical) message.
        bytes_per_msg: u64,
    },
    /// Legacy path: waited for the receiver's clear-to-send (the
    /// per-iteration CTS round-trip of Fig. 4). Span.
    CtsWait {
        /// Peer rank.
        peer: u16,
        /// Time blocked on the CTS, ns.
        wait_ns: u64,
    },
    /// `wait()` on a partitioned request: entry to all-messages-complete.
    /// Span. Early-bird sends *outside* this span overlapped compute.
    PartWait {
        /// Internal messages drained.
        msgs: u16,
        /// Time inside `wait()`, ns.
        wait_ns: u64,
    },
    /// RMA active-target epoch opened (origin blocked for the post). Span.
    EpochOpen {
        /// Window id (low bits of the window context).
        win: u16,
        /// Time blocked waiting for the target's post, ns.
        wait_ns: u64,
    },
    /// RMA epoch closed with `puts` puts flushed. Instant.
    EpochClose {
        /// Window id.
        win: u16,
        /// Puts in the epoch.
        puts: u64,
    },
    /// An eager send acquired its payload buffer: from the per-rank pool
    /// (`hit`) or via a fresh allocation (miss). Instant.
    EagerPool {
        /// Shard the message was injected on.
        shard: u16,
        /// Whether a recycled buffer was reused.
        hit: bool,
        /// Payload bytes.
        bytes: u64,
    },
    /// Per-rank completion probe-path counters for the run: probes
    /// answered by the single-atomic-load fast path vs waits that fell
    /// through to spin-then-park. Instant, emitted at rank exit.
    ProbeStats {
        /// Fast-path probes (`is_set` / immediate `wait` returns).
        fast_probes: u64,
        /// Waits that registered and parked.
        slow_waits: u64,
    },
    /// The chaos layer injected a fault on a message (or a `pready`
    /// order). Instant, attributed to the sending rank.
    FaultInjected {
        /// Which fault.
        fault: FaultKind,
        /// Destination rank of the affected message.
        dst: u16,
        /// Tag of the affected message (negative tags are the internal
        /// CTS/DATA/RMA control tags).
        tag: i64,
        /// Fault-specific argument: attempt index for `Drop`, delay in
        /// microseconds for `Delay`, extra copies for `Duplicate`,
        /// held-back messages for `Reorder`, permutation round for
        /// `PreadyJitter`.
        arg: u64,
    },
    /// A dropped message attempt is being resent (bounded retry).
    /// Instant, attributed to the sending rank.
    RetryAttempt {
        /// Destination rank.
        dst: u16,
        /// Retry attempt number (1 = first resend).
        attempt: u16,
        /// Tag of the message being resent.
        tag: i64,
    },
    /// The watchdog declared the universe stalled and produced a
    /// `StallReport`. Instant, emitted once by the supervisor.
    StallDetected {
        /// Number of blocked waits at detection time.
        blocked: u16,
        /// Configured watchdog deadline, ms.
        watchdog_ms: u64,
        /// Observed quiet period with no fabric activity, ms.
        quiet_ms: u64,
    },
}

const TAG_LOCK_WAIT: u64 = 1;
const TAG_EAGER_SEND: u64 = 2;
const TAG_RDV_SEND: u64 = 3;
const TAG_RDV_COPY: u64 = 4;
const TAG_PREADY: u64 = 5;
const TAG_EARLY_BIRD: u64 = 6;
const TAG_AGGR_LAYOUT: u64 = 7;
const TAG_CTS_WAIT: u64 = 8;
const TAG_PART_WAIT: u64 = 9;
const TAG_EPOCH_OPEN: u64 = 10;
const TAG_EPOCH_CLOSE: u64 = 11;
const TAG_EAGER_POOL: u64 = 12;
const TAG_PROBE_STATS: u64 = 13;
const TAG_FAULT_INJECTED: u64 = 14;
const TAG_RETRY_ATTEMPT: u64 = 15;
const TAG_STALL_DETECTED: u64 = 16;

fn pack_w1(tag: u64, rank: u16, aux1: u16, aux2: u16) -> u64 {
    (tag << 48) | ((rank as u64) << 32) | ((aux1 as u64) << 16) | aux2 as u64
}

impl Event {
    /// Encode into the four-word wire format.
    pub fn encode(&self) -> [u64; 4] {
        let (tag, aux1, aux2, w2, w3) = match self.kind {
            EventKind::LockWait { shard, wait_ns } => (TAG_LOCK_WAIT, shard, 0, wait_ns, 0),
            EventKind::EagerSend { dst, shard, bytes } => (TAG_EAGER_SEND, dst, shard, bytes, 0),
            EventKind::RdvSend { dst, shard, bytes } => (TAG_RDV_SEND, dst, shard, bytes, 0),
            EventKind::RdvCopy {
                shard,
                bytes,
                wait_ns,
            } => (TAG_RDV_COPY, shard, 0, bytes, wait_ns),
            EventKind::Pready { part } => (TAG_PREADY, 0, 0, part, 0),
            EventKind::EarlyBird {
                msg,
                shard,
                bytes,
                gap_ns,
            } => (TAG_EARLY_BIRD, msg, shard, bytes, gap_ns),
            EventKind::AggrLayout {
                base_msgs,
                msgs,
                bytes_per_msg,
            } => (TAG_AGGR_LAYOUT, base_msgs, msgs, bytes_per_msg, 0),
            EventKind::CtsWait { peer, wait_ns } => (TAG_CTS_WAIT, peer, 0, wait_ns, 0),
            EventKind::PartWait { msgs, wait_ns } => (TAG_PART_WAIT, msgs, 0, wait_ns, 0),
            EventKind::EpochOpen { win, wait_ns } => (TAG_EPOCH_OPEN, win, 0, wait_ns, 0),
            EventKind::EpochClose { win, puts } => (TAG_EPOCH_CLOSE, win, 0, puts, 0),
            EventKind::EagerPool { shard, hit, bytes } => {
                (TAG_EAGER_POOL, shard, hit as u16, bytes, 0)
            }
            EventKind::ProbeStats {
                fast_probes,
                slow_waits,
            } => (TAG_PROBE_STATS, 0, 0, fast_probes, slow_waits),
            EventKind::FaultInjected {
                fault,
                dst,
                tag,
                arg,
            } => (TAG_FAULT_INJECTED, fault.code(), dst, tag as u64, arg),
            EventKind::RetryAttempt { dst, attempt, tag } => {
                (TAG_RETRY_ATTEMPT, dst, attempt, tag as u64, 0)
            }
            EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            } => (TAG_STALL_DETECTED, blocked, 0, watchdog_ms, quiet_ms),
        };
        [self.ts_ns, pack_w1(tag, self.rank, aux1, aux2), w2, w3]
    }

    /// Decode the wire format; `None` for unknown tags (torn slots).
    pub fn decode(w: [u64; 4]) -> Option<Event> {
        let tag = w[1] >> 48;
        let rank = (w[1] >> 32) as u16;
        let aux1 = (w[1] >> 16) as u16;
        let aux2 = w[1] as u16;
        let kind = match tag {
            TAG_LOCK_WAIT => EventKind::LockWait {
                shard: aux1,
                wait_ns: w[2],
            },
            TAG_EAGER_SEND => EventKind::EagerSend {
                dst: aux1,
                shard: aux2,
                bytes: w[2],
            },
            TAG_RDV_SEND => EventKind::RdvSend {
                dst: aux1,
                shard: aux2,
                bytes: w[2],
            },
            TAG_RDV_COPY => EventKind::RdvCopy {
                shard: aux1,
                bytes: w[2],
                wait_ns: w[3],
            },
            TAG_PREADY => EventKind::Pready { part: w[2] },
            TAG_EARLY_BIRD => EventKind::EarlyBird {
                msg: aux1,
                shard: aux2,
                bytes: w[2],
                gap_ns: w[3],
            },
            TAG_AGGR_LAYOUT => EventKind::AggrLayout {
                base_msgs: aux1,
                msgs: aux2,
                bytes_per_msg: w[2],
            },
            TAG_CTS_WAIT => EventKind::CtsWait {
                peer: aux1,
                wait_ns: w[2],
            },
            TAG_PART_WAIT => EventKind::PartWait {
                msgs: aux1,
                wait_ns: w[2],
            },
            TAG_EPOCH_OPEN => EventKind::EpochOpen {
                win: aux1,
                wait_ns: w[2],
            },
            TAG_EPOCH_CLOSE => EventKind::EpochClose {
                win: aux1,
                puts: w[2],
            },
            TAG_EAGER_POOL => EventKind::EagerPool {
                shard: aux1,
                hit: aux2 != 0,
                bytes: w[2],
            },
            TAG_PROBE_STATS => EventKind::ProbeStats {
                fast_probes: w[2],
                slow_waits: w[3],
            },
            TAG_FAULT_INJECTED => EventKind::FaultInjected {
                fault: FaultKind::from_code(aux1)?,
                dst: aux2,
                tag: w[2] as i64,
                arg: w[3],
            },
            TAG_RETRY_ATTEMPT => EventKind::RetryAttempt {
                dst: aux1,
                attempt: aux2,
                tag: w[2] as i64,
            },
            TAG_STALL_DETECTED => EventKind::StallDetected {
                blocked: aux1,
                watchdog_ms: w[2],
                quiet_ms: w[3],
            },
            _ => return None,
        };
        Some(Event {
            ts_ns: w[0],
            rank,
            kind,
        })
    }
}

impl EventKind {
    /// Wrap into an [`Event`] at timestamp `ts_ns` (rank 0; span-emit
    /// paths overwrite the rank before recording).
    pub fn at(self, ts_ns: u64) -> Event {
        Event {
            ts_ns,
            rank: 0,
            kind: self,
        }
    }

    /// Stable event name (used by the exporters and greppable in JSON).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LockWait { .. } => "shard_lock_wait",
            EventKind::EagerSend { .. } => "eager_send",
            EventKind::RdvSend { .. } => "rdv_send",
            EventKind::RdvCopy { .. } => "rdv_copy",
            EventKind::Pready { .. } => "pready",
            EventKind::EarlyBird { .. } => "early_bird_send",
            EventKind::AggrLayout { .. } => "aggr_layout",
            EventKind::CtsWait { .. } => "cts_wait",
            EventKind::PartWait { .. } => "part_wait",
            EventKind::EpochOpen { .. } => "epoch_open",
            EventKind::EpochClose { .. } => "epoch_close",
            EventKind::EagerPool { .. } => "eager_pool",
            EventKind::ProbeStats { .. } => "probe_stats",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RetryAttempt { .. } => "retry_attempt",
            EventKind::StallDetected { .. } => "stall_detected",
        }
    }

    /// Span duration in ns (`Some` for span events, `None` for instants).
    pub fn dur_ns(&self) -> Option<u64> {
        match *self {
            EventKind::LockWait { wait_ns, .. }
            | EventKind::RdvCopy { wait_ns, .. }
            | EventKind::CtsWait { wait_ns, .. }
            | EventKind::PartWait { wait_ns, .. }
            | EventKind::EpochOpen { wait_ns, .. } => Some(wait_ns),
            _ => None,
        }
    }

    /// The track (shard / VCI lane) the event belongs to, for per-shard
    /// rendering; lane 0 for events without one.
    pub fn lane(&self) -> u16 {
        match *self {
            EventKind::LockWait { shard, .. }
            | EventKind::EagerSend { shard, .. }
            | EventKind::RdvSend { shard, .. }
            | EventKind::RdvCopy { shard, .. }
            | EventKind::EarlyBird { shard, .. }
            | EventKind::EagerPool { shard, .. } => shard,
            _ => 0,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.2}  {:>4}  ",
            self.ts_ns as f64 / 1000.0,
            self.rank
        )?;
        match self.kind {
            EventKind::LockWait { shard, wait_ns } => {
                write!(
                    f,
                    "lock wait shard {shard} ({:.2} us)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EagerSend { dst, shard, bytes } => {
                write!(f, "eager send -> rank {dst} shard {shard} ({bytes} B)")
            }
            EventKind::RdvSend { dst, shard, bytes } => {
                write!(f, "rendezvous RTS -> rank {dst} shard {shard} ({bytes} B)")
            }
            EventKind::RdvCopy {
                shard,
                bytes,
                wait_ns,
            } => write!(
                f,
                "rendezvous data landed shard {shard} ({bytes} B, {:.2} us pinned)",
                wait_ns as f64 / 1e3
            ),
            EventKind::Pready { part } => write!(f, "pready partition {part}"),
            EventKind::EarlyBird {
                msg,
                shard,
                bytes,
                gap_ns,
            } => write!(
                f,
                "message {msg} complete: early-bird send shard {shard} ({bytes} B, gap {:.2} us)",
                gap_ns as f64 / 1e3
            ),
            EventKind::AggrLayout {
                base_msgs,
                msgs,
                bytes_per_msg,
            } => write!(
                f,
                "layout: {base_msgs} base msgs aggregated to {msgs} x {bytes_per_msg} B"
            ),
            EventKind::CtsWait { peer, wait_ns } => {
                write!(
                    f,
                    "CTS from rank {peer} ({:.2} us wait)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::PartWait { msgs, wait_ns } => {
                write!(
                    f,
                    "wait: {msgs} msgs drained ({:.2} us)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EpochOpen { win, wait_ns } => {
                write!(
                    f,
                    "epoch open win {win} ({:.2} us wait)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EpochClose { win, puts } => {
                write!(f, "epoch close win {win} ({puts} puts)")
            }
            EventKind::EagerPool { shard, hit, bytes } => write!(
                f,
                "eager buffer {} shard {shard} ({bytes} B)",
                if hit { "pool hit" } else { "pool miss" }
            ),
            EventKind::ProbeStats {
                fast_probes,
                slow_waits,
            } => write!(
                f,
                "probe stats: {fast_probes} fast probes, {slow_waits} parked waits"
            ),
            EventKind::FaultInjected {
                fault,
                dst,
                tag,
                arg,
            } => write!(
                f,
                "fault {} -> rank {dst} tag {tag} (arg {arg})",
                fault.name()
            ),
            EventKind::RetryAttempt { dst, attempt, tag } => {
                write!(f, "retry {attempt} -> rank {dst} tag {tag}")
            }
            EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            } => write!(
                f,
                "STALL: {blocked} blocked waits, quiet {quiet_ms} ms (watchdog {watchdog_ms} ms)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::LockWait {
                shard: 3,
                wait_ns: 12_345,
            },
            EventKind::EagerSend {
                dst: 1,
                shard: 2,
                bytes: 512,
            },
            EventKind::RdvSend {
                dst: 7,
                shard: 0,
                bytes: 1 << 20,
            },
            EventKind::RdvCopy {
                shard: 1,
                bytes: 1 << 20,
                wait_ns: 99,
            },
            EventKind::Pready { part: 123_456 },
            EventKind::EarlyBird {
                msg: 5,
                shard: 1,
                bytes: 4096,
                gap_ns: 800,
            },
            EventKind::AggrLayout {
                base_msgs: 16,
                msgs: 4,
                bytes_per_msg: 2048,
            },
            EventKind::CtsWait {
                peer: 1,
                wait_ns: 5_000,
            },
            EventKind::PartWait {
                msgs: 4,
                wait_ns: 77,
            },
            EventKind::EpochOpen {
                win: 2,
                wait_ns: 1_000,
            },
            EventKind::EpochClose { win: 2, puts: 8 },
            EventKind::EagerPool {
                shard: 3,
                hit: true,
                bytes: 256,
            },
            EventKind::ProbeStats {
                fast_probes: 1_000_000,
                slow_waits: 12,
            },
            EventKind::FaultInjected {
                fault: FaultKind::Drop,
                dst: 1,
                tag: -1,
                arg: 2,
            },
            EventKind::RetryAttempt {
                dst: 1,
                attempt: 2,
                tag: 7,
            },
            EventKind::StallDetected {
                blocked: 3,
                watchdog_ms: 500,
                quiet_ms: 612,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_kind() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = Event {
                ts_ns: 1_000_000 + i as u64,
                rank: i as u16,
                kind,
            };
            assert_eq!(Event::decode(ev.encode()), Some(ev));
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert_eq!(Event::decode([0, 0, 0, 0]), None);
        assert_eq!(Event::decode([5, 0xffff << 48, 1, 2]), None);
    }

    #[test]
    fn fault_kind_codes_roundtrip() {
        for k in [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::PreadyJitter,
        ] {
            assert_eq!(FaultKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FaultKind::from_code(0), None);
        assert_eq!(FaultKind::from_code(6), None);
        // A torn fault_injected slot with a bogus fault code (aux1 = 99)
        // must not decode.
        let w = [7, (14u64 << 48) | (99u64 << 16), 0, 0];
        assert_eq!(Event::decode(w), None);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::HashSet<&str> = all_kinds().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 16);
        assert!(names.contains("shard_lock_wait"));
        assert!(names.contains("early_bird_send"));
        assert!(names.contains("eager_pool"));
        assert!(names.contains("probe_stats"));
        assert!(names.contains("fault_injected"));
        assert!(names.contains("retry_attempt"));
        assert!(names.contains("stall_detected"));
    }

    #[test]
    fn spans_and_instants_partition_the_taxonomy() {
        let spans = all_kinds().iter().filter(|k| k.dur_ns().is_some()).count();
        assert_eq!(spans, 5, "LockWait, RdvCopy, CtsWait, PartWait, EpochOpen");
    }

    #[test]
    fn display_is_human_readable() {
        let ev = Event {
            ts_ns: 1_500,
            rank: 0,
            kind: EventKind::Pready { part: 3 },
        };
        assert!(format!("{ev}").contains("pready partition 3"));
    }
}
