//! The typed event taxonomy: every phenomenon the paper measures, as a
//! compact fixed-size record.
//!
//! Events encode to four `u64` words so the ring recorder can store them
//! in atomic slots (seqlock publication, no allocation on the hot path):
//!
//! ```text
//! w0 = timestamp [ns]
//! w1 = tag(16) | rank(16) | aux1(16) | aux2(16)
//! w2, w3 = two u64 payload fields (bytes, durations, counters)
//! ```

use std::fmt;

/// Which chaos fault a [`EventKind::FaultInjected`] event records.
///
/// The discriminants are the on-wire codes (stored in `aux1` of the
/// four-word encoding); they are stable and must not be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A message attempt was dropped before delivery.
    Drop = 1,
    /// A message was delayed before delivery.
    Delay = 2,
    /// An eager message was delivered twice.
    Duplicate = 3,
    /// A message was held back so a later one overtakes it.
    Reorder = 4,
    /// The issue order of a `pready_range`/`pready_list` was permuted.
    PreadyJitter = 5,
    /// A wire write delivered only a prefix of its bytes.
    TornWrite = 6,
    /// A wire read returned fewer bytes than were available.
    ShortRead = 7,
    /// A byte of an outgoing wire write was flipped in flight.
    Garbage = 8,
    /// A connection was reset at a write boundary.
    Reset = 9,
    /// A writer lane was killed after its byte threshold.
    LaneKill = 10,
    /// Writes began disappearing silently (half-open peer).
    HalfOpen = 11,
}

impl FaultKind {
    /// Stable wire code (the enum discriminant).
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decode a wire code; `None` for unknown codes.
    pub fn from_code(code: u16) -> Option<FaultKind> {
        Some(match code {
            1 => FaultKind::Drop,
            2 => FaultKind::Delay,
            3 => FaultKind::Duplicate,
            4 => FaultKind::Reorder,
            5 => FaultKind::PreadyJitter,
            6 => FaultKind::TornWrite,
            7 => FaultKind::ShortRead,
            8 => FaultKind::Garbage,
            9 => FaultKind::Reset,
            10 => FaultKind::LaneKill,
            11 => FaultKind::HalfOpen,
            _ => return None,
        })
    }

    /// Stable lower-case name, greppable in exported traces.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::PreadyJitter => "pready_jitter",
            FaultKind::TornWrite => "torn_write",
            FaultKind::ShortRead => "short_read",
            FaultKind::Garbage => "garbage",
            FaultKind::Reset => "reset",
            FaultKind::LaneKill => "lane_kill",
            FaultKind::HalfOpen => "half_open",
        }
    }
}

/// One trace event: a timestamp, the rank it is attributed to, and a
/// typed payload.
///
/// Timestamps are nanoseconds since the trace epoch — wall-clock on the
/// real runtime, virtual time in the simulator. The shared timebase is
/// what makes sim and real traces directly comparable in one viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Rank the event is attributed to.
    pub rank: u16,
    /// What happened.
    pub kind: EventKind,
}

/// The event taxonomy, covering the paper's phenomena end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Waited to acquire a match-shard lock (real runtime) or a VCI
    /// (simulator) — the contention of Figs. 5–6. Span.
    LockWait {
        /// Shard / VCI index.
        shard: u16,
        /// Time spent waiting for the lock, in ns.
        wait_ns: u64,
    },
    /// Injected an eager (bcopy) message. Instant.
    EagerSend {
        /// Destination rank.
        dst: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
    },
    /// Posted a rendezvous (zcopy) send — the RTS. Instant.
    RdvSend {
        /// Destination rank.
        dst: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
    },
    /// A rendezvous transfer completed: from RTS to the zero-copy data
    /// landing (the time the sender's buffer stayed pinned). Span.
    RdvCopy {
        /// Shard the match completed on.
        shard: u16,
        /// Payload bytes.
        bytes: u64,
        /// RTS-to-completion time in ns.
        wait_ns: u64,
    },
    /// `MPI_Pready(p)` was called. Instant.
    Pready {
        /// Partition index.
        part: u64,
    },
    /// The last `pready` of an internal message injected it — the
    /// early-bird send of Fig. 8. `gap_ns` is the pready→fabric-send
    /// latency. Instant.
    EarlyBird {
        /// Internal message index.
        msg: u16,
        /// Shard / VCI the message was injected on.
        shard: u16,
        /// Message bytes.
        bytes: u64,
        /// Latency from the completing `pready` to the fabric send, ns.
        gap_ns: u64,
    },
    /// A partitioned layout was negotiated: `base_msgs` gcd messages
    /// folded into `msgs` under the aggregation bound (Fig. 7). Instant.
    AggrLayout {
        /// gcd(N_send, N_recv) base message count.
        base_msgs: u16,
        /// Messages after aggregation.
        msgs: u16,
        /// Bytes of the first (typical) message.
        bytes_per_msg: u64,
    },
    /// Legacy path: waited for the receiver's clear-to-send (the
    /// per-iteration CTS round-trip of Fig. 4). Span.
    CtsWait {
        /// Peer rank.
        peer: u16,
        /// Time blocked on the CTS, ns.
        wait_ns: u64,
    },
    /// `wait()` on a partitioned request: entry to all-messages-complete.
    /// Span. Early-bird sends *outside* this span overlapped compute.
    PartWait {
        /// Internal messages drained.
        msgs: u16,
        /// Time inside `wait()`, ns.
        wait_ns: u64,
    },
    /// RMA active-target epoch opened (origin blocked for the post). Span.
    EpochOpen {
        /// Window id (low bits of the window context).
        win: u16,
        /// Time blocked waiting for the target's post, ns.
        wait_ns: u64,
    },
    /// RMA epoch closed with `puts` puts flushed. Instant.
    EpochClose {
        /// Window id.
        win: u16,
        /// Puts in the epoch.
        puts: u64,
    },
    /// An eager send acquired its payload buffer: from the per-rank pool
    /// (`hit`) or via a fresh allocation (miss). Instant.
    EagerPool {
        /// Shard the message was injected on.
        shard: u16,
        /// Whether a recycled buffer was reused.
        hit: bool,
        /// Payload bytes.
        bytes: u64,
    },
    /// Per-rank completion probe-path counters for the run: probes
    /// answered by the single-atomic-load fast path vs waits that fell
    /// through to spin-then-park. Instant, emitted at rank exit.
    ProbeStats {
        /// Fast-path probes (`is_set` / immediate `wait` returns).
        fast_probes: u64,
        /// Waits that registered and parked.
        slow_waits: u64,
    },
    /// The chaos layer injected a fault on a message (or a `pready`
    /// order). Instant, attributed to the sending rank.
    FaultInjected {
        /// Which fault.
        fault: FaultKind,
        /// Destination rank of the affected message.
        dst: u16,
        /// Tag of the affected message (negative tags are the internal
        /// CTS/DATA/RMA control tags).
        tag: i64,
        /// Fault-specific argument: attempt index for `Drop`, delay in
        /// microseconds for `Delay`, extra copies for `Duplicate`,
        /// held-back messages for `Reorder`, permutation round for
        /// `PreadyJitter`.
        arg: u64,
    },
    /// A dropped message attempt is being resent (bounded retry).
    /// Instant, attributed to the sending rank.
    RetryAttempt {
        /// Destination rank.
        dst: u16,
        /// Retry attempt number (1 = first resend).
        attempt: u16,
        /// Tag of the message being resent.
        tag: i64,
    },
    /// The watchdog declared the universe stalled and produced a
    /// `StallReport`. Instant, emitted once by the supervisor.
    StallDetected {
        /// Number of blocked waits at detection time.
        blocked: u16,
        /// Configured watchdog deadline, ms.
        watchdog_ms: u64,
        /// Observed quiet period with no fabric activity, ms.
        quiet_ms: u64,
    },
    /// A run of ready partitions was coalesced into one `PartData`
    /// chunk and handed to a writer lane — the wire-streaming analogue
    /// of [`EventKind::EarlyBird`], recording chunk geometry under the
    /// `PCOMM_NET_AGGR` threshold. Instant, attributed to the sender.
    StreamChunk {
        /// Writer lane the chunk was queued on.
        lane: u16,
        /// Partitions coalesced into the chunk.
        parts: u16,
        /// Byte offset of the chunk in the whole buffer.
        offset: u64,
        /// Chunk bytes.
        bytes: u64,
    },
    /// A `PartData` range landed and was committed into the pinned
    /// destination buffer, flipping `msgs` per-message completions.
    /// Instant, attributed to the receiver.
    StreamCommit {
        /// Reader lane the range arrived on.
        lane: u16,
        /// Per-message completions flipped by this commit.
        msgs: u16,
        /// Byte offset of the range in the destination buffer.
        offset: u64,
        /// Range bytes.
        bytes: u64,
    },
    /// [verify] A partitioned request was created. One per side; `req`
    /// is the low 16 bits of the partitioned context, identical on the
    /// sender and the receiver. Instant.
    VerifyPartInit {
        /// Request id (low 16 bits of the part context, same both sides).
        req: u16,
        /// True for the psend side, false for precv.
        sender: bool,
        /// Partition count on this side.
        parts: u32,
        /// Wire messages after layout negotiation.
        msgs: u32,
    },
    /// [verify] Layout of one wire message within a partitioned request:
    /// the send- and recv-partition ranges it covers. Emitted once per
    /// message at init so the analyzer can map partitions to transfer
    /// accesses. Instant.
    VerifyLayoutMsg {
        /// Request id.
        req: u16,
        /// Wire message index.
        msg: u16,
        /// First send partition covered.
        first_spart: u16,
        /// Send partitions covered.
        n_sparts: u16,
        /// First recv partition covered.
        first_rpart: u16,
        /// Recv partitions covered.
        n_rparts: u16,
        /// Message payload bytes.
        bytes: u64,
    },
    /// [verify] `start()` activated a partitioned request for one
    /// iteration. Instant.
    VerifyStart {
        /// Request id.
        req: u16,
        /// True for the psend side.
        sender: bool,
        /// Iteration number (0-based, counted per request).
        iter: u32,
        /// Calling thread id.
        tid: u16,
    },
    /// [verify] `pready(part)` was observed — emitted *before* the state
    /// gate, so a double pready leaves two events. Instant.
    VerifyPready {
        /// Request id.
        req: u16,
        /// Partition index.
        part: u32,
        /// Iteration number.
        iter: u32,
        /// Calling thread id.
        tid: u16,
    },
    /// [verify] A checked user write into a send partition. Span.
    VerifyWrite {
        /// Request id.
        req: u16,
        /// Partition index.
        part: u32,
        /// Iteration number.
        iter: u32,
        /// Writing thread id.
        tid: u16,
        /// Time inside the write closure, ns.
        dur_ns: u64,
    },
    /// [verify] A checked user read of a recv partition. Span.
    VerifyRead {
        /// Request id.
        req: u16,
        /// Partition index.
        part: u32,
        /// Iteration number.
        iter: u32,
        /// Reading thread id.
        tid: u16,
        /// Time inside the read closure, ns.
        dur_ns: u64,
    },
    /// [verify] Wire message `msg` was handed to the fabric — the
    /// transfer's read of the send partitions it covers. Instant.
    VerifyMsgSend {
        /// Request id.
        req: u16,
        /// Wire message index.
        msg: u16,
        /// Iteration number.
        iter: u32,
        /// Issuing thread id.
        tid: u16,
    },
    /// [verify] Wire message `msg` landed in the recv buffer — the
    /// transfer's write of the recv partitions it covers. The analyzer
    /// pairs the k-th recv of a (req, msg) channel with its k-th send
    /// (per-channel FIFO). Instant.
    VerifyMsgRecv {
        /// Request id.
        req: u16,
        /// Wire message index.
        msg: u16,
        /// Thread that performed the copy.
        tid: u16,
        /// True when the payload came from a pooled eager buffer (the
        /// copy does not touch the sender's user buffer).
        eager: bool,
    },
    /// [verify] A `parrived(part)` probe observation. Observing `true`
    /// is a synchronization edge from the delivering message. Instant.
    VerifyParrived {
        /// Request id.
        req: u16,
        /// Partition index.
        part: u32,
        /// Iteration number.
        iter: u32,
        /// Probing thread id.
        tid: u16,
        /// The probe's answer.
        arrived: bool,
    },
    /// [verify] `wait()` returned for an iteration — all messages of the
    /// request are complete on this side. Instant.
    VerifyWaitDone {
        /// Request id.
        req: u16,
        /// True for the psend side.
        sender: bool,
        /// Iteration number.
        iter: u32,
        /// Waiting thread id.
        tid: u16,
    },
    /// [verify] At stall time, the event's rank was blocked waiting on
    /// `peer` (wait-for-graph edge). Emitted by the supervisor, one per
    /// blocked wait in the `StallReport`. Instant.
    VerifyBlocked {
        /// Peer rank the wait depends on, when known.
        peer: Option<u16>,
        /// Tag of the blocked wait, when known.
        tag: Option<i64>,
    },
    /// A writer lane to `peer` died (socket error on its reader or
    /// writer half) and was marked out of rotation. Instant.
    LaneDown {
        /// Peer rank the lane connected to.
        peer: u16,
        /// Which lane died.
        lane: u16,
    },
    /// In-flight work from a dead data lane was re-routed to surviving
    /// lanes (offset-addressed commits make the replay idempotent).
    /// Instant, attributed to the sender.
    LaneFailover {
        /// Peer rank.
        peer: u16,
        /// The lane that died.
        lane: u16,
        /// Writer messages re-queued onto surviving lanes.
        requeued: u64,
    },
    /// A lane-0 reconnect attempt finished. Instant.
    Reconnect {
        /// Peer rank.
        peer: u16,
        /// Whether the re-handshake succeeded.
        ok: bool,
        /// Wall time the attempt took, ms.
        took_ms: u64,
    },
    /// A peer exceeded the heartbeat silence budget and is about to be
    /// declared dead. Instant.
    HeartbeatMiss {
        /// The silent peer.
        peer: u16,
        /// Observed silence, ms.
        quiet_ms: u64,
    },
    /// A writer lane's queue backlog crossed a power-of-two high-water
    /// mark (the channel is unbounded, so depth — not blocking — is the
    /// stall signal). Instant.
    WriterQueue {
        /// Peer rank.
        peer: u16,
        /// Lane whose queue grew.
        lane: u16,
        /// Queued writer messages at the crossing.
        depth: u64,
    },
    /// [verify] A wire frame was put on a lane's socket, in wire order
    /// (emitted under the lane's write mutex, *before* the write, so a
    /// partially transmitted frame is still recorded). `seq` is a
    /// monotone per-lane counter; `epoch` counts lane-0 reconnects, and
    /// frame *k* of an epoch on the sender pairs with frame *k* of the
    /// same epoch at the receiver (per-epoch byte streams are FIFO with
    /// the prefix property). Instant.
    VerifyWireSend {
        /// Destination peer rank.
        peer: u16,
        /// Lane the frame travelled.
        lane: u16,
        /// Wire opcode (`pcomm-net` frame op).
        op: u16,
        /// Reconnect epoch of the peer link at send time.
        epoch: u32,
        /// Monotone per-lane send ordinal (never reset; gaps reveal
        /// dropped ring slots, not dropped frames).
        seq: u32,
    },
    /// [verify] A wire frame was read off a lane's socket, in wire
    /// order (single reader thread per lane). Fields as in
    /// [`VerifyWireSend`](EventKind::VerifyWireSend). Instant.
    VerifyWireRecv {
        /// Source peer rank.
        peer: u16,
        /// Lane the frame arrived on.
        lane: u16,
        /// Wire opcode.
        op: u16,
        /// Reconnect epoch of the peer link at read time.
        epoch: u32,
        /// Monotone per-lane receive ordinal.
        seq: u32,
    },
    /// [verify] A `PartRts` stream announcement: `tx` at the sender's
    /// `part_stream_begin`, `rx` when the receiver handles the frame.
    /// `stream` is the low 32 bits of the rdv id — unique per *sender*,
    /// so the audit keys streams by `(sender rank, stream)`. Instant.
    VerifyStreamRts {
        /// The other end of the stream.
        peer: u16,
        /// True on the announcing (sender) side.
        tx: bool,
        /// Stream id (low 32 bits of the rdv id).
        stream: u32,
        /// Total pinned bytes the stream will carry.
        total_len: u64,
    },
    /// [verify] A `PartCts` stream release: `tx` when the receiver
    /// activates the stream and releases the sender, `rx` when the
    /// sender handles the release. Instant.
    VerifyStreamCts {
        /// The other end of the stream.
        peer: u16,
        /// True on the releasing (receiver) side.
        tx: bool,
        /// Stream id.
        stream: u32,
        /// Reconnect epoch at release time — the FSM pass proves at
        /// most one release per stream per epoch.
        epoch: u32,
    },
    /// [verify] A `PartData` range: `tx` per chunk put on the wire
    /// (inline or writer-thread path), `rx` when the receiver commits
    /// bytes against the pinned buffer. Instant.
    VerifyStreamData {
        /// The other end of the stream.
        peer: u16,
        /// Lane the range travelled.
        lane: u16,
        /// True on the sending side.
        tx: bool,
        /// Stream id.
        stream: u32,
        /// Byte offset inside the pinned stream.
        offset: u64,
        /// Range length in bytes.
        len: u32,
    },
    /// [verify] `claim_range` granted a *fresh* sub-range of an
    /// incoming stream — one event per disjoint fresh range, none for a
    /// pure duplicate (replays absorbed by the ledger leave no commit).
    /// Instant, receiver side.
    VerifyStreamCommit {
        /// Sending peer rank.
        peer: u16,
        /// Lane whose reader committed the range.
        lane: u16,
        /// Stream id.
        stream: u32,
        /// First byte of the fresh range.
        lo: u64,
        /// Fresh bytes granted.
        len: u32,
    },
    /// [verify] The sender declared a stream's bytes unrecoverable
    /// (`MessageLost`) from a resync request naming a retired span.
    /// Instant, sender side.
    VerifyStreamLost {
        /// Receiver rank whose resync triggered the verdict.
        peer: u16,
        /// Stream id.
        stream: u32,
        /// Bytes the receiver reported missing.
        missing: u64,
    },
    /// [verify] Binds one wire message of a partitioned request to its
    /// byte range inside a stream — emitted by both sides (sender at
    /// `part_stream_begin`, receiver at stream activation), so the
    /// audit can join each side's locally interned request ids across
    /// processes. Instant.
    VerifyStreamMsg {
        /// Stream id.
        stream: u32,
        /// Request id (local interning of the emitting process).
        req: u16,
        /// Wire message index (15 bits on the wire).
        msg: u16,
        /// True on the originating (psend) side, false at the
        /// receiver — rendezvous ids are allocated per process, so a
        /// rank can both originate stream `s` and receive a different
        /// peer's stream `s`; the side bit keeps them apart.
        tx: bool,
        /// The message's byte offset inside the stream.
        offset: u64,
        /// The message's length in bytes.
        len: u32,
    },
    /// The ipc fabric's producer found the descriptor ring (or FIFO
    /// slab) to a peer full and blocked until the consumer freed
    /// space — emitted once per backpressure episode, after it
    /// resolves. Instant.
    IpcRingFull {
        /// The peer whose inbound channel was full.
        peer: u16,
        /// Slot kind the producer was trying to publish.
        kind: u16,
        /// How long the producer was blocked, ns.
        wait_ns: u64,
    },
    /// The ipc progress thread parked on its futex doorbell (it only
    /// parks after a yield-spin budget finds no work, so these mark
    /// genuine idle periods, not per-message syscalls). Instant.
    IpcDoorbell {
        /// Bell sequence snapshot the park waited on.
        seq: u32,
        /// Whether the park ended by a ring (vs timeout).
        woken: bool,
    },
}

const TAG_LOCK_WAIT: u64 = 1;
const TAG_EAGER_SEND: u64 = 2;
const TAG_RDV_SEND: u64 = 3;
const TAG_RDV_COPY: u64 = 4;
const TAG_PREADY: u64 = 5;
const TAG_EARLY_BIRD: u64 = 6;
const TAG_AGGR_LAYOUT: u64 = 7;
const TAG_CTS_WAIT: u64 = 8;
const TAG_PART_WAIT: u64 = 9;
const TAG_EPOCH_OPEN: u64 = 10;
const TAG_EPOCH_CLOSE: u64 = 11;
const TAG_EAGER_POOL: u64 = 12;
const TAG_PROBE_STATS: u64 = 13;
const TAG_FAULT_INJECTED: u64 = 14;
const TAG_RETRY_ATTEMPT: u64 = 15;
const TAG_STALL_DETECTED: u64 = 16;
const TAG_VERIFY_PART_INIT: u64 = 17;
const TAG_VERIFY_LAYOUT_MSG: u64 = 18;
const TAG_VERIFY_START: u64 = 19;
const TAG_VERIFY_PREADY: u64 = 20;
const TAG_VERIFY_WRITE: u64 = 21;
const TAG_VERIFY_READ: u64 = 22;
const TAG_VERIFY_MSG_SEND: u64 = 23;
const TAG_VERIFY_MSG_RECV: u64 = 24;
const TAG_VERIFY_PARRIVED: u64 = 25;
const TAG_VERIFY_WAIT_DONE: u64 = 26;
const TAG_VERIFY_BLOCKED: u64 = 27;
const TAG_STREAM_CHUNK: u64 = 28;
const TAG_STREAM_COMMIT: u64 = 29;
const TAG_LANE_DOWN: u64 = 30;
const TAG_LANE_FAILOVER: u64 = 31;
const TAG_RECONNECT: u64 = 32;
const TAG_HEARTBEAT_MISS: u64 = 33;
const TAG_WRITER_QUEUE: u64 = 34;
const TAG_VERIFY_WIRE_SEND: u64 = 35;
const TAG_VERIFY_WIRE_RECV: u64 = 36;
const TAG_VERIFY_STREAM_RTS: u64 = 37;
const TAG_VERIFY_STREAM_CTS: u64 = 38;
const TAG_VERIFY_STREAM_DATA: u64 = 39;
const TAG_VERIFY_STREAM_COMMIT: u64 = 40;
const TAG_VERIFY_STREAM_LOST: u64 = 41;
const TAG_VERIFY_STREAM_MSG: u64 = 42;
const TAG_IPC_RING_FULL: u64 = 43;
const TAG_IPC_DOORBELL: u64 = 44;

/// `w2` layout shared by the per-partition verify events:
/// low 32 bits = partition / message index, high 32 bits = iteration.
fn pack_part_iter(part: u32, iter: u32) -> u64 {
    part as u64 | ((iter as u64) << 32)
}

fn pack_w1(tag: u64, rank: u16, aux1: u16, aux2: u16) -> u64 {
    (tag << 48) | ((rank as u64) << 32) | ((aux1 as u64) << 16) | aux2 as u64
}

impl Event {
    /// Encode into the four-word wire format.
    pub fn encode(&self) -> [u64; 4] {
        let (tag, aux1, aux2, w2, w3) = match self.kind {
            EventKind::LockWait { shard, wait_ns } => (TAG_LOCK_WAIT, shard, 0, wait_ns, 0),
            EventKind::EagerSend { dst, shard, bytes } => (TAG_EAGER_SEND, dst, shard, bytes, 0),
            EventKind::RdvSend { dst, shard, bytes } => (TAG_RDV_SEND, dst, shard, bytes, 0),
            EventKind::RdvCopy {
                shard,
                bytes,
                wait_ns,
            } => (TAG_RDV_COPY, shard, 0, bytes, wait_ns),
            EventKind::Pready { part } => (TAG_PREADY, 0, 0, part, 0),
            EventKind::EarlyBird {
                msg,
                shard,
                bytes,
                gap_ns,
            } => (TAG_EARLY_BIRD, msg, shard, bytes, gap_ns),
            EventKind::AggrLayout {
                base_msgs,
                msgs,
                bytes_per_msg,
            } => (TAG_AGGR_LAYOUT, base_msgs, msgs, bytes_per_msg, 0),
            EventKind::CtsWait { peer, wait_ns } => (TAG_CTS_WAIT, peer, 0, wait_ns, 0),
            EventKind::PartWait { msgs, wait_ns } => (TAG_PART_WAIT, msgs, 0, wait_ns, 0),
            EventKind::EpochOpen { win, wait_ns } => (TAG_EPOCH_OPEN, win, 0, wait_ns, 0),
            EventKind::EpochClose { win, puts } => (TAG_EPOCH_CLOSE, win, 0, puts, 0),
            EventKind::EagerPool { shard, hit, bytes } => {
                (TAG_EAGER_POOL, shard, hit as u16, bytes, 0)
            }
            EventKind::ProbeStats {
                fast_probes,
                slow_waits,
            } => (TAG_PROBE_STATS, 0, 0, fast_probes, slow_waits),
            EventKind::FaultInjected {
                fault,
                dst,
                tag,
                arg,
            } => (TAG_FAULT_INJECTED, fault.code(), dst, tag as u64, arg),
            EventKind::RetryAttempt { dst, attempt, tag } => {
                (TAG_RETRY_ATTEMPT, dst, attempt, tag as u64, 0)
            }
            EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            } => (TAG_STALL_DETECTED, blocked, 0, watchdog_ms, quiet_ms),
            EventKind::VerifyPartInit {
                req,
                sender,
                parts,
                msgs,
            } => (
                TAG_VERIFY_PART_INIT,
                req,
                sender as u16,
                parts as u64,
                msgs as u64,
            ),
            EventKind::VerifyLayoutMsg {
                req,
                msg,
                first_spart,
                n_sparts,
                first_rpart,
                n_rparts,
                bytes,
            } => (
                TAG_VERIFY_LAYOUT_MSG,
                req,
                msg,
                (first_spart as u64)
                    | ((n_sparts as u64) << 16)
                    | ((first_rpart as u64) << 32)
                    | ((n_rparts as u64) << 48),
                bytes,
            ),
            EventKind::VerifyStart {
                req,
                sender,
                iter,
                tid,
            } => (TAG_VERIFY_START, req, tid, iter as u64, sender as u64),
            EventKind::VerifyPready {
                req,
                part,
                iter,
                tid,
            } => (TAG_VERIFY_PREADY, req, tid, pack_part_iter(part, iter), 0),
            EventKind::VerifyWrite {
                req,
                part,
                iter,
                tid,
                dur_ns,
            } => (
                TAG_VERIFY_WRITE,
                req,
                tid,
                pack_part_iter(part, iter),
                dur_ns,
            ),
            EventKind::VerifyRead {
                req,
                part,
                iter,
                tid,
                dur_ns,
            } => (
                TAG_VERIFY_READ,
                req,
                tid,
                pack_part_iter(part, iter),
                dur_ns,
            ),
            EventKind::VerifyMsgSend {
                req,
                msg,
                iter,
                tid,
            } => (
                TAG_VERIFY_MSG_SEND,
                req,
                tid,
                pack_part_iter(msg as u32, iter),
                0,
            ),
            EventKind::VerifyMsgRecv {
                req,
                msg,
                tid,
                eager,
            } => (TAG_VERIFY_MSG_RECV, req, tid, msg as u64, eager as u64),
            EventKind::VerifyParrived {
                req,
                part,
                iter,
                tid,
                arrived,
            } => (
                TAG_VERIFY_PARRIVED,
                req,
                tid,
                pack_part_iter(part, iter),
                arrived as u64,
            ),
            EventKind::VerifyWaitDone {
                req,
                sender,
                iter,
                tid,
            } => (TAG_VERIFY_WAIT_DONE, req, tid, iter as u64, sender as u64),
            EventKind::VerifyBlocked { peer, tag } => (
                TAG_VERIFY_BLOCKED,
                peer.unwrap_or(0),
                (peer.is_some() as u16) | ((tag.is_some() as u16) << 1),
                tag.unwrap_or(0) as u64,
                0,
            ),
            EventKind::StreamChunk {
                lane,
                parts,
                offset,
                bytes,
            } => (TAG_STREAM_CHUNK, lane, parts, offset, bytes),
            EventKind::StreamCommit {
                lane,
                msgs,
                offset,
                bytes,
            } => (TAG_STREAM_COMMIT, lane, msgs, offset, bytes),
            EventKind::LaneDown { peer, lane } => (TAG_LANE_DOWN, peer, lane, 0, 0),
            EventKind::LaneFailover {
                peer,
                lane,
                requeued,
            } => (TAG_LANE_FAILOVER, peer, lane, requeued, 0),
            EventKind::Reconnect { peer, ok, took_ms } => {
                (TAG_RECONNECT, peer, ok as u16, took_ms, 0)
            }
            EventKind::HeartbeatMiss { peer, quiet_ms } => {
                (TAG_HEARTBEAT_MISS, peer, 0, quiet_ms, 0)
            }
            EventKind::WriterQueue { peer, lane, depth } => {
                (TAG_WRITER_QUEUE, peer, lane, depth, 0)
            }
            EventKind::VerifyWireSend {
                peer,
                lane,
                op,
                epoch,
                seq,
            } => (
                TAG_VERIFY_WIRE_SEND,
                peer,
                lane,
                op as u64 | ((epoch as u64) << 32),
                seq as u64,
            ),
            EventKind::VerifyWireRecv {
                peer,
                lane,
                op,
                epoch,
                seq,
            } => (
                TAG_VERIFY_WIRE_RECV,
                peer,
                lane,
                op as u64 | ((epoch as u64) << 32),
                seq as u64,
            ),
            EventKind::VerifyStreamRts {
                peer,
                tx,
                stream,
                total_len,
            } => (
                TAG_VERIFY_STREAM_RTS,
                peer,
                tx as u16,
                stream as u64,
                total_len,
            ),
            EventKind::VerifyStreamCts {
                peer,
                tx,
                stream,
                epoch,
            } => (
                TAG_VERIFY_STREAM_CTS,
                peer,
                tx as u16,
                stream as u64 | ((epoch as u64) << 32),
                0,
            ),
            EventKind::VerifyStreamData {
                peer,
                lane,
                tx,
                stream,
                offset,
                len,
            } => (
                TAG_VERIFY_STREAM_DATA,
                peer,
                (lane & 0x7fff) | ((tx as u16) << 15),
                stream as u64 | ((len as u64) << 32),
                offset,
            ),
            EventKind::VerifyStreamCommit {
                peer,
                lane,
                stream,
                lo,
                len,
            } => (
                TAG_VERIFY_STREAM_COMMIT,
                peer,
                lane,
                stream as u64 | ((len as u64) << 32),
                lo,
            ),
            EventKind::VerifyStreamLost {
                peer,
                stream,
                missing,
            } => (TAG_VERIFY_STREAM_LOST, peer, 0, stream as u64, missing),
            EventKind::VerifyStreamMsg {
                stream,
                req,
                msg,
                tx,
                offset,
                len,
            } => (
                TAG_VERIFY_STREAM_MSG,
                req,
                (msg & 0x7fff) | ((tx as u16) << 15),
                stream as u64 | ((len as u64) << 32),
                offset,
            ),
            EventKind::IpcRingFull {
                peer,
                kind,
                wait_ns,
            } => (TAG_IPC_RING_FULL, peer, kind, wait_ns, 0),
            EventKind::IpcDoorbell { seq, woken } => {
                (TAG_IPC_DOORBELL, woken as u16, 0, seq as u64, 0)
            }
        };
        [self.ts_ns, pack_w1(tag, self.rank, aux1, aux2), w2, w3]
    }

    /// Decode the wire format; `None` for unknown tags (torn slots).
    pub fn decode(w: [u64; 4]) -> Option<Event> {
        let tag = w[1] >> 48;
        let rank = (w[1] >> 32) as u16;
        let aux1 = (w[1] >> 16) as u16;
        let aux2 = w[1] as u16;
        let kind = match tag {
            TAG_LOCK_WAIT => EventKind::LockWait {
                shard: aux1,
                wait_ns: w[2],
            },
            TAG_EAGER_SEND => EventKind::EagerSend {
                dst: aux1,
                shard: aux2,
                bytes: w[2],
            },
            TAG_RDV_SEND => EventKind::RdvSend {
                dst: aux1,
                shard: aux2,
                bytes: w[2],
            },
            TAG_RDV_COPY => EventKind::RdvCopy {
                shard: aux1,
                bytes: w[2],
                wait_ns: w[3],
            },
            TAG_PREADY => EventKind::Pready { part: w[2] },
            TAG_EARLY_BIRD => EventKind::EarlyBird {
                msg: aux1,
                shard: aux2,
                bytes: w[2],
                gap_ns: w[3],
            },
            TAG_AGGR_LAYOUT => EventKind::AggrLayout {
                base_msgs: aux1,
                msgs: aux2,
                bytes_per_msg: w[2],
            },
            TAG_CTS_WAIT => EventKind::CtsWait {
                peer: aux1,
                wait_ns: w[2],
            },
            TAG_PART_WAIT => EventKind::PartWait {
                msgs: aux1,
                wait_ns: w[2],
            },
            TAG_EPOCH_OPEN => EventKind::EpochOpen {
                win: aux1,
                wait_ns: w[2],
            },
            TAG_EPOCH_CLOSE => EventKind::EpochClose {
                win: aux1,
                puts: w[2],
            },
            TAG_EAGER_POOL => EventKind::EagerPool {
                shard: aux1,
                hit: aux2 != 0,
                bytes: w[2],
            },
            TAG_PROBE_STATS => EventKind::ProbeStats {
                fast_probes: w[2],
                slow_waits: w[3],
            },
            TAG_FAULT_INJECTED => EventKind::FaultInjected {
                fault: FaultKind::from_code(aux1)?,
                dst: aux2,
                tag: w[2] as i64,
                arg: w[3],
            },
            TAG_RETRY_ATTEMPT => EventKind::RetryAttempt {
                dst: aux1,
                attempt: aux2,
                tag: w[2] as i64,
            },
            TAG_STALL_DETECTED => EventKind::StallDetected {
                blocked: aux1,
                watchdog_ms: w[2],
                quiet_ms: w[3],
            },
            TAG_VERIFY_PART_INIT => EventKind::VerifyPartInit {
                req: aux1,
                sender: aux2 != 0,
                parts: w[2] as u32,
                msgs: w[3] as u32,
            },
            TAG_VERIFY_LAYOUT_MSG => EventKind::VerifyLayoutMsg {
                req: aux1,
                msg: aux2,
                first_spart: w[2] as u16,
                n_sparts: (w[2] >> 16) as u16,
                first_rpart: (w[2] >> 32) as u16,
                n_rparts: (w[2] >> 48) as u16,
                bytes: w[3],
            },
            TAG_VERIFY_START => EventKind::VerifyStart {
                req: aux1,
                sender: w[3] != 0,
                iter: w[2] as u32,
                tid: aux2,
            },
            TAG_VERIFY_PREADY => EventKind::VerifyPready {
                req: aux1,
                part: w[2] as u32,
                iter: (w[2] >> 32) as u32,
                tid: aux2,
            },
            TAG_VERIFY_WRITE => EventKind::VerifyWrite {
                req: aux1,
                part: w[2] as u32,
                iter: (w[2] >> 32) as u32,
                tid: aux2,
                dur_ns: w[3],
            },
            TAG_VERIFY_READ => EventKind::VerifyRead {
                req: aux1,
                part: w[2] as u32,
                iter: (w[2] >> 32) as u32,
                tid: aux2,
                dur_ns: w[3],
            },
            TAG_VERIFY_MSG_SEND => EventKind::VerifyMsgSend {
                req: aux1,
                msg: w[2] as u16,
                iter: (w[2] >> 32) as u32,
                tid: aux2,
            },
            TAG_VERIFY_MSG_RECV => EventKind::VerifyMsgRecv {
                req: aux1,
                msg: w[2] as u16,
                tid: aux2,
                eager: w[3] != 0,
            },
            TAG_VERIFY_PARRIVED => EventKind::VerifyParrived {
                req: aux1,
                part: w[2] as u32,
                iter: (w[2] >> 32) as u32,
                tid: aux2,
                arrived: w[3] != 0,
            },
            TAG_VERIFY_WAIT_DONE => EventKind::VerifyWaitDone {
                req: aux1,
                sender: w[3] != 0,
                iter: w[2] as u32,
                tid: aux2,
            },
            TAG_VERIFY_BLOCKED => EventKind::VerifyBlocked {
                peer: if aux2 & 1 != 0 { Some(aux1) } else { None },
                tag: if aux2 & 2 != 0 {
                    Some(w[2] as i64)
                } else {
                    None
                },
            },
            TAG_STREAM_CHUNK => EventKind::StreamChunk {
                lane: aux1,
                parts: aux2,
                offset: w[2],
                bytes: w[3],
            },
            TAG_STREAM_COMMIT => EventKind::StreamCommit {
                lane: aux1,
                msgs: aux2,
                offset: w[2],
                bytes: w[3],
            },
            TAG_LANE_DOWN => EventKind::LaneDown {
                peer: aux1,
                lane: aux2,
            },
            TAG_LANE_FAILOVER => EventKind::LaneFailover {
                peer: aux1,
                lane: aux2,
                requeued: w[2],
            },
            TAG_RECONNECT => EventKind::Reconnect {
                peer: aux1,
                ok: aux2 != 0,
                took_ms: w[2],
            },
            TAG_HEARTBEAT_MISS => EventKind::HeartbeatMiss {
                peer: aux1,
                quiet_ms: w[2],
            },
            TAG_WRITER_QUEUE => EventKind::WriterQueue {
                peer: aux1,
                lane: aux2,
                depth: w[2],
            },
            TAG_VERIFY_WIRE_SEND => EventKind::VerifyWireSend {
                peer: aux1,
                lane: aux2,
                op: w[2] as u16,
                epoch: (w[2] >> 32) as u32,
                seq: w[3] as u32,
            },
            TAG_VERIFY_WIRE_RECV => EventKind::VerifyWireRecv {
                peer: aux1,
                lane: aux2,
                op: w[2] as u16,
                epoch: (w[2] >> 32) as u32,
                seq: w[3] as u32,
            },
            TAG_VERIFY_STREAM_RTS => EventKind::VerifyStreamRts {
                peer: aux1,
                tx: aux2 != 0,
                stream: w[2] as u32,
                total_len: w[3],
            },
            TAG_VERIFY_STREAM_CTS => EventKind::VerifyStreamCts {
                peer: aux1,
                tx: aux2 != 0,
                stream: w[2] as u32,
                epoch: (w[2] >> 32) as u32,
            },
            TAG_VERIFY_STREAM_DATA => EventKind::VerifyStreamData {
                peer: aux1,
                lane: aux2 & 0x7fff,
                tx: aux2 & 0x8000 != 0,
                stream: w[2] as u32,
                offset: w[3],
                len: (w[2] >> 32) as u32,
            },
            TAG_VERIFY_STREAM_COMMIT => EventKind::VerifyStreamCommit {
                peer: aux1,
                lane: aux2,
                stream: w[2] as u32,
                lo: w[3],
                len: (w[2] >> 32) as u32,
            },
            TAG_VERIFY_STREAM_LOST => EventKind::VerifyStreamLost {
                peer: aux1,
                stream: w[2] as u32,
                missing: w[3],
            },
            TAG_VERIFY_STREAM_MSG => EventKind::VerifyStreamMsg {
                stream: w[2] as u32,
                req: aux1,
                msg: aux2 & 0x7fff,
                tx: aux2 >> 15 == 1,
                offset: w[3],
                len: (w[2] >> 32) as u32,
            },
            TAG_IPC_RING_FULL => EventKind::IpcRingFull {
                peer: aux1,
                kind: aux2,
                wait_ns: w[2],
            },
            TAG_IPC_DOORBELL => EventKind::IpcDoorbell {
                seq: w[2] as u32,
                woken: aux1 == 1,
            },
            _ => return None,
        };
        Some(Event {
            ts_ns: w[0],
            rank,
            kind,
        })
    }
}

impl EventKind {
    /// Wrap into an [`Event`] at timestamp `ts_ns` (rank 0; span-emit
    /// paths overwrite the rank before recording).
    pub fn at(self, ts_ns: u64) -> Event {
        Event {
            ts_ns,
            rank: 0,
            kind: self,
        }
    }

    /// Stable event name (used by the exporters and greppable in JSON).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::LockWait { .. } => "shard_lock_wait",
            EventKind::EagerSend { .. } => "eager_send",
            EventKind::RdvSend { .. } => "rdv_send",
            EventKind::RdvCopy { .. } => "rdv_copy",
            EventKind::Pready { .. } => "pready",
            EventKind::EarlyBird { .. } => "early_bird_send",
            EventKind::AggrLayout { .. } => "aggr_layout",
            EventKind::CtsWait { .. } => "cts_wait",
            EventKind::PartWait { .. } => "part_wait",
            EventKind::EpochOpen { .. } => "epoch_open",
            EventKind::EpochClose { .. } => "epoch_close",
            EventKind::EagerPool { .. } => "eager_pool",
            EventKind::ProbeStats { .. } => "probe_stats",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::RetryAttempt { .. } => "retry_attempt",
            EventKind::StallDetected { .. } => "stall_detected",
            EventKind::VerifyPartInit { .. } => "verify_part_init",
            EventKind::VerifyLayoutMsg { .. } => "verify_layout_msg",
            EventKind::VerifyStart { .. } => "verify_start",
            EventKind::VerifyPready { .. } => "verify_pready",
            EventKind::VerifyWrite { .. } => "verify_write",
            EventKind::VerifyRead { .. } => "verify_read",
            EventKind::VerifyMsgSend { .. } => "verify_msg_send",
            EventKind::VerifyMsgRecv { .. } => "verify_msg_recv",
            EventKind::VerifyParrived { .. } => "verify_parrived",
            EventKind::VerifyWaitDone { .. } => "verify_wait_done",
            EventKind::VerifyBlocked { .. } => "verify_blocked",
            EventKind::StreamChunk { .. } => "stream_chunk",
            EventKind::StreamCommit { .. } => "stream_commit",
            EventKind::LaneDown { .. } => "lane_down",
            EventKind::LaneFailover { .. } => "lane_failover",
            EventKind::Reconnect { .. } => "reconnect",
            EventKind::HeartbeatMiss { .. } => "heartbeat_miss",
            EventKind::WriterQueue { .. } => "writer_queue",
            EventKind::VerifyWireSend { .. } => "verify_wire_send",
            EventKind::VerifyWireRecv { .. } => "verify_wire_recv",
            EventKind::VerifyStreamRts { .. } => "verify_stream_rts",
            EventKind::VerifyStreamCts { .. } => "verify_stream_cts",
            EventKind::VerifyStreamData { .. } => "verify_stream_data",
            EventKind::VerifyStreamCommit { .. } => "verify_stream_commit",
            EventKind::VerifyStreamLost { .. } => "verify_stream_lost",
            EventKind::VerifyStreamMsg { .. } => "verify_stream_msg",
            EventKind::IpcRingFull { .. } => "ipc_ring_full",
            EventKind::IpcDoorbell { .. } => "ipc_doorbell",
        }
    }

    /// Span duration in ns (`Some` for span events, `None` for instants).
    pub fn dur_ns(&self) -> Option<u64> {
        match *self {
            EventKind::LockWait { wait_ns, .. }
            | EventKind::RdvCopy { wait_ns, .. }
            | EventKind::CtsWait { wait_ns, .. }
            | EventKind::PartWait { wait_ns, .. }
            | EventKind::EpochOpen { wait_ns, .. } => Some(wait_ns),
            EventKind::VerifyWrite { dur_ns, .. } | EventKind::VerifyRead { dur_ns, .. } => {
                Some(dur_ns)
            }
            _ => None,
        }
    }

    /// Whether this is an analysis-grade `Verify*` event (only emitted
    /// when verification is enabled on the trace).
    pub fn is_verify(&self) -> bool {
        matches!(
            self,
            EventKind::VerifyPartInit { .. }
                | EventKind::VerifyLayoutMsg { .. }
                | EventKind::VerifyStart { .. }
                | EventKind::VerifyPready { .. }
                | EventKind::VerifyWrite { .. }
                | EventKind::VerifyRead { .. }
                | EventKind::VerifyMsgSend { .. }
                | EventKind::VerifyMsgRecv { .. }
                | EventKind::VerifyParrived { .. }
                | EventKind::VerifyWaitDone { .. }
                | EventKind::VerifyBlocked { .. }
                | EventKind::VerifyWireSend { .. }
                | EventKind::VerifyWireRecv { .. }
                | EventKind::VerifyStreamRts { .. }
                | EventKind::VerifyStreamCts { .. }
                | EventKind::VerifyStreamData { .. }
                | EventKind::VerifyStreamCommit { .. }
                | EventKind::VerifyStreamLost { .. }
                | EventKind::VerifyStreamMsg { .. }
        )
    }

    /// The track (shard / VCI lane) the event belongs to, for per-shard
    /// rendering; lane 0 for events without one.
    pub fn lane(&self) -> u16 {
        match *self {
            EventKind::LockWait { shard, .. }
            | EventKind::EagerSend { shard, .. }
            | EventKind::RdvSend { shard, .. }
            | EventKind::RdvCopy { shard, .. }
            | EventKind::EarlyBird { shard, .. }
            | EventKind::EagerPool { shard, .. } => shard,
            EventKind::StreamChunk { lane, .. }
            | EventKind::StreamCommit { lane, .. }
            | EventKind::LaneDown { lane, .. }
            | EventKind::LaneFailover { lane, .. }
            | EventKind::WriterQueue { lane, .. }
            | EventKind::VerifyWireSend { lane, .. }
            | EventKind::VerifyWireRecv { lane, .. }
            | EventKind::VerifyStreamData { lane, .. }
            | EventKind::VerifyStreamCommit { lane, .. } => lane,
            _ => 0,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.2}  {:>4}  ",
            self.ts_ns as f64 / 1000.0,
            self.rank
        )?;
        match self.kind {
            EventKind::LockWait { shard, wait_ns } => {
                write!(
                    f,
                    "lock wait shard {shard} ({:.2} us)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EagerSend { dst, shard, bytes } => {
                write!(f, "eager send -> rank {dst} shard {shard} ({bytes} B)")
            }
            EventKind::RdvSend { dst, shard, bytes } => {
                write!(f, "rendezvous RTS -> rank {dst} shard {shard} ({bytes} B)")
            }
            EventKind::RdvCopy {
                shard,
                bytes,
                wait_ns,
            } => write!(
                f,
                "rendezvous data landed shard {shard} ({bytes} B, {:.2} us pinned)",
                wait_ns as f64 / 1e3
            ),
            EventKind::Pready { part } => write!(f, "pready partition {part}"),
            EventKind::EarlyBird {
                msg,
                shard,
                bytes,
                gap_ns,
            } => write!(
                f,
                "message {msg} complete: early-bird send shard {shard} ({bytes} B, gap {:.2} us)",
                gap_ns as f64 / 1e3
            ),
            EventKind::AggrLayout {
                base_msgs,
                msgs,
                bytes_per_msg,
            } => write!(
                f,
                "layout: {base_msgs} base msgs aggregated to {msgs} x {bytes_per_msg} B"
            ),
            EventKind::CtsWait { peer, wait_ns } => {
                write!(
                    f,
                    "CTS from rank {peer} ({:.2} us wait)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::PartWait { msgs, wait_ns } => {
                write!(
                    f,
                    "wait: {msgs} msgs drained ({:.2} us)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EpochOpen { win, wait_ns } => {
                write!(
                    f,
                    "epoch open win {win} ({:.2} us wait)",
                    wait_ns as f64 / 1e3
                )
            }
            EventKind::EpochClose { win, puts } => {
                write!(f, "epoch close win {win} ({puts} puts)")
            }
            EventKind::EagerPool { shard, hit, bytes } => write!(
                f,
                "eager buffer {} shard {shard} ({bytes} B)",
                if hit { "pool hit" } else { "pool miss" }
            ),
            EventKind::ProbeStats {
                fast_probes,
                slow_waits,
            } => write!(
                f,
                "probe stats: {fast_probes} fast probes, {slow_waits} parked waits"
            ),
            EventKind::FaultInjected {
                fault,
                dst,
                tag,
                arg,
            } => write!(
                f,
                "fault {} -> rank {dst} tag {tag} (arg {arg})",
                fault.name()
            ),
            EventKind::RetryAttempt { dst, attempt, tag } => {
                write!(f, "retry {attempt} -> rank {dst} tag {tag}")
            }
            EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            } => write!(
                f,
                "STALL: {blocked} blocked waits, quiet {quiet_ms} ms (watchdog {watchdog_ms} ms)"
            ),
            EventKind::VerifyPartInit {
                req,
                sender,
                parts,
                msgs,
            } => write!(
                f,
                "verify: {} req {req} init ({parts} parts, {msgs} msgs)",
                if sender { "psend" } else { "precv" }
            ),
            EventKind::VerifyLayoutMsg {
                req,
                msg,
                first_spart,
                n_sparts,
                first_rpart,
                n_rparts,
                bytes,
            } => write!(
                f,
                "verify: req {req} msg {msg} = sparts {first_spart}+{n_sparts} \
                 rparts {first_rpart}+{n_rparts} ({bytes} B)"
            ),
            EventKind::VerifyStart {
                req,
                sender,
                iter,
                tid,
            } => write!(
                f,
                "verify: {} req {req} start iter {iter} (tid {tid})",
                if sender { "psend" } else { "precv" }
            ),
            EventKind::VerifyPready {
                req,
                part,
                iter,
                tid,
            } => write!(
                f,
                "verify: req {req} pready part {part} iter {iter} (tid {tid})"
            ),
            EventKind::VerifyWrite {
                req,
                part,
                iter,
                tid,
                dur_ns,
            } => write!(
                f,
                "verify: req {req} write part {part} iter {iter} (tid {tid}, {dur_ns} ns)"
            ),
            EventKind::VerifyRead {
                req,
                part,
                iter,
                tid,
                dur_ns,
            } => write!(
                f,
                "verify: req {req} read part {part} iter {iter} (tid {tid}, {dur_ns} ns)"
            ),
            EventKind::VerifyMsgSend {
                req,
                msg,
                iter,
                tid,
            } => write!(
                f,
                "verify: req {req} msg {msg} sent iter {iter} (tid {tid})"
            ),
            EventKind::VerifyMsgRecv {
                req,
                msg,
                tid,
                eager,
            } => write!(
                f,
                "verify: req {req} msg {msg} landed (tid {tid}, {})",
                if eager { "eager" } else { "rendezvous" }
            ),
            EventKind::VerifyParrived {
                req,
                part,
                iter,
                tid,
                arrived,
            } => write!(
                f,
                "verify: req {req} parrived({part}) iter {iter} -> {arrived} (tid {tid})"
            ),
            EventKind::VerifyWaitDone {
                req,
                sender,
                iter,
                tid,
            } => write!(
                f,
                "verify: {} req {req} wait done iter {iter} (tid {tid})",
                if sender { "psend" } else { "precv" }
            ),
            EventKind::VerifyBlocked { peer, tag } => {
                write!(f, "verify: blocked on ")?;
                match peer {
                    Some(p) => write!(f, "rank {p}")?,
                    None => write!(f, "unknown peer")?,
                }
                match tag {
                    Some(t) => write!(f, " tag {t}"),
                    None => Ok(()),
                }
            }
            EventKind::StreamChunk {
                lane,
                parts,
                offset,
                bytes,
            } => write!(
                f,
                "stream chunk lane {lane}: {parts} partition(s) @ {offset} ({bytes} B)"
            ),
            EventKind::StreamCommit {
                lane,
                msgs,
                offset,
                bytes,
            } => write!(
                f,
                "stream commit lane {lane}: range @ {offset} ({bytes} B, {msgs} msg(s) done)"
            ),
            EventKind::LaneDown { peer, lane } => {
                write!(f, "lane {lane} -> rank {peer} DOWN")
            }
            EventKind::LaneFailover {
                peer,
                lane,
                requeued,
            } => write!(
                f,
                "failover from lane {lane} -> rank {peer} ({requeued} msg(s) requeued)"
            ),
            EventKind::Reconnect { peer, ok, took_ms } => write!(
                f,
                "reconnect to rank {peer} {} ({took_ms} ms)",
                if ok { "OK" } else { "FAILED" }
            ),
            EventKind::HeartbeatMiss { peer, quiet_ms } => {
                write!(f, "heartbeat miss: rank {peer} quiet {quiet_ms} ms")
            }
            EventKind::WriterQueue { peer, lane, depth } => {
                write!(f, "writer queue lane {lane} -> rank {peer} depth {depth}")
            }
            EventKind::VerifyWireSend {
                peer,
                lane,
                op,
                epoch,
                seq,
            } => write!(
                f,
                "verify: wire send op {op} -> rank {peer} lane {lane} epoch {epoch} seq {seq}"
            ),
            EventKind::VerifyWireRecv {
                peer,
                lane,
                op,
                epoch,
                seq,
            } => write!(
                f,
                "verify: wire recv op {op} <- rank {peer} lane {lane} epoch {epoch} seq {seq}"
            ),
            EventKind::VerifyStreamRts {
                peer,
                tx,
                stream,
                total_len,
            } => write!(
                f,
                "verify: stream {stream} rts {} rank {peer} ({total_len} B)",
                if tx { "->" } else { "<-" }
            ),
            EventKind::VerifyStreamCts {
                peer,
                tx,
                stream,
                epoch,
            } => write!(
                f,
                "verify: stream {stream} cts {} rank {peer} epoch {epoch}",
                if tx { "->" } else { "<-" }
            ),
            EventKind::VerifyStreamData {
                peer,
                lane,
                tx,
                stream,
                offset,
                len,
            } => write!(
                f,
                "verify: stream {stream} data {} rank {peer} lane {lane} @ {offset} ({len} B)",
                if tx { "->" } else { "<-" }
            ),
            EventKind::VerifyStreamCommit {
                peer,
                lane,
                stream,
                lo,
                len,
            } => write!(
                f,
                "verify: stream {stream} commit <- rank {peer} lane {lane} @ {lo} ({len} B fresh)"
            ),
            EventKind::VerifyStreamLost {
                peer,
                stream,
                missing,
            } => write!(
                f,
                "verify: stream {stream} declared lost (rank {peer} missing {missing} B)"
            ),
            EventKind::VerifyStreamMsg {
                stream,
                req,
                msg,
                tx,
                offset,
                len,
            } => write!(
                f,
                "verify: stream {stream} carries req {req} msg {msg} ({}) @ {offset} ({len} B)",
                if tx { "tx" } else { "rx" }
            ),
            EventKind::IpcRingFull {
                peer,
                kind,
                wait_ns,
            } => write!(
                f,
                "ipc: ring to rank {peer} full (slot kind {kind}), blocked {wait_ns} ns"
            ),
            EventKind::IpcDoorbell { seq, woken } => write!(
                f,
                "ipc: parked on doorbell @ seq {seq}, {}",
                if woken { "rung" } else { "timed out" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        vec![
            EventKind::LockWait {
                shard: 3,
                wait_ns: 12_345,
            },
            EventKind::EagerSend {
                dst: 1,
                shard: 2,
                bytes: 512,
            },
            EventKind::RdvSend {
                dst: 7,
                shard: 0,
                bytes: 1 << 20,
            },
            EventKind::RdvCopy {
                shard: 1,
                bytes: 1 << 20,
                wait_ns: 99,
            },
            EventKind::Pready { part: 123_456 },
            EventKind::EarlyBird {
                msg: 5,
                shard: 1,
                bytes: 4096,
                gap_ns: 800,
            },
            EventKind::AggrLayout {
                base_msgs: 16,
                msgs: 4,
                bytes_per_msg: 2048,
            },
            EventKind::CtsWait {
                peer: 1,
                wait_ns: 5_000,
            },
            EventKind::PartWait {
                msgs: 4,
                wait_ns: 77,
            },
            EventKind::EpochOpen {
                win: 2,
                wait_ns: 1_000,
            },
            EventKind::EpochClose { win: 2, puts: 8 },
            EventKind::EagerPool {
                shard: 3,
                hit: true,
                bytes: 256,
            },
            EventKind::ProbeStats {
                fast_probes: 1_000_000,
                slow_waits: 12,
            },
            EventKind::FaultInjected {
                fault: FaultKind::Drop,
                dst: 1,
                tag: -1,
                arg: 2,
            },
            EventKind::RetryAttempt {
                dst: 1,
                attempt: 2,
                tag: 7,
            },
            EventKind::StallDetected {
                blocked: 3,
                watchdog_ms: 500,
                quiet_ms: 612,
            },
            EventKind::VerifyPartInit {
                req: 42,
                sender: true,
                parts: 64,
                msgs: 8,
            },
            EventKind::VerifyLayoutMsg {
                req: 42,
                msg: 3,
                first_spart: 24,
                n_sparts: 8,
                first_rpart: 12,
                n_rparts: 4,
                bytes: 65_536,
            },
            EventKind::VerifyStart {
                req: 42,
                sender: false,
                iter: 7,
                tid: 3,
            },
            EventKind::VerifyPready {
                req: 42,
                part: 63,
                iter: 7,
                tid: 3,
            },
            EventKind::VerifyWrite {
                req: 42,
                part: 63,
                iter: 7,
                tid: 3,
                dur_ns: 812,
            },
            EventKind::VerifyRead {
                req: 42,
                part: 0,
                iter: 7,
                tid: 5,
                dur_ns: 44,
            },
            EventKind::VerifyMsgSend {
                req: 42,
                msg: 3,
                iter: 7,
                tid: 3,
            },
            EventKind::VerifyMsgRecv {
                req: 42,
                msg: 3,
                tid: 1,
                eager: true,
            },
            EventKind::VerifyParrived {
                req: 42,
                part: 12,
                iter: 7,
                tid: 5,
                arrived: false,
            },
            EventKind::VerifyWaitDone {
                req: 42,
                sender: true,
                iter: 7,
                tid: 3,
            },
            EventKind::VerifyBlocked {
                peer: Some(1),
                tag: Some(-2),
            },
            EventKind::StreamChunk {
                lane: 1,
                parts: 4,
                offset: 1 << 18,
                bytes: 1 << 18,
            },
            EventKind::StreamCommit {
                lane: 1,
                msgs: 2,
                offset: 1 << 18,
                bytes: 1 << 18,
            },
            EventKind::LaneDown { peer: 1, lane: 2 },
            EventKind::LaneFailover {
                peer: 1,
                lane: 2,
                requeued: 17,
            },
            EventKind::Reconnect {
                peer: 1,
                ok: true,
                took_ms: 42,
            },
            EventKind::HeartbeatMiss {
                peer: 1,
                quiet_ms: 401,
            },
            EventKind::WriterQueue {
                peer: 1,
                lane: 2,
                depth: 1 << 12,
            },
            EventKind::VerifyWireSend {
                peer: 1,
                lane: 0,
                op: 14,
                epoch: 1,
                seq: 4_000_000,
            },
            EventKind::VerifyWireRecv {
                peer: 0,
                lane: 2,
                op: 16,
                epoch: 0,
                seq: 77,
            },
            EventKind::VerifyStreamRts {
                peer: 1,
                tx: true,
                stream: 9,
                total_len: 1 << 21,
            },
            EventKind::VerifyStreamCts {
                peer: 0,
                tx: false,
                stream: 9,
                epoch: 1,
            },
            EventKind::VerifyStreamData {
                peer: 1,
                lane: 2,
                tx: true,
                stream: 9,
                offset: 1 << 18,
                len: 1 << 16,
            },
            EventKind::VerifyStreamCommit {
                peer: 1,
                lane: 2,
                stream: 9,
                lo: 1 << 18,
                len: 1 << 16,
            },
            EventKind::VerifyStreamLost {
                peer: 0,
                stream: 9,
                missing: 4096,
            },
            EventKind::VerifyStreamMsg {
                stream: 9,
                req: 42,
                msg: 3,
                tx: true,
                offset: 1 << 18,
                len: 1 << 16,
            },
            EventKind::IpcRingFull {
                peer: 1,
                kind: 2,
                wait_ns: 55_000,
            },
            EventKind::IpcDoorbell {
                seq: 77,
                woken: true,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_kind() {
        for (i, kind) in all_kinds().into_iter().enumerate() {
            let ev = Event {
                ts_ns: 1_000_000 + i as u64,
                rank: i as u16,
                kind,
            };
            assert_eq!(Event::decode(ev.encode()), Some(ev));
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        assert_eq!(Event::decode([0, 0, 0, 0]), None);
        assert_eq!(Event::decode([5, 0xffff << 48, 1, 2]), None);
    }

    #[test]
    fn fault_kind_codes_roundtrip() {
        for k in [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::PreadyJitter,
            FaultKind::TornWrite,
            FaultKind::ShortRead,
            FaultKind::Garbage,
            FaultKind::Reset,
            FaultKind::LaneKill,
            FaultKind::HalfOpen,
        ] {
            assert_eq!(FaultKind::from_code(k.code()), Some(k));
        }
        assert_eq!(FaultKind::from_code(0), None);
        assert_eq!(FaultKind::from_code(12), None);
        // A torn fault_injected slot with a bogus fault code (aux1 = 99)
        // must not decode.
        let w = [7, (14u64 << 48) | (99u64 << 16), 0, 0];
        assert_eq!(Event::decode(w), None);
    }

    #[test]
    fn names_are_unique_and_stable() {
        let names: std::collections::HashSet<&str> = all_kinds().iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 44);
        assert!(names.contains("shard_lock_wait"));
        assert!(names.contains("stream_chunk"));
        assert!(names.contains("stream_commit"));
        assert!(names.contains("early_bird_send"));
        assert!(names.contains("eager_pool"));
        assert!(names.contains("probe_stats"));
        assert!(names.contains("fault_injected"));
        assert!(names.contains("retry_attempt"));
        assert!(names.contains("stall_detected"));
        assert!(names.contains("verify_pready"));
        assert!(names.contains("verify_msg_recv"));
        assert!(names.contains("verify_blocked"));
        assert!(names.contains("verify_wire_send"));
        assert!(names.contains("verify_wire_recv"));
        assert!(names.contains("verify_stream_rts"));
        assert!(names.contains("verify_stream_commit"));
        assert!(names.contains("verify_stream_msg"));
    }

    #[test]
    fn verify_kinds_are_flagged() {
        let verify = all_kinds().iter().filter(|k| k.is_verify()).count();
        assert_eq!(verify, 19);
        assert!(!EventKind::Pready { part: 0 }.is_verify());
    }

    #[test]
    fn spans_and_instants_partition_the_taxonomy() {
        let spans = all_kinds().iter().filter(|k| k.dur_ns().is_some()).count();
        assert_eq!(
            spans, 7,
            "LockWait, RdvCopy, CtsWait, PartWait, EpochOpen, VerifyWrite, VerifyRead"
        );
    }

    #[test]
    fn display_is_human_readable() {
        let ev = Event {
            ts_ns: 1_500,
            rank: 0,
            kind: EventKind::Pready { part: 3 },
        };
        assert!(format!("{ev}").contains("pready partition 3"));
    }
}
