//! Plain-text summary report: the trace condensed into the numbers the
//! paper's figures are built from.
//!
//! Sections:
//! - per-shard lock-wait histograms (log2 buckets) — the contention
//!   picture behind the sharded-vs-single-lock experiments;
//! - message/byte counters split eager vs rendezvous;
//! - early-bird stats: `pready`→fabric-send gap distribution and the
//!   fraction of partition sends that overlapped application compute
//!   (issued outside any `wait`-side blocking span);
//! - aggregation fold decisions and RMA epoch counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind, FaultKind};

/// Number of log2 histogram buckets: bucket `i` counts waits in
/// `[2^i, 2^(i+1))` ns; the last bucket is open-ended.
const BUCKETS: usize = 24; // up to ~16.8 ms, ample for in-process locks

#[derive(Default, Clone)]
struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl Hist {
    fn add(&mut self, ns: u64) {
        let b = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// True if instant `t` falls inside any `[start, end)` interval.
fn inside(t: u64, spans: &[(u64, u64)]) -> bool {
    spans.iter().any(|&(s, e)| s <= t && t < e)
}

/// Render `events` as a human-readable summary.
pub fn summary_report(events: &[Event], dropped: u64) -> String {
    let mut lock_by_shard: BTreeMap<u16, Hist> = BTreeMap::new();
    let mut cts = Hist::default();
    let mut gap = Hist::default();
    let (mut eager_msgs, mut eager_bytes) = (0u64, 0u64);
    let (mut rdv_msgs, mut rdv_bytes) = (0u64, 0u64);
    let (mut rdv_copies, mut rdv_copy_wait) = (0u64, 0u64);
    let mut preadys = 0u64;
    let (mut aggr_events, mut aggr_base, mut aggr_folded) = (0u64, 0u64, 0u64);
    let (mut part_waits, mut part_wait_ns) = (0u64, 0u64);
    let (mut epochs, mut epoch_wait_ns, mut rma_puts) = (0u64, 0u64, 0u64);
    let (mut pool_hits, mut pool_misses) = (0u64, 0u64);
    let (mut probe_fast, mut probe_slow) = (0u64, 0u64);
    let mut faults_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut retries = 0u64;
    let mut stalls: Vec<(u16, u64, u64)> = Vec::new();
    let mut verify_events = 0u64;
    let (mut chunks, mut chunk_bytes, mut chunk_parts) = (0u64, 0u64, 0u64);
    let (mut commits, mut commit_bytes) = (0u64, 0u64);
    let mut chunk_lanes: BTreeMap<u16, u64> = BTreeMap::new();

    // Per-rank wait-side blocking spans, for the overlap fraction.
    let mut blocked: BTreeMap<u16, Vec<(u64, u64)>> = BTreeMap::new();
    let mut early: Vec<(u16, u64)> = Vec::new(); // (rank, ts) of early-bird sends

    for ev in events {
        match ev.kind {
            EventKind::LockWait { shard, wait_ns } => {
                lock_by_shard.entry(shard).or_default().add(wait_ns);
            }
            EventKind::EagerSend { bytes, .. } => {
                eager_msgs += 1;
                eager_bytes += bytes;
            }
            EventKind::RdvSend { bytes, .. } => {
                rdv_msgs += 1;
                rdv_bytes += bytes;
            }
            EventKind::RdvCopy { wait_ns, .. } => {
                rdv_copies += 1;
                rdv_copy_wait += wait_ns;
            }
            EventKind::Pready { .. } => preadys += 1,
            EventKind::EarlyBird { gap_ns, .. } => {
                gap.add(gap_ns);
                early.push((ev.rank, ev.ts_ns));
            }
            EventKind::AggrLayout {
                base_msgs, msgs, ..
            } => {
                aggr_events += 1;
                aggr_base += base_msgs as u64;
                aggr_folded += msgs as u64;
            }
            EventKind::CtsWait { wait_ns, .. } => cts.add(wait_ns),
            EventKind::PartWait { wait_ns, .. } => {
                part_waits += 1;
                part_wait_ns += wait_ns;
                blocked
                    .entry(ev.rank)
                    .or_default()
                    .push((ev.ts_ns, ev.ts_ns + wait_ns));
            }
            EventKind::EpochOpen { wait_ns, .. } => {
                epochs += 1;
                epoch_wait_ns += wait_ns;
                blocked
                    .entry(ev.rank)
                    .or_default()
                    .push((ev.ts_ns, ev.ts_ns + wait_ns));
            }
            EventKind::EpochClose { puts, .. } => rma_puts += puts,
            EventKind::EagerPool { hit, .. } => {
                if hit {
                    pool_hits += 1;
                } else {
                    pool_misses += 1;
                }
            }
            EventKind::ProbeStats {
                fast_probes,
                slow_waits,
            } => {
                probe_fast += fast_probes;
                probe_slow += slow_waits;
            }
            EventKind::FaultInjected { fault, .. } => {
                *faults_by_kind.entry(fault.name()).or_default() += 1;
            }
            EventKind::RetryAttempt { .. } => retries += 1,
            EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            } => stalls.push((blocked, watchdog_ms, quiet_ms)),
            EventKind::StreamChunk {
                lane, parts, bytes, ..
            } => {
                chunks += 1;
                chunk_bytes += bytes;
                chunk_parts += parts as u64;
                *chunk_lanes.entry(lane).or_default() += 1;
            }
            EventKind::StreamCommit { bytes, .. } => {
                commits += 1;
                commit_bytes += bytes;
            }
            // Analysis-grade events are consumed by pcomm-verify; the
            // summary only counts them.
            k if k.is_verify() => verify_events += 1,
            _ => unreachable!("non-verify kind must have an explicit arm"),
        }
    }

    let overlapped = early
        .iter()
        .filter(|&&(rank, ts)| !inside(ts, blocked.get(&rank).map_or(&[][..], |v| v)))
        .count();

    let mut out = String::new();
    let _ = writeln!(out, "pcomm trace summary");
    let _ = writeln!(out, "===================");
    let _ = writeln!(out, "events: {}  dropped: {}", events.len(), dropped);
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        let _ = writeln!(
            out,
            "span:   {} .. {} ({})",
            fmt_ns(first.ts_ns),
            fmt_ns(last.ts_ns),
            fmt_ns(last.ts_ns.saturating_sub(first.ts_ns)),
        );
    }

    let _ = writeln!(out, "\nshard lock waits");
    let _ = writeln!(out, "----------------");
    if lock_by_shard.is_empty() {
        let _ = writeln!(out, "(none recorded)");
    }
    for (shard, h) in &lock_by_shard {
        let _ = writeln!(
            out,
            "shard {shard:>3}: {:>7} acquisitions  mean {:>10}  max {:>10}",
            h.count,
            fmt_ns(h.mean_ns()),
            fmt_ns(h.max_ns),
        );
        // Print the occupied histogram range only.
        let hi = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let peak = h.buckets.iter().copied().max().unwrap_or(1).max(1);
        for b in 0..hi {
            let bar = "#".repeat((h.buckets[b] * 40 / peak) as usize);
            let _ = writeln!(
                out,
                "  <{:>9}: {:>7} {bar}",
                fmt_ns(1u64 << (b + 1)),
                h.buckets[b],
            );
        }
    }

    let _ = writeln!(out, "\ntransfers");
    let _ = writeln!(out, "---------");
    let _ = writeln!(
        out,
        "eager:      {eager_msgs:>7} msgs  {eager_bytes:>12} bytes"
    );
    let _ = writeln!(out, "rendezvous: {rdv_msgs:>7} msgs  {rdv_bytes:>12} bytes");
    if rdv_copies > 0 {
        let _ = writeln!(
            out,
            "rdv copies: {rdv_copies:>7}       mean wait {}",
            fmt_ns(rdv_copy_wait.checked_div(rdv_copies).unwrap_or(0)),
        );
    }
    if cts.count > 0 {
        let _ = writeln!(
            out,
            "cts waits:  {:>7}       mean {}  max {}",
            cts.count,
            fmt_ns(cts.mean_ns()),
            fmt_ns(cts.max_ns),
        );
    }
    if pool_hits + pool_misses > 0 {
        let _ = writeln!(
            out,
            "eager pool: {:>7} hits  {pool_misses:>7} misses ({:.1}% recycled)",
            pool_hits,
            100.0 * pool_hits as f64 / (pool_hits + pool_misses) as f64,
        );
    }
    if probe_fast + probe_slow > 0 {
        let _ = writeln!(
            out,
            "probes:     {probe_fast:>7} fast  {probe_slow:>7} slow waits"
        );
    }

    let _ = writeln!(out, "\npartitioned sends");
    let _ = writeln!(out, "-----------------");
    let _ = writeln!(out, "pready calls:     {preadys}");
    let _ = writeln!(out, "early-bird sends: {}", gap.count);
    if gap.count > 0 {
        let _ = writeln!(
            out,
            "pready->send gap: mean {}  max {}",
            fmt_ns(gap.mean_ns()),
            fmt_ns(gap.max_ns),
        );
        let _ = writeln!(
            out,
            "overlap fraction: {:.1}% ({overlapped}/{} sends issued outside wait-side blocking)",
            100.0 * overlapped as f64 / gap.count as f64,
            gap.count,
        );
    }
    if aggr_events > 0 {
        let _ = writeln!(
            out,
            "aggregation:      {aggr_events} layouts, {aggr_base} base msgs folded to {aggr_folded}",
        );
    }
    if part_waits > 0 {
        let _ = writeln!(
            out,
            "part waits:       {part_waits}  total blocked {}",
            fmt_ns(part_wait_ns),
        );
    }
    if chunks + commits > 0 {
        let _ = writeln!(out, "\nwire streaming");
        let _ = writeln!(out, "--------------");
        if let Some(mean) = chunk_bytes.checked_div(chunks) {
            let _ = writeln!(
                out,
                "chunks sent:      {chunks} ({chunk_parts} partitions, {chunk_bytes} bytes, \
                 mean {mean} B/chunk)",
            );
            let lanes: Vec<String> = chunk_lanes
                .iter()
                .map(|(lane, n)| format!("lane {lane}: {n}"))
                .collect();
            let _ = writeln!(out, "lane spread:      {}", lanes.join("  "));
        }
        if commits > 0 {
            let _ = writeln!(
                out,
                "ranges committed: {commits} ({commit_bytes} bytes received)"
            );
        }
    }

    if epochs + rma_puts > 0 {
        let _ = writeln!(out, "\nrma epochs");
        let _ = writeln!(out, "----------");
        let _ = writeln!(
            out,
            "epochs: {epochs}  open-wait total {}  puts {rma_puts}",
            fmt_ns(epoch_wait_ns),
        );
    }

    let fault_total: u64 = faults_by_kind.values().sum();
    if fault_total + retries > 0 || !stalls.is_empty() {
        let _ = writeln!(out, "\nchaos");
        let _ = writeln!(out, "-----");
        let _ = writeln!(out, "faults injected:  {fault_total}");
        // Stable order: the FaultKind code order, not alphabetical.
        for k in [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Reorder,
            FaultKind::PreadyJitter,
        ] {
            if let Some(n) = faults_by_kind.get(k.name()) {
                let _ = writeln!(out, "  {:<14} {n}", k.name());
            }
        }
        let _ = writeln!(out, "retry attempts:   {retries}");
        for (blocked, watchdog_ms, quiet_ms) in &stalls {
            let _ = writeln!(
                out,
                "STALL detected:   {blocked} blocked waits after {quiet_ms} ms quiet (watchdog {watchdog_ms} ms)"
            );
        }
    }
    if verify_events > 0 {
        let _ = writeln!(out, "\nverification");
        let _ = writeln!(out, "------------");
        let _ = writeln!(
            out,
            "verify events:    {verify_events} (run pcomm-verify for the analysis)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, rank: u16, kind: EventKind) -> Event {
        Event {
            ts_ns: ts,
            rank,
            kind,
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Hist::default();
        h.add(0); // bucket 0
        h.add(1); // bucket 0
        h.add(2); // bucket 1
        h.add(1023); // bucket 9
        h.add(u64::MAX); // clamped to last bucket
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[BUCKETS - 1], 1);
        assert_eq!(h.count, 5);
    }

    #[test]
    fn report_counts_and_overlap() {
        let events = vec![
            ev(
                100,
                0,
                EventKind::LockWait {
                    shard: 0,
                    wait_ns: 50,
                },
            ),
            ev(
                200,
                0,
                EventKind::EagerSend {
                    dst: 1,
                    shard: 0,
                    bytes: 64,
                },
            ),
            ev(
                300,
                0,
                EventKind::RdvSend {
                    dst: 1,
                    shard: 1,
                    bytes: 1 << 20,
                },
            ),
            // Rank 0 blocks in wait() over [1000, 2000).
            ev(
                1_000,
                0,
                EventKind::PartWait {
                    msgs: 2,
                    wait_ns: 1_000,
                },
            ),
            // One early bird during the wait (not overlapped), one before it.
            ev(
                500,
                0,
                EventKind::EarlyBird {
                    msg: 0,
                    shard: 0,
                    bytes: 128,
                    gap_ns: 10,
                },
            ),
            ev(
                1_500,
                0,
                EventKind::EarlyBird {
                    msg: 1,
                    shard: 1,
                    bytes: 128,
                    gap_ns: 20,
                },
            ),
        ];
        let rpt = summary_report(&events, 2);
        assert!(rpt.contains("events: 6  dropped: 2"));
        assert!(rpt.contains("eager:            1 msgs"));
        assert!(rpt.contains("rendezvous:       1 msgs"));
        assert!(rpt.contains("early-bird sends: 2"));
        assert!(rpt.contains("overlap fraction: 50.0% (1/2"));
        assert!(rpt.contains("shard   0:"));
    }

    #[test]
    fn chaos_section_appears_when_faults_recorded() {
        let events = vec![
            ev(
                10,
                0,
                EventKind::FaultInjected {
                    fault: FaultKind::Drop,
                    dst: 1,
                    tag: 3,
                    arg: 0,
                },
            ),
            ev(
                20,
                0,
                EventKind::RetryAttempt {
                    dst: 1,
                    attempt: 1,
                    tag: 3,
                },
            ),
            ev(
                30,
                1,
                EventKind::FaultInjected {
                    fault: FaultKind::Delay,
                    dst: 0,
                    tag: 3,
                    arg: 55,
                },
            ),
            ev(
                900,
                0,
                EventKind::StallDetected {
                    blocked: 2,
                    watchdog_ms: 100,
                    quiet_ms: 130,
                },
            ),
        ];
        let rpt = summary_report(&events, 0);
        assert!(rpt.contains("chaos"));
        assert!(rpt.contains("faults injected:  2"));
        assert!(rpt.contains("drop           1"));
        assert!(rpt.contains("delay          1"));
        assert!(rpt.contains("retry attempts:   1"));
        assert!(
            rpt.contains("STALL detected:   2 blocked waits after 130 ms quiet (watchdog 100 ms)")
        );
        // A fault-free trace has no chaos section.
        assert!(!summary_report(&[], 0).contains("chaos"));
    }

    #[test]
    fn streaming_section_appears_when_chunks_recorded() {
        let events = vec![
            ev(
                10,
                1,
                EventKind::StreamChunk {
                    lane: 1,
                    parts: 4,
                    offset: 0,
                    bytes: 256 * 1024,
                },
            ),
            ev(
                20,
                1,
                EventKind::StreamChunk {
                    lane: 2,
                    parts: 4,
                    offset: 256 * 1024,
                    bytes: 256 * 1024,
                },
            ),
            ev(
                30,
                0,
                EventKind::StreamCommit {
                    lane: 1,
                    msgs: 2,
                    offset: 0,
                    bytes: 256 * 1024,
                },
            ),
        ];
        let rpt = summary_report(&events, 0);
        assert!(rpt.contains("wire streaming"));
        assert!(rpt.contains("chunks sent:      2 (8 partitions"));
        assert!(rpt.contains("lane 1: 1  lane 2: 1"));
        assert!(rpt.contains("ranges committed: 1"));
        // A stream-free trace has no streaming section.
        assert!(!summary_report(&[], 0).contains("wire streaming"));
    }

    #[test]
    fn empty_trace_reports_cleanly() {
        let rpt = summary_report(&[], 0);
        assert!(rpt.contains("events: 0"));
        assert!(rpt.contains("(none recorded)"));
    }
}
