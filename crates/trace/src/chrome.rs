//! Chrome trace-event JSON exporter (loadable in Perfetto / `chrome://tracing`).
//!
//! Layout: one *process* per rank, one *thread* (track) per shard / VCI
//! lane, so contention on a shard renders as stacked spans on one track —
//! a Fig. 5/6 picture straight from the viewer. Span events (`dur_ns()`
//! is `Some`) become `ph:"X"` complete events; instants become `ph:"i"`.
//!
//! The writer is hand-rolled: every name and key is a static ASCII
//! string, all values are integers or finite floats, so no escaping is
//! needed and the output is valid JSON by construction. The same schema
//! is emitted for real-runtime and simulator traces, which makes them
//! directly comparable (virtual vs wall-clock time on the same axis).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};

fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Extra per-kind argument fields, as `"key":value` fragments.
fn args_json(kind: &EventKind) -> String {
    match *kind {
        EventKind::LockWait { shard, wait_ns } => {
            format!("\"shard\":{shard},\"wait_ns\":{wait_ns}")
        }
        EventKind::EagerSend { dst, shard, bytes } => {
            format!("\"dst\":{dst},\"shard\":{shard},\"bytes\":{bytes}")
        }
        EventKind::RdvSend { dst, shard, bytes } => {
            format!("\"dst\":{dst},\"shard\":{shard},\"bytes\":{bytes}")
        }
        EventKind::RdvCopy {
            shard,
            bytes,
            wait_ns,
        } => format!("\"shard\":{shard},\"bytes\":{bytes},\"wait_ns\":{wait_ns}"),
        EventKind::Pready { part } => format!("\"part\":{part}"),
        EventKind::EarlyBird {
            msg,
            shard,
            bytes,
            gap_ns,
        } => format!("\"msg\":{msg},\"shard\":{shard},\"bytes\":{bytes},\"gap_ns\":{gap_ns}"),
        EventKind::AggrLayout {
            base_msgs,
            msgs,
            bytes_per_msg,
        } => format!("\"base_msgs\":{base_msgs},\"msgs\":{msgs},\"bytes_per_msg\":{bytes_per_msg}"),
        EventKind::CtsWait { peer, wait_ns } => {
            format!("\"peer\":{peer},\"wait_ns\":{wait_ns}")
        }
        EventKind::PartWait { msgs, wait_ns } => {
            format!("\"msgs\":{msgs},\"wait_ns\":{wait_ns}")
        }
        EventKind::EpochOpen { win, wait_ns } => {
            format!("\"win\":{win},\"wait_ns\":{wait_ns}")
        }
        EventKind::EpochClose { win, puts } => format!("\"win\":{win},\"puts\":{puts}"),
        EventKind::EagerPool { shard, hit, bytes } => {
            format!("\"shard\":{shard},\"hit\":{hit},\"bytes\":{bytes}")
        }
        EventKind::ProbeStats {
            fast_probes,
            slow_waits,
        } => format!("\"fast_probes\":{fast_probes},\"slow_waits\":{slow_waits}"),
        EventKind::FaultInjected {
            fault,
            dst,
            tag,
            arg,
        } => format!(
            "\"fault\":\"{}\",\"dst\":{dst},\"tag\":{tag},\"arg\":{arg}",
            fault.name()
        ),
        EventKind::RetryAttempt { dst, attempt, tag } => {
            format!("\"dst\":{dst},\"attempt\":{attempt},\"tag\":{tag}")
        }
        EventKind::StallDetected {
            blocked,
            watchdog_ms,
            quiet_ms,
        } => format!("\"blocked\":{blocked},\"watchdog_ms\":{watchdog_ms},\"quiet_ms\":{quiet_ms}"),
        EventKind::VerifyPartInit {
            req,
            sender,
            parts,
            msgs,
        } => format!("\"req\":{req},\"sender\":{sender},\"parts\":{parts},\"msgs\":{msgs}"),
        EventKind::VerifyLayoutMsg {
            req,
            msg,
            first_spart,
            n_sparts,
            first_rpart,
            n_rparts,
            bytes,
        } => format!(
            "\"req\":{req},\"msg\":{msg},\"first_spart\":{first_spart},\"n_sparts\":{n_sparts},\
             \"first_rpart\":{first_rpart},\"n_rparts\":{n_rparts},\"bytes\":{bytes}"
        ),
        EventKind::VerifyStart {
            req,
            sender,
            iter,
            tid,
        } => format!("\"req\":{req},\"sender\":{sender},\"iter\":{iter},\"tid\":{tid}"),
        EventKind::VerifyPready {
            req,
            part,
            iter,
            tid,
        } => format!("\"req\":{req},\"part\":{part},\"iter\":{iter},\"tid\":{tid}"),
        EventKind::VerifyWrite {
            req,
            part,
            iter,
            tid,
            dur_ns,
        }
        | EventKind::VerifyRead {
            req,
            part,
            iter,
            tid,
            dur_ns,
        } => format!(
            "\"req\":{req},\"part\":{part},\"iter\":{iter},\"tid\":{tid},\"dur_ns\":{dur_ns}"
        ),
        EventKind::VerifyMsgSend {
            req,
            msg,
            iter,
            tid,
        } => format!("\"req\":{req},\"msg\":{msg},\"iter\":{iter},\"tid\":{tid}"),
        EventKind::VerifyMsgRecv {
            req,
            msg,
            tid,
            eager,
        } => format!("\"req\":{req},\"msg\":{msg},\"tid\":{tid},\"eager\":{eager}"),
        EventKind::VerifyParrived {
            req,
            part,
            iter,
            tid,
            arrived,
        } => format!(
            "\"req\":{req},\"part\":{part},\"iter\":{iter},\"tid\":{tid},\"arrived\":{arrived}"
        ),
        EventKind::VerifyWaitDone {
            req,
            sender,
            iter,
            tid,
        } => format!("\"req\":{req},\"sender\":{sender},\"iter\":{iter},\"tid\":{tid}"),
        EventKind::VerifyBlocked { peer, tag } => format!(
            "\"peer\":{},\"tag\":{}",
            peer.map_or(-1i32, |p| p as i32),
            tag.unwrap_or(i64::MIN)
        ),
        EventKind::StreamChunk {
            lane,
            parts,
            offset,
            bytes,
        } => format!("\"lane\":{lane},\"parts\":{parts},\"offset\":{offset},\"bytes\":{bytes}"),
        EventKind::StreamCommit {
            lane,
            msgs,
            offset,
            bytes,
        } => format!("\"lane\":{lane},\"msgs\":{msgs},\"offset\":{offset},\"bytes\":{bytes}"),
        EventKind::LaneDown { peer, lane } => format!("\"peer\":{peer},\"lane\":{lane}"),
        EventKind::LaneFailover {
            peer,
            lane,
            requeued,
        } => format!("\"peer\":{peer},\"lane\":{lane},\"requeued\":{requeued}"),
        EventKind::Reconnect { peer, ok, took_ms } => {
            format!("\"peer\":{peer},\"ok\":{ok},\"took_ms\":{took_ms}")
        }
        EventKind::HeartbeatMiss { peer, quiet_ms } => {
            format!("\"peer\":{peer},\"quiet_ms\":{quiet_ms}")
        }
        EventKind::WriterQueue { peer, lane, depth } => {
            format!("\"peer\":{peer},\"lane\":{lane},\"depth\":{depth}")
        }
        EventKind::VerifyWireSend {
            peer,
            lane,
            op,
            epoch,
            seq,
        }
        | EventKind::VerifyWireRecv {
            peer,
            lane,
            op,
            epoch,
            seq,
        } => format!("\"peer\":{peer},\"lane\":{lane},\"op\":{op},\"epoch\":{epoch},\"seq\":{seq}"),
        EventKind::VerifyStreamRts {
            peer,
            tx,
            stream,
            total_len,
        } => format!("\"peer\":{peer},\"tx\":{tx},\"stream\":{stream},\"total_len\":{total_len}"),
        EventKind::VerifyStreamCts {
            peer,
            tx,
            stream,
            epoch,
        } => format!("\"peer\":{peer},\"tx\":{tx},\"stream\":{stream},\"epoch\":{epoch}"),
        EventKind::VerifyStreamData {
            peer,
            lane,
            tx,
            stream,
            offset,
            len,
        } => format!(
            "\"peer\":{peer},\"lane\":{lane},\"tx\":{tx},\"stream\":{stream},\
             \"offset\":{offset},\"len\":{len}"
        ),
        EventKind::VerifyStreamCommit {
            peer,
            lane,
            stream,
            lo,
            len,
        } => format!(
            "\"peer\":{peer},\"lane\":{lane},\"stream\":{stream},\"lo\":{lo},\"len\":{len}"
        ),
        EventKind::VerifyStreamLost {
            peer,
            stream,
            missing,
        } => format!("\"peer\":{peer},\"stream\":{stream},\"missing\":{missing}"),
        EventKind::VerifyStreamMsg {
            stream,
            req,
            msg,
            tx,
            offset,
            len,
        } => format!(
            "\"stream\":{stream},\"req\":{req},\"msg\":{msg},\"tx\":{tx},\"offset\":{offset},\"len\":{len}"
        ),
        EventKind::IpcRingFull {
            peer,
            kind,
            wait_ns,
        } => format!("\"peer\":{peer},\"kind\":{kind},\"wait_ns\":{wait_ns}"),
        EventKind::IpcDoorbell { seq, woken } => format!("\"seq\":{seq},\"woken\":{woken}"),
    }
}

/// Render `events` as a Chrome trace-event JSON document.
///
/// `dropped` is recorded under `otherData` so a truncated trace is
/// visibly truncated.
pub fn chrome_trace_json(events: &[Event], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 140 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"pcomm-trace\",");
    let _ = write!(out, "\"dropped\":{dropped}}},\"traceEvents\":[");

    // Name the tracks first: one process per rank, one thread per lane.
    let tracks: BTreeSet<(u16, u16)> = events.iter().map(|e| (e.rank, e.kind.lane())).collect();
    let ranks: BTreeSet<u16> = tracks.iter().map(|&(r, _)| r).collect();
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for r in &ranks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\
             \"args\":{{\"name\":\"rank {r}\"}}}}"
        );
    }
    for (r, lane) in &tracks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":{lane},\
             \"args\":{{\"name\":\"shard {lane}\"}}}}"
        );
    }

    for ev in events {
        sep(&mut out);
        let name = ev.kind.name();
        let args = args_json(&ev.kind);
        let pid = ev.rank;
        let tid = ev.kind.lane();
        match ev.kind.dur_ns() {
            Some(dur) => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"pcomm\",\"ph\":\"X\",\
                     \"ts\":{:.3},\"dur\":{:.3},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{{args}}}}}",
                    ts_us(ev.ts_ns),
                    ts_us(dur),
                );
            }
            None => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"cat\":\"pcomm\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{{args}}}}}",
                    ts_us(ev.ts_ns),
                );
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, non-empty, starts `{` ends `}`.
    fn assert_balanced_json(s: &str) {
        assert!(s.starts_with('{') && s.ends_with('}'), "not an object");
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced nesting");
        }
        assert_eq!(depth, 0, "unbalanced braces");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn golden_two_event_trace() {
        let events = [
            Event {
                ts_ns: 1_500,
                rank: 0,
                kind: EventKind::LockWait {
                    shard: 2,
                    wait_ns: 500,
                },
            },
            Event {
                ts_ns: 2_000,
                rank: 1,
                kind: EventKind::EarlyBird {
                    msg: 0,
                    shard: 1,
                    bytes: 4096,
                    gap_ns: 250,
                },
            },
        ];
        let json = chrome_trace_json(&events, 3);
        let expect = concat!(
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"pcomm-trace\",\"dropped\":3},",
            "\"traceEvents\":[",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rank 0\"}},",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"rank 1\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":2,\"args\":{\"name\":\"shard 2\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"shard 1\"}},",
            "{\"name\":\"shard_lock_wait\",\"cat\":\"pcomm\",\"ph\":\"X\",\"ts\":1.500,\"dur\":0.500,",
            "\"pid\":0,\"tid\":2,\"args\":{\"shard\":2,\"wait_ns\":500}},",
            "{\"name\":\"early_bird_send\",\"cat\":\"pcomm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2.000,",
            "\"pid\":1,\"tid\":1,\"args\":{\"msg\":0,\"shard\":1,\"bytes\":4096,\"gap_ns\":250}}",
            "]}"
        );
        assert_eq!(json, expect);
    }

    #[test]
    fn golden_chaos_events_trace() {
        let events = [
            Event {
                ts_ns: 1_000,
                rank: 0,
                kind: EventKind::FaultInjected {
                    fault: crate::event::FaultKind::Drop,
                    dst: 1,
                    tag: 7,
                    arg: 0,
                },
            },
            Event {
                ts_ns: 1_250,
                rank: 0,
                kind: EventKind::RetryAttempt {
                    dst: 1,
                    attempt: 1,
                    tag: 7,
                },
            },
            Event {
                ts_ns: 9_000,
                rank: 0,
                kind: EventKind::StallDetected {
                    blocked: 1,
                    watchdog_ms: 5,
                    quiet_ms: 8,
                },
            },
        ];
        let json = chrome_trace_json(&events, 0);
        let expect = concat!(
            "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"pcomm-trace\",\"dropped\":0},",
            "\"traceEvents\":[",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"rank 0\"}},",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"shard 0\"}},",
            "{\"name\":\"fault_injected\",\"cat\":\"pcomm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.000,",
            "\"pid\":0,\"tid\":0,\"args\":{\"fault\":\"drop\",\"dst\":1,\"tag\":7,\"arg\":0}},",
            "{\"name\":\"retry_attempt\",\"cat\":\"pcomm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1.250,",
            "\"pid\":0,\"tid\":0,\"args\":{\"dst\":1,\"attempt\":1,\"tag\":7}},",
            "{\"name\":\"stall_detected\",\"cat\":\"pcomm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":9.000,",
            "\"pid\":0,\"tid\":0,\"args\":{\"blocked\":1,\"watchdog_ms\":5,\"quiet_ms\":8}}",
            "]}"
        );
        assert_eq!(json, expect);
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = chrome_trace_json(&[], 0);
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn every_kind_renders_valid_json() {
        let kinds = [
            EventKind::LockWait {
                shard: 1,
                wait_ns: 9,
            },
            EventKind::EagerSend {
                dst: 0,
                shard: 0,
                bytes: 8,
            },
            EventKind::RdvSend {
                dst: 0,
                shard: 0,
                bytes: 8,
            },
            EventKind::RdvCopy {
                shard: 0,
                bytes: 8,
                wait_ns: 1,
            },
            EventKind::Pready { part: 0 },
            EventKind::EarlyBird {
                msg: 0,
                shard: 0,
                bytes: 8,
                gap_ns: 1,
            },
            EventKind::AggrLayout {
                base_msgs: 4,
                msgs: 1,
                bytes_per_msg: 32,
            },
            EventKind::CtsWait {
                peer: 1,
                wait_ns: 2,
            },
            EventKind::PartWait {
                msgs: 2,
                wait_ns: 3,
            },
            EventKind::EpochOpen { win: 0, wait_ns: 4 },
            EventKind::EpochClose { win: 0, puts: 5 },
            EventKind::FaultInjected {
                fault: crate::event::FaultKind::Delay,
                dst: 1,
                tag: -2,
                arg: 40,
            },
            EventKind::RetryAttempt {
                dst: 1,
                attempt: 1,
                tag: 0,
            },
            EventKind::StallDetected {
                blocked: 2,
                watchdog_ms: 250,
                quiet_ms: 260,
            },
        ];
        let events: Vec<Event> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| Event {
                ts_ns: i as u64 * 10,
                rank: (i % 3) as u16,
                kind,
            })
            .collect();
        let json = chrome_trace_json(&events, 0);
        assert_balanced_json(&json);
        for k in &kinds {
            assert!(json.contains(k.name()), "missing {}", k.name());
        }
    }
}
