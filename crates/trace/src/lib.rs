//! # pcomm-trace — unified tracing for the pcomm runtime and simulator
//!
//! One observability subsystem shared by the real multithreaded runtime
//! (`pcomm-core`) and the discrete-event simulator (`pcomm-simmpi`):
//! the same typed [`Event`] taxonomy, the same exporters, one timebase
//! convention (`ts_ns` is wall-clock nanoseconds since trace start in
//! the real runtime, virtual nanoseconds in the simulator), so traces
//! from both sides load into the same viewer and are directly
//! comparable.
//!
//! ## Pieces
//!
//! - [`Event`] / [`EventKind`] — the taxonomy: shard-lock contention,
//!   eager vs rendezvous transfers, `pready`→send latency (early-bird),
//!   aggregation fold decisions, CTS handshakes, RMA epochs.
//! - [`Recorder`] — the sink trait; [`NullRecorder`] (disabled),
//!   [`VecRecorder`] (single-threaded: simulator, tests), and
//!   [`RingRecorder`] (lock-free per-thread bounded rings for the real
//!   runtime).
//! - [`chrome_trace_json`] — Perfetto / `chrome://tracing`-loadable
//!   JSON, one track per rank×shard.
//! - [`summary_report`] — plain-text digest: per-shard wait histograms,
//!   eager/rendezvous counters, early-bird overlap fraction.
//! - [`Trace`] — the handle the runtime threads around. Cloning is an
//!   `Arc` bump; the disabled handle costs one branch per potential
//!   event and never evaluates the event constructor or reads the
//!   clock.
//!
//! ## Recording discipline
//!
//! Event construction is wrapped in closures so a disabled trace does
//! zero work:
//!
//! ```
//! use pcomm_trace::{EventKind, Trace};
//!
//! let trace = Trace::ring(4096);
//! let t0 = trace.now_ns(); // None when disabled
//! // ... acquire a contended lock ...
//! trace.emit_span(t0, 0, |start, dur| EventKind::LockWait {
//!     shard: 3,
//!     wait_ns: dur,
//! }
//! .at(start));
//! let data = trace.snapshot().unwrap();
//! assert_eq!(data.events.len(), 1);
//! ```

mod chaos;
mod chrome;
mod event;
mod persist;
mod recorder;
mod report;
mod ring;

pub use chaos::{action_fault_kind, FaultAction, FaultPlan};
pub use chrome::chrome_trace_json;
pub use event::{Event, EventKind, FaultKind};
pub use persist::{events_from_str, events_to_string, read_events, write_events, RankEvents};
pub use recorder::{NullRecorder, Recorder, TraceData, VecRecorder};
pub use report::summary_report;
pub use ring::RingRecorder;

use std::sync::Arc;
use std::time::Instant;

struct Inner {
    recorder: Arc<RingRecorder>,
    /// Wall-clock origin: `ts_ns` is measured from here.
    epoch: Instant,
    /// Whether analysis-grade `Verify*` events are recorded. Fixed at
    /// construction so the gate is a plain field load, no atomics.
    verify: bool,
    /// Interned `(ctx, sender_rank)` request identities, in first-seen
    /// order; a request's `Verify*` id is its index here. See
    /// [`Trace::verify_req_id`].
    verify_reqs: std::sync::Mutex<Vec<(u64, u16)>>,
}

/// The tracing handle threaded through the real runtime.
///
/// `Trace::disabled()` is the default everywhere; it is a `None` inside
/// and every operation short-circuits on that single branch — event
/// constructors are closures that are never called, and the clock is
/// never read. `Trace::ring(cap)` turns recording on with per-thread
/// bounded rings of `cap` events each.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<Inner>>,
}

impl Trace {
    /// The no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// An enabled handle backed by a [`RingRecorder`] whose per-thread
    /// lanes retain the last `lane_cap` events each.
    pub fn ring(lane_cap: usize) -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                recorder: RingRecorder::new(lane_cap),
                epoch: Instant::now(),
                verify: false,
                verify_reqs: std::sync::Mutex::new(Vec::new()),
            })),
        }
    }

    /// Like [`ring`](Trace::ring), but additionally records the
    /// analysis-grade `Verify*` events that [`emit_verify`](Trace::emit_verify)
    /// gates — the input to the `pcomm-verify` analyzer.
    pub fn ring_verify(lane_cap: usize) -> Trace {
        Trace {
            inner: Some(Arc::new(Inner {
                recorder: RingRecorder::new(lane_cap),
                epoch: Instant::now(),
                verify: true,
                verify_reqs: std::sync::Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `Verify*` events are being recorded.
    #[inline]
    pub fn is_verify(&self) -> bool {
        matches!(&self.inner, Some(i) if i.verify)
    }

    /// Nanoseconds since trace start when verification is on, else
    /// `None`. The verify analogue of [`now_ns`](Trace::now_ns), for
    /// timing the `VerifyWrite`/`VerifyRead` access spans.
    #[inline]
    pub fn verify_now_ns(&self) -> Option<u64> {
        match &self.inner {
            Some(i) if i.verify => Some(i.epoch.elapsed().as_nanos() as u64),
            _ => None,
        }
    }

    /// Intern a partitioned request's identity into the stable `u16` id
    /// the `Verify*` events carry. Partitioned contexts are
    /// deterministic in (parent ctx, tag) only, so distinct
    /// sender→receiver pairs can share a ctx — a ring whose links all
    /// use one tag, for instance. Folding the sender's rank into the
    /// interned key keeps each pair's request distinct for the analyzer
    /// while both sides (which both know the sender) agree on the id.
    /// Ids are first-seen-order indices, collision-free by
    /// construction. Returns 0 when verification is off — no `Verify*`
    /// event carries it then.
    pub fn verify_req_id(&self, ctx: u64, sender_rank: u16) -> u16 {
        let Some(inner) = &self.inner else { return 0 };
        if !inner.verify {
            return 0;
        }
        let key = (ctx, sender_rank);
        let mut reqs = inner.verify_reqs.lock().unwrap();
        if let Some(i) = reqs.iter().position(|&k| k == key) {
            return i as u16;
        }
        reqs.push(key);
        (reqs.len() - 1) as u16
    }

    /// Record an instant `Verify*` event stamped *now*. `f` is only
    /// called when the trace was built with verification enabled — on a
    /// plain or disabled trace this is one branch and nothing else, so
    /// the hot path keeps its verify-off cost.
    #[inline]
    pub fn emit_verify<F>(&self, rank: u16, f: F)
    where
        F: FnOnce() -> EventKind,
    {
        if let Some(inner) = &self.inner {
            if inner.verify {
                let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
                inner.recorder.record(Event {
                    ts_ns,
                    rank,
                    kind: f(),
                });
            }
        }
    }

    /// Nanoseconds since trace start, or `None` when disabled.
    ///
    /// Use the `None` to skip timing work entirely on the disabled
    /// path: `let t0 = trace.now_ns();` then [`emit_span`](Trace::emit_span).
    #[inline]
    pub fn now_ns(&self) -> Option<u64> {
        self.inner
            .as_ref()
            .map(|i| i.epoch.elapsed().as_nanos() as u64)
    }

    /// Record an instant event stamped *now*. `f` builds the kind and is
    /// only called when enabled.
    #[inline]
    pub fn emit<F>(&self, rank: u16, f: F)
    where
        F: FnOnce() -> EventKind,
    {
        if let Some(inner) = &self.inner {
            let ts_ns = inner.epoch.elapsed().as_nanos() as u64;
            inner.recorder.record(Event {
                ts_ns,
                rank,
                kind: f(),
            });
        }
    }

    /// Record a span that began at `t0` (from [`now_ns`](Trace::now_ns))
    /// and ends now. `f` receives the span's start timestamp and its
    /// duration in nanoseconds and returns the finished event; it is
    /// only called when enabled and `t0` is `Some`.
    #[inline]
    pub fn emit_span<F>(&self, t0: Option<u64>, rank: u16, f: F)
    where
        F: FnOnce(u64, u64) -> Event,
    {
        if let (Some(inner), Some(start)) = (&self.inner, t0) {
            let now = inner.epoch.elapsed().as_nanos() as u64;
            let mut ev = f(start, now.saturating_sub(start));
            ev.rank = rank;
            inner.recorder.record(ev);
        }
    }

    /// Merge and return everything recorded so far, or `None` when
    /// disabled. Exact after the recording threads quiesce.
    pub fn snapshot(&self) -> Option<TraceData> {
        self.inner.as_ref().map(|i| i.recorder.snapshot())
    }
}

/// A small process-unique id for the calling thread, for `Verify*`
/// event provenance. Ids are assigned on first use in spawn order and
/// wrap at 65536 (far beyond any realistic thread count here).
pub fn current_tid() -> u16 {
    use std::sync::atomic::{AtomicU16, Ordering};
    static NEXT: AtomicU16 = AtomicU16::new(0);
    thread_local! {
        static TID: u16 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_skips_closures() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_ns(), None);
        t.emit(0, || panic!("must not be called"));
        t.emit_span(Some(0), 0, |_, _| panic!("must not be called"));
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn enabled_trace_round_trips_events() {
        let t = Trace::ring(256);
        assert!(t.is_enabled());
        t.emit(3, || EventKind::Pready { part: 7 });
        let t0 = t.now_ns();
        assert!(t0.is_some());
        t.emit_span(t0, 3, |start, dur| {
            EventKind::LockWait {
                shard: 1,
                wait_ns: dur,
            }
            .at(start)
        });
        let data = t.snapshot().unwrap();
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.dropped, 0);
        assert!(data
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Pready { part: 7 }) && e.rank == 3));
        assert!(data
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::LockWait { shard: 1, .. })));
    }

    #[test]
    fn verify_events_gate_on_the_verify_flag() {
        // Plain ring trace: emit_verify is a no-op and never runs the
        // closure's side effects into the ring.
        let t = Trace::ring(64);
        assert!(!t.is_verify());
        assert_eq!(t.verify_now_ns(), None);
        t.emit_verify(0, || EventKind::VerifyPready {
            req: 1,
            part: 0,
            iter: 0,
            tid: 0,
        });
        assert_eq!(t.snapshot().unwrap().events.len(), 0);

        // Verify-enabled trace records both normal and verify events.
        let tv = Trace::ring_verify(64);
        assert!(tv.is_verify() && tv.is_enabled());
        assert!(tv.verify_now_ns().is_some());
        tv.emit(0, || EventKind::Pready { part: 1 });
        tv.emit_verify(0, || EventKind::VerifyPready {
            req: 1,
            part: 1,
            iter: 0,
            tid: 0,
        });
        let data = tv.snapshot().unwrap();
        assert_eq!(data.events.len(), 2);
        assert!(data.events.iter().any(|e| e.kind.is_verify()));
    }

    #[test]
    fn current_tid_is_stable_per_thread_and_distinct_across_threads() {
        let a = current_tid();
        assert_eq!(a, current_tid());
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn clones_share_the_recorder() {
        let t = Trace::ring(64);
        let t2 = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || t2.emit(1, || EventKind::Pready { part: 0 }));
        });
        t.emit(0, || EventKind::Pready { part: 1 });
        assert_eq!(t.snapshot().unwrap().events.len(), 2);
    }
}
