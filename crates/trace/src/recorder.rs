//! The [`Recorder`] trait and its simple implementations.

use std::cell::RefCell;

use crate::event::Event;

/// A sink for trace events.
///
/// Implementations decide the storage discipline: [`NullRecorder`] drops
/// everything (the disabled path), [`VecRecorder`] appends to a plain
/// vector (single-threaded collectors: the simulator, tests), and
/// [`crate::RingRecorder`] keeps per-thread bounded rings for the real
/// multithreaded runtime.
///
/// Deliberately *not* `Send + Sync`-bounded: the simulator is
/// single-threaded (`Rc`-based) and its recorder need not be shareable.
/// Multithreaded users hold `Arc<RingRecorder>` directly.
pub trait Recorder {
    /// Record one event.
    fn record(&self, ev: Event);
}

/// The disabled recorder: drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _ev: Event) {}
}

/// An unbounded single-threaded recorder (simulator and tests).
#[derive(Debug, Default)]
pub struct VecRecorder {
    events: RefCell<Vec<Event>>,
}

impl VecRecorder {
    /// New empty recorder.
    pub fn new() -> VecRecorder {
        VecRecorder::default()
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take the recorded events, leaving the recorder empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

impl Recorder for VecRecorder {
    fn record(&self, ev: Event) {
        self.events.borrow_mut().push(ev);
    }
}

/// A merged trace: events in timestamp order plus the number of events
/// lost to ring overflow.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Events sorted by `ts_ns` (stable within equal timestamps).
    pub events: Vec<Event>,
    /// Events dropped (ring wraparound, sealed recorders, torn slots).
    pub dropped: u64,
}

impl TraceData {
    /// Build from unsorted events.
    pub fn from_events(mut events: Vec<Event>, dropped: u64) -> TraceData {
        events.sort_by_key(|e| e.ts_ns);
        TraceData { events, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            rank: 0,
            kind: EventKind::Pready { part: ts },
        }
    }

    #[test]
    fn null_recorder_drops_everything() {
        let r = NullRecorder;
        r.record(ev(1));
        // Nothing to observe — the type has no storage at all.
        assert_eq!(std::mem::size_of::<NullRecorder>(), 0);
    }

    #[test]
    fn vec_recorder_appends_and_takes() {
        let r = VecRecorder::new();
        assert!(r.is_empty());
        r.record(ev(5));
        r.record(ev(2));
        assert_eq!(r.len(), 2);
        let taken = r.take();
        assert_eq!(taken.len(), 2);
        assert!(r.is_empty(), "take drains");
    }

    #[test]
    fn trace_data_sorts_by_timestamp() {
        let td = TraceData::from_events(vec![ev(30), ev(10), ev(20)], 7);
        let ts: Vec<u64> = td.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(td.dropped, 7);
    }
}
