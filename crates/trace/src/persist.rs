//! Analysis-grade event persistence: the `.events` sidecar format.
//!
//! A multi-process run cannot be audited from its Chrome traces — those
//! are lossy, human-oriented renderings. `pcomm-audit` needs the exact
//! event stream each rank recorded, so verify-grade runs persist their
//! ring snapshot next to the Chrome JSON as `<path>.events`, one file
//! per OS process.
//!
//! The format is deliberately trivial to parse without any external
//! crates: a single ASCII header line
//!
//! ```text
//! pcomm-events v1 rank=<r> dropped=<d> n=<n>
//! ```
//!
//! followed by exactly `n` lines, each one event as its four
//! [`Event::encode`] words in lower-case hex separated by single
//! spaces. Events round-trip bit-exactly ([`Event::decode`] is the
//! inverse), so the auditor sees precisely what the rank's ring held —
//! including the `dropped` count, which the auditor uses to demote
//! absence-based findings on truncated rings.

use std::fmt::Write as _;

use crate::event::Event;
use crate::recorder::TraceData;

/// Render a rank's snapshot in `.events` form.
pub fn events_to_string(rank: u16, data: &TraceData) -> String {
    let mut out = String::with_capacity(data.events.len() * 68 + 64);
    let _ = writeln!(
        out,
        "pcomm-events v1 rank={rank} dropped={} n={}",
        data.dropped,
        data.events.len()
    );
    for ev in &data.events {
        let w = ev.encode();
        let _ = writeln!(out, "{:x} {:x} {:x} {:x}", w[0], w[1], w[2], w[3]);
    }
    out
}

/// One rank's persisted event stream, parsed back from `.events` form.
#[derive(Debug, Clone)]
pub struct RankEvents {
    /// The rank recorded in the header (every event carries it too).
    pub rank: u16,
    /// Ring overflow count: events evicted before the snapshot. A
    /// nonzero value means the stream is a *suffix* of what happened.
    pub dropped: u64,
    /// The decoded events, in ring snapshot order.
    pub events: Vec<Event>,
}

/// Parse a `.events` document produced by [`events_to_string`].
///
/// Returns a description of the first malformed line on error; events
/// whose tag is unknown to this build are rejected rather than skipped,
/// so an auditor older than the traced runtime fails loudly.
pub fn events_from_str(text: &str) -> Result<RankEvents, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty .events file")?;
    let mut rank: Option<u16> = None;
    let mut dropped: Option<u64> = None;
    let mut n: Option<usize> = None;
    let mut fields = header.split_whitespace();
    if fields.next() != Some("pcomm-events") || fields.next() != Some("v1") {
        return Err(format!("bad header: `{header}`"));
    }
    for f in fields {
        let (k, v) = f
            .split_once('=')
            .ok_or_else(|| format!("bad field `{f}`"))?;
        match k {
            "rank" => rank = v.parse().ok(),
            "dropped" => dropped = v.parse().ok(),
            "n" => n = v.parse().ok(),
            _ => return Err(format!("unknown header field `{k}`")),
        }
    }
    let (Some(rank), Some(dropped), Some(n)) = (rank, dropped, n) else {
        return Err(format!("incomplete header: `{header}`"));
    };
    let mut events = Vec::with_capacity(n);
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut w = [0u64; 4];
        let mut parts = line.split_whitespace();
        for slot in &mut w {
            let p = parts
                .next()
                .ok_or_else(|| format!("line {}: short event line", i + 2))?;
            *slot =
                u64::from_str_radix(p, 16).map_err(|_| format!("line {}: bad hex `{p}`", i + 2))?;
        }
        if parts.next().is_some() {
            return Err(format!("line {}: trailing words", i + 2));
        }
        let ev = Event::decode(w)
            .ok_or_else(|| format!("line {}: unknown event tag {:#x}", i + 2, w[1] >> 48))?;
        events.push(ev);
    }
    if events.len() != n {
        return Err(format!(
            "header says n={n} but {} events decoded",
            events.len()
        ));
    }
    Ok(RankEvents {
        rank,
        dropped,
        events,
    })
}

/// Write a rank's snapshot to `path` in `.events` form.
pub fn write_events(path: &std::path::Path, rank: u16, data: &TraceData) -> std::io::Result<()> {
    std::fs::write(path, events_to_string(rank, data))
}

/// Read a `.events` file written by [`write_events`].
pub fn read_events(path: &std::path::Path) -> std::io::Result<RankEvents> {
    let text = std::fs::read_to_string(path)?;
    events_from_str(&text).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ranked(mut ev: Event, rank: u16) -> Event {
        ev.rank = rank;
        ev
    }

    fn sample() -> TraceData {
        TraceData {
            events: vec![
                ranked(EventKind::Pready { part: 3 }.at(10), 1),
                ranked(
                    EventKind::VerifyWireSend {
                        peer: 0,
                        lane: 2,
                        op: 16,
                        epoch: 1,
                        seq: 99,
                    }
                    .at(20),
                    1,
                ),
                ranked(
                    EventKind::VerifyStreamCommit {
                        peer: 0,
                        lane: 1,
                        stream: 7,
                        lo: 1 << 33,
                        len: 4096,
                    }
                    .at(30),
                    1,
                ),
            ],
            dropped: 5,
        }
    }

    #[test]
    fn round_trips_bit_exact() {
        let data = sample();
        let text = events_to_string(1, &data);
        let back = events_from_str(&text).unwrap();
        assert_eq!(back.rank, 1);
        assert_eq!(back.dropped, 5);
        assert_eq!(back.events.len(), data.events.len());
        for (a, b) in back.events.iter().zip(&data.events) {
            assert_eq!(a.encode(), b.encode());
        }
    }

    #[test]
    fn header_is_first_line() {
        let text = events_to_string(3, &sample());
        assert!(text.starts_with("pcomm-events v1 rank=3 dropped=5 n=3\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(events_from_str("").is_err());
        assert!(events_from_str("not-a-header\n").is_err());
        assert!(events_from_str("pcomm-events v1 rank=0 dropped=0 n=1\n").is_err());
        assert!(events_from_str("pcomm-events v1 rank=0 dropped=0 n=1\n1 2 3\n").is_err());
        // Unknown tag (0xffff) is an error, not a skip.
        assert!(
            events_from_str("pcomm-events v1 rank=0 dropped=0 n=1\n0 ffff000000000000 0 0\n")
                .is_err()
        );
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("pcomm-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.events");
        write_events(&path, 2, &sample()).unwrap();
        let back = read_events(&path).unwrap();
        assert_eq!(back.rank, 2);
        assert_eq!(back.events.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
