//! The multithreaded recorder: per-thread bounded rings, merged at
//! teardown.
//!
//! # Hot path
//!
//! Each recording thread owns a private *lane* — a bounded ring of
//! atomic 4-word slots. `record` is lock-free: one thread-local cache
//! lookup, four relaxed stores and two release stores (the seqlock
//! publication). No allocation, no shared mutable state, no mutex. A
//! lane is registered once per thread (one mutex acquisition, off the
//! hot path); the thread-local cache makes every later record hit the
//! lane directly.
//!
//! # Overflow
//!
//! A full lane wraps: the newest event overwrites the oldest and the
//! overwritten event counts as dropped. Teardown traces therefore keep
//! the *most recent* window of activity, which is what post-mortem
//! analysis wants.
//!
//! # Merge
//!
//! [`RingRecorder::snapshot`] validates every slot through its sequence
//! word (a torn slot — one being overwritten concurrently — is counted
//! dropped, never mis-decoded) and merges all lanes into timestamp
//! order. Snapshots taken after the writing threads have quiesced (the
//! `Universe` teardown path) observe every event exactly once.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::recorder::{Recorder, TraceData};

/// Hard cap on lanes per recorder: a runaway thread-spawner cannot
/// allocate unbounded trace memory; excess threads' events are dropped.
const MAX_LANES: usize = 1024;

/// One 4-word event slot published through a sequence word.
///
/// Writer protocol (single writer per lane): `seq := 2i+1` (release),
/// payload words (relaxed), `seq := 2i+2` (release). A reader accepts
/// the slot for index `i` only if it observes `seq == 2i+2` both before
/// and after reading the payload.
struct Slot {
    seq: AtomicU64,
    w: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// A single-producer bounded ring.
struct Lane {
    /// Total events ever written to this lane (monotonic).
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Lane {
    fn new(cap: usize) -> Arc<Lane> {
        Arc::new(Lane {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        })
    }

    /// Producer-side push (must only be called from the owning thread).
    fn push(&self, ev: &Event) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        let words = ev.encode();
        slot.seq.store(2 * i + 1, Ordering::Release);
        for (s, &w) in slot.w.iter().zip(words.iter()) {
            s.store(w, Ordering::Relaxed);
        }
        slot.seq.store(2 * i + 2, Ordering::Release);
        self.head.store(i + 1, Ordering::Release);
    }

    /// Reader-side scan: the retained window in write order, plus the
    /// count of dropped (overwritten or torn) events.
    fn scan(&self) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut dropped = first; // overwritten by wraparound
        let mut out = Vec::with_capacity((head - first) as usize);
        for i in first..head {
            let slot = &self.slots[(i % cap) as usize];
            let seq1 = slot.seq.load(Ordering::Acquire);
            let words = [
                slot.w[0].load(Ordering::Relaxed),
                slot.w[1].load(Ordering::Relaxed),
                slot.w[2].load(Ordering::Relaxed),
                slot.w[3].load(Ordering::Relaxed),
            ];
            let seq2 = slot.seq.load(Ordering::Acquire);
            let expect = 2 * i + 2;
            match (seq1 == expect && seq2 == expect, Event::decode(words)) {
                (true, Some(ev)) => out.push(ev),
                _ => dropped += 1, // torn or in-flight slot
            }
        }
        (out, dropped)
    }
}

/// Per-thread bounded ring recorder for the real runtime.
///
/// Create once per traced run, share as `Arc<RingRecorder>` across rank
/// and worker threads, and [`snapshot`](RingRecorder::snapshot) after
/// they have joined.
pub struct RingRecorder {
    /// Process-unique id keyed by the thread-local lane cache.
    id: u64,
    lane_cap: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    /// Events dropped because the lane table was full.
    overflow_dropped: AtomicU64,
}

static NEXT_RECORDER_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// Single-entry cache: (recorder id, this thread's lane in it).
    static LANE_CACHE: RefCell<Option<(u64, Arc<Lane>)>> = const { RefCell::new(None) };
}

impl RingRecorder {
    /// A recorder whose lanes retain the last `lane_cap` events each.
    pub fn new(lane_cap: usize) -> Arc<RingRecorder> {
        assert!(lane_cap >= 1, "lane capacity must be at least 1");
        Arc::new(RingRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed) as u64,
            lane_cap,
            lanes: Mutex::new(Vec::new()),
            overflow_dropped: AtomicU64::new(0),
        })
    }

    /// Events retained per thread before wraparound.
    pub fn lane_capacity(&self) -> usize {
        self.lane_cap
    }

    /// The calling thread's lane, registering one on first use.
    fn lane(&self) -> Option<Arc<Lane>> {
        LANE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((id, lane)) = cache.as_ref() {
                if *id == self.id {
                    return Some(Arc::clone(lane));
                }
            }
            let mut lanes = self.lanes.lock().unwrap_or_else(|e| e.into_inner());
            if lanes.len() >= MAX_LANES {
                return None;
            }
            let lane = Lane::new(self.lane_cap);
            lanes.push(Arc::clone(&lane));
            *cache = Some((self.id, Arc::clone(&lane)));
            Some(lane)
        })
    }

    /// Merge all lanes into a timestamp-ordered trace. Call after the
    /// recording threads have quiesced for an exact snapshot; concurrent
    /// snapshots are safe but may count in-flight slots as dropped.
    pub fn snapshot(&self) -> TraceData {
        let lanes: Vec<Arc<Lane>> = self.lanes.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut events = Vec::new();
        let mut dropped = self.overflow_dropped.load(Ordering::Relaxed);
        for lane in lanes {
            let (evs, d) = lane.scan();
            events.extend(evs);
            dropped += d;
        }
        TraceData::from_events(events, dropped)
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: Event) {
        match self.lane() {
            Some(lane) => lane.push(&ev),
            None => {
                self.overflow_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            rank: 0,
            kind: EventKind::Pready { part: ts },
        }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let r = RingRecorder::new(64);
        for i in 0..10 {
            r.record(ev(i));
        }
        let td = r.snapshot();
        assert_eq!(td.dropped, 0);
        let ts: Vec<u64> = td.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let r = RingRecorder::new(8);
        for i in 0..20 {
            r.record(ev(i));
        }
        let td = r.snapshot();
        assert_eq!(td.dropped, 12, "20 written, 8 retained");
        let ts: Vec<u64> = td.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (12..20).collect::<Vec<u64>>(), "newest window survives");
    }

    #[test]
    fn exact_capacity_drops_nothing() {
        let r = RingRecorder::new(8);
        for i in 0..8 {
            r.record(ev(i));
        }
        let td = r.snapshot();
        assert_eq!(td.dropped, 0);
        assert_eq!(td.events.len(), 8);
    }

    #[test]
    fn lanes_merge_across_threads() {
        let r = RingRecorder::new(128);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..50 {
                        r.record(ev(t * 1000 + i));
                    }
                });
            }
        });
        let td = r.snapshot();
        assert_eq!(td.events.len(), 200);
        assert_eq!(td.dropped, 0);
        assert!(td.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn per_thread_wraparound_sums_drop_counts() {
        let r = RingRecorder::new(16);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..40 {
                        r.record(ev(i));
                    }
                });
            }
        });
        let td = r.snapshot();
        assert_eq!(td.events.len(), 3 * 16);
        assert_eq!(td.dropped, 3 * 24);
    }

    #[test]
    fn concurrent_snapshot_never_misdecodes() {
        // A reader racing the writer must only ever see valid events or
        // count the slot dropped — never decode garbage.
        let r = RingRecorder::new(32);
        std::thread::scope(|s| {
            let writer = Arc::clone(&r);
            s.spawn(move || {
                for i in 0..50_000 {
                    writer.record(ev(i));
                }
            });
            for _ in 0..100 {
                let td = r.snapshot();
                for e in &td.events {
                    assert!(matches!(e.kind, EventKind::Pready { part } if part == e.ts_ns));
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _ = RingRecorder::new(0);
    }
}
