//! Chaos-engineering configuration shared by the real runtime and the
//! simulator.
//!
//! A [`FaultPlan`] describes *which* faults to inject (drop, delay,
//! duplicate, reorder, `pready` jitter) and with what probabilities; the
//! consumers (`pcomm-core`'s fabric, `pcomm-simmpi`'s transport) call
//! [`FaultPlan::decide`] at their injection points. Every decision is a
//! pure function of `(seed, message envelope, per-channel sequence
//! number, attempt)`: two runs with the same plan and the same workload
//! inject bit-for-bit the same fault sequence regardless of how the OS
//! interleaves the rank threads. That determinism is what makes a chaos
//! failure reproducible from nothing but the seed in the trace.
//!
//! The plan lives here — next to the [`FaultKind`](crate::FaultKind)
//! trace events it emits — so both runtimes share one definition and
//! one `PCOMM_FAULTS` spec grammar.

use crate::FaultKind;
use pcomm_prng::{Rng64, SplitMix64, Xoshiro256pp};

/// The action [`FaultPlan::decide`] chose for one message attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    None,
    /// Drop this attempt; the sender should retry (bounded).
    Drop,
    /// Delay delivery by the given number of microseconds.
    Delay {
        /// Injected delay in microseconds, in `[1, max_delay_us]`.
        us: u64,
    },
    /// Deliver the message twice (eager only).
    Duplicate,
    /// Hold the message back so a later one overtakes it (eager only).
    Reorder,
}

/// A seeded fault-injection plan.
///
/// Probabilities are evaluated per message *attempt* from a single
/// uniform draw with cumulative thresholds, so
/// `drop_p + delay_p + dup_p + reorder_p` should stay ≤ 1.0 (excess is
/// clamped by the cumulative comparison order: drop wins over delay,
/// delay over duplicate, duplicate over reorder).
///
/// Build programmatically:
///
/// ```
/// use pcomm_trace::FaultPlan;
/// let plan = FaultPlan::seeded(42).drops(0.02).delays(0.05, 200).retries(3);
/// assert!(plan.any_faults());
/// ```
///
/// or from the `PCOMM_FAULTS` spec grammar:
///
/// ```
/// use pcomm_trace::FaultPlan;
/// let plan = FaultPlan::parse("seed=42,drop=0.02,delay=0.05:200,reorder=0.01,retries=3").unwrap();
/// assert_eq!(plan.seed, 42);
/// assert_eq!(plan.max_delay_us, 200);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every decision derives from it.
    pub seed: u64,
    /// Probability a message attempt is dropped.
    pub drop_p: f64,
    /// Probability a message is delayed.
    pub delay_p: f64,
    /// Upper bound on the injected delay, microseconds (≥ 1).
    pub max_delay_us: u64,
    /// Probability an eager message is duplicated.
    pub dup_p: f64,
    /// Probability an eager message is held back (reordered).
    pub reorder_p: f64,
    /// Whether `pready_range` / `pready_list` issue order is permuted.
    pub jitter_pready: bool,
    /// Resend attempts after a dropped message before it counts as lost.
    pub max_retries: u32,
    /// Probability a wire write delivers only a prefix of its bytes
    /// (socket transport only; shm delivery is all-or-nothing).
    pub wire_torn_p: f64,
    /// Probability a wire read returns fewer bytes than available.
    pub wire_short_read_p: f64,
    /// Probability one byte of a wire write is flipped in flight.
    pub wire_garbage_p: f64,
    /// Probability a connection resets at a write boundary.
    pub wire_reset_p: f64,
    /// Kill writer lane `.0` after `.1` bytes have crossed it.
    pub wire_lane_kill: Option<(u32, u64)>,
    /// Silently swallow writes on lane `.0` after `.1` bytes (half-open
    /// peer: the socket looks healthy, nothing arrives).
    pub wire_half_open: Option<(u32, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero) with the
    /// given seed. Chain the builder methods to enable faults.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            max_delay_us: 100,
            dup_p: 0.0,
            reorder_p: 0.0,
            jitter_pready: false,
            max_retries: 3,
            wire_torn_p: 0.0,
            wire_short_read_p: 0.0,
            wire_garbage_p: 0.0,
            wire_reset_p: 0.0,
            wire_lane_kill: None,
            wire_half_open: None,
        }
    }

    /// Drop each message attempt with probability `p`.
    pub fn drops(mut self, p: f64) -> FaultPlan {
        self.drop_p = p;
        self
    }

    /// Delay messages with probability `p`, up to `max_us` microseconds.
    pub fn delays(mut self, p: f64, max_us: u64) -> FaultPlan {
        self.delay_p = p;
        self.max_delay_us = max_us.max(1);
        self
    }

    /// Duplicate eager messages with probability `p`.
    pub fn duplicates(mut self, p: f64) -> FaultPlan {
        self.dup_p = p;
        self
    }

    /// Hold eager messages back (reorder) with probability `p`.
    pub fn reorders(mut self, p: f64) -> FaultPlan {
        self.reorder_p = p;
        self
    }

    /// Permute the issue order of `pready_range` / `pready_list`.
    pub fn jitter(mut self, on: bool) -> FaultPlan {
        self.jitter_pready = on;
        self
    }

    /// Bound the resend attempts after a drop (0 = no resend: first
    /// drop is a lost message).
    pub fn retries(mut self, n: u32) -> FaultPlan {
        self.max_retries = n;
        self
    }

    /// Tear wire writes with probability `p`.
    pub fn torn_writes(mut self, p: f64) -> FaultPlan {
        self.wire_torn_p = p;
        self
    }

    /// Kill writer lane `lane` after `bytes` bytes have crossed it.
    pub fn lane_kill(mut self, lane: u32, bytes: u64) -> FaultPlan {
        self.wire_lane_kill = Some((lane, bytes));
        self
    }

    /// Silently swallow writes on `lane` after `bytes` bytes (half-open).
    pub fn half_open(mut self, lane: u32, bytes: u64) -> FaultPlan {
        self.wire_half_open = Some((lane, bytes));
        self
    }

    /// Whether the plan injects wire-class faults (socket transport).
    pub fn any_wire_faults(&self) -> bool {
        self.wire_torn_p > 0.0
            || self.wire_short_read_p > 0.0
            || self.wire_garbage_p > 0.0
            || self.wire_reset_p > 0.0
            || self.wire_lane_kill.is_some()
            || self.wire_half_open.is_some()
    }

    /// Whether the plan can inject anything at all.
    pub fn any_faults(&self) -> bool {
        self.drop_p > 0.0
            || self.delay_p > 0.0
            || self.dup_p > 0.0
            || self.reorder_p > 0.0
            || self.jitter_pready
            || self.any_wire_faults()
    }

    /// Parse the `PCOMM_FAULTS` spec: comma-separated `key=value` items.
    ///
    /// Keys: `seed=N`, `drop=P`, `delay=P[:MAX_US]`, `dup=P`,
    /// `reorder=P`, `jitter` (flag), `retries=N`, and the wire-class
    /// faults (socket transport only): `torn=P`, `shortread=P`,
    /// `garbage=P`, `reset=P`, `lanekill=LANE:BYTES`,
    /// `halfopen=LANE:BYTES`. Probabilities are in `[0, 1]`. Unknown
    /// keys and malformed values are errors.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        fn need<'a>(key: &str, v: Option<&'a str>) -> Result<&'a str, String> {
            v.ok_or_else(|| format!("`{key}` needs a value"))
        }
        let mut plan = FaultPlan::seeded(0);
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (key, val) = match item.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (item, None),
            };
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v.parse().map_err(|_| format!("bad probability `{v}`"))?;
                if (0.0..=1.0).contains(&p) {
                    Ok(p)
                } else {
                    Err(format!("probability `{v}` outside [0, 1]"))
                }
            };
            match key {
                "seed" => {
                    plan.seed = need(key, val)?
                        .parse()
                        .map_err(|_| format!("bad seed `{}`", val.unwrap_or("")))?;
                }
                "drop" => plan.drop_p = prob(need(key, val)?)?,
                "delay" => {
                    let v = need(key, val)?;
                    let (p, max_us) = match v.split_once(':') {
                        Some((p, us)) => (
                            prob(p)?,
                            us.parse().map_err(|_| format!("bad delay bound `{us}`"))?,
                        ),
                        None => (prob(v)?, plan.max_delay_us),
                    };
                    plan.delay_p = p;
                    plan.max_delay_us = max_us.max(1);
                }
                "dup" => plan.dup_p = prob(need(key, val)?)?,
                "reorder" => plan.reorder_p = prob(need(key, val)?)?,
                "jitter" => match val {
                    None | Some("1") | Some("true") => plan.jitter_pready = true,
                    Some("0") | Some("false") => plan.jitter_pready = false,
                    Some(v) => return Err(format!("bad jitter flag `{v}`")),
                },
                "retries" => {
                    plan.max_retries = need(key, val)?
                        .parse()
                        .map_err(|_| format!("bad retries `{}`", val.unwrap_or("")))?;
                }
                "torn" => plan.wire_torn_p = prob(need(key, val)?)?,
                "shortread" => plan.wire_short_read_p = prob(need(key, val)?)?,
                "garbage" => plan.wire_garbage_p = prob(need(key, val)?)?,
                "reset" => plan.wire_reset_p = prob(need(key, val)?)?,
                "lanekill" | "halfopen" => {
                    let v = need(key, val)?;
                    let (lane, bytes) = v
                        .split_once(':')
                        .ok_or_else(|| format!("`{key}` needs LANE:BYTES, got `{v}`"))?;
                    let lane: u32 = lane
                        .parse()
                        .map_err(|_| format!("bad {key} lane `{lane}`"))?;
                    let bytes: u64 = bytes
                        .parse()
                        .map_err(|_| format!("bad {key} byte threshold `{bytes}`"))?;
                    if key == "lanekill" {
                        plan.wire_lane_kill = Some((lane, bytes));
                    } else {
                        plan.wire_half_open = Some((lane, bytes));
                    }
                }
                _ => return Err(format!("unknown PCOMM_FAULTS key `{key}`")),
            }
        }
        Ok(plan)
    }

    /// Decide the fate of one message attempt.
    ///
    /// `seq` is the per-channel (src, dst, ctx, tag) message sequence
    /// number maintained by the caller; `attempt` is the resend attempt
    /// (0 = first try). The result is a pure function of the arguments
    /// and the seed — independent of thread interleaving.
    pub fn decide(
        &self,
        src: usize,
        dst: usize,
        ctx: u64,
        tag: i64,
        seq: u64,
        attempt: u32,
    ) -> FaultAction {
        let mut rng = self.stream(&[
            0x6d73, // domain separator: message decisions
            src as u64,
            dst as u64,
            ctx,
            tag as u64,
            seq,
            attempt as u64,
        ]);
        let r = rng.next_f64();
        let mut cum = self.drop_p;
        if r < cum {
            return FaultAction::Drop;
        }
        cum += self.delay_p;
        if r < cum {
            return FaultAction::Delay {
                us: 1 + rng.next_bounded(self.max_delay_us),
            };
        }
        cum += self.dup_p;
        if r < cum {
            return FaultAction::Duplicate;
        }
        cum += self.reorder_p;
        if r < cum {
            return FaultAction::Reorder;
        }
        FaultAction::None
    }

    /// Deterministic permutation of `0..n` for `pready` jitter round
    /// `round` on `rank`. Identity when `jitter_pready` is off.
    pub fn jitter_order(&self, rank: usize, round: u64, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        if self.jitter_pready && n > 1 {
            let seed = self.stream(&[0x6a74, rank as u64, round]).next_u64();
            Xoshiro256pp::seed_from_u64(seed).shuffle(&mut order);
        }
        order
    }

    /// A decision stream keyed by the seed and the given words: each
    /// word is folded through a SplitMix64 step so nearby envelopes get
    /// uncorrelated streams.
    fn stream(&self, words: &[u64]) -> SplitMix64 {
        let mut acc = SplitMix64::new(self.seed).next_u64();
        for &w in words {
            acc = SplitMix64::new(acc ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64();
        }
        SplitMix64::new(acc)
    }
}

/// Map a [`FaultAction`] to the [`FaultKind`] it is traced as.
pub fn action_fault_kind(action: FaultAction) -> Option<FaultKind> {
    match action {
        FaultAction::None => None,
        FaultAction::Drop => Some(FaultKind::Drop),
        FaultAction::Delay { .. } => Some(FaultKind::Delay),
        FaultAction::Duplicate => Some(FaultKind::Duplicate),
        FaultAction::Reorder => Some(FaultKind::Reorder),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::seeded(42)
            .drops(0.2)
            .delays(0.2, 500)
            .duplicates(0.1)
            .reorders(0.1);
        for seq in 0..200 {
            for attempt in 0..3 {
                let a = plan.decide(0, 1, 7, 3, seq, attempt);
                let b = plan.decide(0, 1, 7, 3, seq, attempt);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn distinct_channels_get_distinct_streams() {
        let plan = FaultPlan::seeded(1).drops(0.5);
        let on_a: Vec<_> = (0..64).map(|s| plan.decide(0, 1, 0, 0, s, 0)).collect();
        let on_b: Vec<_> = (0..64).map(|s| plan.decide(0, 2, 0, 0, s, 0)).collect();
        assert_ne!(on_a, on_b, "channel envelope must perturb the stream");
        let drops = on_a.iter().filter(|a| **a == FaultAction::Drop).count();
        assert!((10..=54).contains(&drops), "p=0.5 over 64 draws: {drops}");
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = FaultPlan::seeded(9);
        assert!(!plan.any_faults());
        for seq in 0..100 {
            assert_eq!(plan.decide(1, 0, 0, 5, seq, 0), FaultAction::None);
        }
    }

    #[test]
    fn delay_bound_is_respected() {
        let plan = FaultPlan::seeded(3).delays(1.0, 50);
        for seq in 0..200 {
            match plan.decide(0, 1, 0, 0, seq, 0) {
                FaultAction::Delay { us } => assert!((1..=50).contains(&us)),
                other => panic!("expected Delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn jitter_order_is_a_deterministic_permutation() {
        let plan = FaultPlan::seeded(5).jitter(true);
        let a = plan.jitter_order(2, 1, 16);
        let b = plan.jitter_order(2, 1, 16);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(a, plan.jitter_order(2, 2, 16), "rounds differ");
        let off = FaultPlan::seeded(5);
        assert_eq!(off.jitter_order(2, 1, 8), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn parse_roundtrips_the_readme_example() {
        let plan =
            FaultPlan::parse("seed=42, drop=0.02, delay=0.05:200, dup=0.01, jitter").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.drop_p, 0.02);
        assert_eq!(plan.delay_p, 0.05);
        assert_eq!(plan.max_delay_us, 200);
        assert_eq!(plan.dup_p, 0.01);
        assert!(plan.jitter_pready);
        assert_eq!(plan.max_retries, 3, "default retries");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=1.5").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("").is_ok(), "empty spec is a no-op plan");
    }

    #[test]
    fn parse_wire_fault_keys() {
        let plan = FaultPlan::parse(
            "seed=7, torn=0.1, shortread=0.2, garbage=0.05, reset=0.01, \
             lanekill=2:65536, halfopen=0:1024",
        )
        .unwrap();
        assert_eq!(plan.wire_torn_p, 0.1);
        assert_eq!(plan.wire_short_read_p, 0.2);
        assert_eq!(plan.wire_garbage_p, 0.05);
        assert_eq!(plan.wire_reset_p, 0.01);
        assert_eq!(plan.wire_lane_kill, Some((2, 65536)));
        assert_eq!(plan.wire_half_open, Some((0, 1024)));
        assert!(plan.any_wire_faults());
        assert!(plan.any_faults());
        // A message-class-only plan reports no wire faults.
        assert!(!FaultPlan::parse("drop=0.1").unwrap().any_wire_faults());
        // Thresholded faults need LANE:BYTES.
        assert!(FaultPlan::parse("lanekill=2").is_err());
        assert!(FaultPlan::parse("halfopen=x:1").is_err());
        assert!(FaultPlan::parse("torn=2.0").is_err());
    }
}
