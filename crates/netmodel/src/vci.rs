//! Virtual communication interfaces (VCIs).
//!
//! MPICH can be configured with `MPIR_CVAR_NUM_VCIS` to spread
//! communicators/windows over independent network resources [Zambre et al.,
//! ICS'20]; the paper's Figs. 5–6 contrast 1 VCI (heavy thread contention)
//! with 32 VCIs (contention eliminated). A [`VciPool`] models each VCI as
//! an exclusive FIFO [`Resource`].

use pcomm_simcore::sync::Resource;
use pcomm_simcore::Sim;

/// A pool of VCIs; communicators/windows/partitions map onto members.
#[derive(Clone)]
pub struct VciPool {
    vcis: Vec<Resource>,
}

impl VciPool {
    /// Create a pool of `n` VCIs (n ≥ 1).
    pub fn new(sim: &Sim, n: usize) -> VciPool {
        assert!(n >= 1, "need at least one VCI");
        VciPool {
            vcis: (0..n).map(|_| Resource::new(sim)).collect(),
        }
    }

    /// Number of VCIs.
    pub fn len(&self) -> usize {
        self.vcis.len()
    }

    /// Whether the pool has exactly one VCI (fully serialized).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The VCI an object with logical index `idx` maps to (round-robin,
    /// mirroring MPICH's communicator→VCI and the improved partitioned
    /// path's partition→VCI attribution, paper §3.2.2).
    pub fn vci(&self, idx: usize) -> &Resource {
        &self.vcis[idx % self.vcis.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_simcore::Dur;

    #[test]
    fn round_robin_mapping() {
        let sim = Sim::new();
        let pool = VciPool::new(&sim, 4);
        assert_eq!(pool.len(), 4);
        // Index 0 and 4 share a VCI: occupy one through idx 0 and observe
        // contention through idx 4.
        let a = pool.vci(0).clone();
        let b = pool.vci(4).clone();
        let s = sim.clone();
        sim.spawn(async move {
            let _g = a.acquire().await;
            s.sleep(Dur::from_us(5)).await;
        });
        let s2 = sim.clone();
        let probe = sim.spawn(async move {
            s2.sleep(Dur::from_us(1)).await;
            let g = b.acquire().await;
            s2.now().as_us_f64() + g.queued_for().as_us_f64() * 0.0
        });
        sim.run();
        assert_eq!(probe.try_take().unwrap(), 5.0);
    }

    #[test]
    fn distinct_vcis_do_not_contend() {
        let sim = Sim::new();
        let pool = VciPool::new(&sim, 8);
        for i in 0..8 {
            let vci = pool.vci(i).clone();
            sim.spawn(async move {
                vci.occupy(Dur::from_us(3)).await;
            });
        }
        sim.run();
        // All eight occupy their own VCI in parallel.
        assert_eq!(sim.now().as_us_f64(), 3.0);
    }

    #[test]
    fn single_vci_serializes_everything() {
        let sim = Sim::new();
        let pool = VciPool::new(&sim, 1);
        for i in 0..8 {
            let vci = pool.vci(i).clone();
            sim.spawn(async move {
                vci.occupy(Dur::from_us(3)).await;
            });
        }
        sim.run();
        assert_eq!(sim.now().as_us_f64(), 24.0);
    }

    #[test]
    #[should_panic(expected = "at least one VCI")]
    fn zero_vcis_rejected() {
        let sim = Sim::new();
        let _ = VciPool::new(&sim, 0);
    }
}
