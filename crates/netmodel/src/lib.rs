//! `pcomm-netmodel` — machine and network cost model for the simulated MPI
//! runtime.
//!
//! The model is LogGP-flavoured: per-message CPU overheads, a one-way wire
//! latency, a per-byte bandwidth term, plus the structure that the paper's
//! figures depend on:
//!
//! * **UCX-like protocol switching** (paper §4.1): *short* for tiny
//!   messages, *bcopy* eager (extra memcpy at both ends) up to the
//!   rendezvous threshold, *zcopy* rendezvous (RTS/CTS round-trip, then
//!   full-bandwidth zero-copy) above it. The time-vs-size curve therefore
//!   jumps between 1 KiB→2 KiB and 8 KiB→16 KiB as in Fig. 4.
//! * **VCIs** ([`VciPool`]): virtual communication interfaces are exclusive
//!   FIFO resources; concurrent senders on one VCI serialize and pay a
//!   contention penalty that grows with the number of waiters (cache-line
//!   bouncing on the VCI lock).
//! * **Thread/atomic costs**: barrier cost (log₂ tree), atomic
//!   read-modify-write cost for partition counters, per-request setup and
//!   completion costs.
//!
//! All constants live in [`MachineConfig`]; [`MachineConfig::meluxina`] is
//! calibrated against the paper's testbed (25 GB/s, 1.22 µs HDR200-IB).

#![warn(missing_docs)]

mod config;
mod noise;
mod vci;

pub use config::{MachineConfig, Protocol};
pub use noise::NoiseInjector;
pub use vci::VciPool;
