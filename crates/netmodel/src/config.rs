//! Machine configuration: every timing constant of the simulated platform.

use pcomm_simcore::Dur;

/// Transfer protocol selected per message size, mirroring UCX's short /
/// bcopy / zcopy (rendezvous) split observed in the paper's Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Inline/short: payload rides in the header; no memcpy beyond it.
    Short,
    /// Eager buffered-copy: sender and receiver each pay a memcpy.
    EagerBcopy,
    /// Rendezvous zero-copy: RTS/CTS handshake, then full-bandwidth DMA.
    RendezvousZcopy,
}

/// Timing constants of the simulated machine.
///
/// Defaults are calibrated against the paper's testbed (MeluXina CPU
/// partition: AMD EPYC 7H12, Mellanox HDR200, 25 GB/s, 1.22 µs one-way
/// latency, MPICH over ucx-1.13.1). Calibration rationale is noted per
/// field; the tuned end-to-end factors are asserted by the figure
/// regression tests in `pcomm-bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Network bandwidth β in bytes/second.
    pub bandwidth: f64,
    /// One-way wire latency.
    pub latency: Dur,
    /// Largest payload using the short protocol (paper: jump between
    /// 1024 B and 2048 B → threshold 1 KiB).
    pub short_max: usize,
    /// Largest payload using the eager bcopy protocol (paper: rendezvous
    /// from 8 KiB→16 KiB → threshold 8 KiB).
    pub eager_max: usize,
    /// Host memcpy bandwidth for bcopy/AM copies, bytes/second.
    pub copy_bandwidth: f64,
    /// CPU overhead to post and inject a tag-matched send.
    pub o_send: Dur,
    /// CPU overhead to match and complete a receive.
    pub o_recv: Dur,
    /// CPU overhead to issue an RMA put (no tag matching: cheaper).
    pub o_rma_put: Dur,
    /// Active-message dispatch overhead (header handling + callback), paid
    /// on top of the copies in the legacy AM partitioned path.
    pub o_am: Dur,
    /// Overhead to generate/handle one control message (RTS or CTS).
    pub o_ctrl: Dur,
    /// Lock contention coefficient: a VCI grant that observed `w` waiters
    /// queued behind it pays `lock_handoff · w^contention_exponent` extra
    /// (cache-line bouncing grows superlinearly with the number of
    /// spinners).
    pub lock_handoff: Dur,
    /// Exponent of the contention penalty (2 = quadratic, the calibrated
    /// default; 1 = linear, for model ablation).
    pub contention_exponent: u32,
    /// Uncontended atomic read-modify-write (partition counters).
    pub atomic_rmw: Dur,
    /// Extra atomic cost per concurrent updater of the same counter.
    pub atomic_contention: Dur,
    /// Thread barrier: fixed cost.
    pub barrier_base: Dur,
    /// Thread barrier: additional cost per log₂(threads) tree level.
    pub barrier_per_level: Dur,
    /// Per-request cost of `MPI_Start` (request setup / state reset).
    pub o_request_setup: Dur,
    /// Per-request cost of completing a request in `MPI_Wait{,all}`.
    pub o_request_complete: Dur,
    /// Progress-engine cost per *additional* window/object polled while
    /// waiting (the RMA-many-passive overhead of Fig. 5).
    pub o_progress_per_object: Dur,
    /// Window synchronization cost (post/start/complete/wait or
    /// lock/unlock bookkeeping), per call.
    pub o_win_sync: Dur,
    /// Relative standard deviation of multiplicative timing noise applied
    /// to CPU-side costs (system noise; keeps confidence intervals honest).
    pub noise_rel_sd: f64,
}

impl MachineConfig {
    /// MeluXina-like calibration (the paper's testbed).
    pub fn meluxina() -> Self {
        MachineConfig {
            bandwidth: 25e9,
            latency: Dur::from_ns(1220),
            short_max: 1024,
            eager_max: 8192,
            // Single-core copy bandwidth on EPYC ~ 12 GB/s.
            copy_bandwidth: 12e9,
            o_send: Dur::from_ns(400),
            o_recv: Dur::from_ns(200),
            o_rma_put: Dur::from_ns(250),
            o_am: Dur::from_ns(350),
            o_ctrl: Dur::from_ns(300),
            // Calibrated against the paper's ≈30× thread-contention penalty
            // at 32 threads on one VCI (Fig. 5 vs Pt2Pt single) while
            // keeping the 4-thread contention of Fig. 7 mild (quadratic
            // growth in the waiter count).
            lock_handoff: Dur::from_ns(25),
            contention_exponent: 2,
            atomic_rmw: Dur::from_ns(50),
            atomic_contention: Dur::from_ns(150),
            barrier_base: Dur::from_ns(200),
            barrier_per_level: Dur::from_ns(150),
            o_request_setup: Dur::from_ns(300),
            o_request_complete: Dur::from_ns(250),
            o_progress_per_object: Dur::from_ns(150),
            o_win_sync: Dur::from_ns(250),
            noise_rel_sd: 0.01,
        }
    }

    /// A commodity 100 GbE cluster: an order of magnitude less bandwidth,
    /// twice the latency, smaller eager windows. Used by the sensitivity
    /// experiment to show how the paper's crossover points move with the
    /// machine balance.
    pub fn commodity_cluster() -> Self {
        MachineConfig {
            bandwidth: 12.5e9,
            latency: Dur::from_ns(2500),
            short_max: 256,
            eager_max: 4096,
            ..Self::meluxina()
        }
    }

    /// A noise-free variant of [`MachineConfig::meluxina`] for exact-value
    /// unit tests.
    pub fn meluxina_quiet() -> Self {
        MachineConfig {
            noise_rel_sd: 0.0,
            ..Self::meluxina()
        }
    }

    /// Protocol used for a payload of `bytes`.
    pub fn protocol_for(&self, bytes: usize) -> Protocol {
        if bytes <= self.short_max {
            Protocol::Short
        } else if bytes <= self.eager_max {
            Protocol::EagerBcopy
        } else {
            Protocol::RendezvousZcopy
        }
    }

    /// Pure wire (bandwidth) time for `bytes`.
    pub fn wire_time(&self, bytes: usize) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Host memcpy time for `bytes`.
    pub fn copy_time(&self, bytes: usize) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.copy_bandwidth)
    }

    /// Thread barrier cost for `n` threads (log₂ combining tree).
    pub fn barrier_cost(&self, n: usize) -> Dur {
        assert!(n >= 1);
        if n == 1 {
            return Dur::ZERO;
        }
        let levels = (n as f64).log2().ceil() as u64;
        self.barrier_base + self.barrier_per_level * levels
    }

    /// Lock contention penalty paid at a VCI grant that observed
    /// `waiters` tasks still queued behind it. Quadratic in the waiter
    /// count: heavy pile-ups (32 threads on one VCI) are disproportionally
    /// expensive, while 2–4 contenders cost little — matching the paper's
    /// ≈30× (Fig. 5) vs ≈10× (Fig. 7) penalties.
    pub fn contention_penalty(&self, waiters: usize) -> Dur {
        self.lock_handoff * (waiters as u64).pow(self.contention_exponent)
    }

    /// Atomic update cost with `concurrent` other threads hammering the
    /// same cache line.
    pub fn atomic_cost(&self, concurrent: usize) -> Dur {
        self.atomic_rmw + self.atomic_contention * concurrent as u64
    }

    /// Sender-side CPU occupancy of a message injection: the time the VCI
    /// is held while posting the send (includes the bcopy for eager-copy
    /// protocols; zcopy only stages a descriptor).
    pub fn send_occupancy(&self, bytes: usize) -> Dur {
        match self.protocol_for(bytes) {
            Protocol::Short => self.o_send,
            Protocol::EagerBcopy => self.o_send + self.copy_time(bytes),
            Protocol::RendezvousZcopy => self.o_send,
        }
    }

    /// Receiver-side CPU time to land a message of `bytes`.
    pub fn recv_cost(&self, bytes: usize) -> Dur {
        match self.protocol_for(bytes) {
            Protocol::Short => self.o_recv,
            Protocol::EagerBcopy => self.o_recv + self.copy_time(bytes),
            Protocol::RendezvousZcopy => self.o_recv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_thresholds_match_paper() {
        let m = MachineConfig::meluxina();
        assert_eq!(m.protocol_for(16), Protocol::Short);
        assert_eq!(m.protocol_for(1024), Protocol::Short);
        assert_eq!(m.protocol_for(2048), Protocol::EagerBcopy);
        assert_eq!(m.protocol_for(8192), Protocol::EagerBcopy);
        assert_eq!(m.protocol_for(16384), Protocol::RendezvousZcopy);
        assert_eq!(m.protocol_for(16 << 20), Protocol::RendezvousZcopy);
    }

    #[test]
    fn wire_time_at_25gbs() {
        let m = MachineConfig::meluxina();
        // 1 MB at 25 GB/s = 40 µs.
        assert_eq!(m.wire_time(1_000_000), Dur::from_us(40));
    }

    #[test]
    fn copy_slower_than_wire() {
        let m = MachineConfig::meluxina();
        assert!(m.copy_time(4096) > m.wire_time(4096));
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = MachineConfig::meluxina();
        assert_eq!(m.barrier_cost(1), Dur::ZERO);
        let b2 = m.barrier_cost(2);
        let b32 = m.barrier_cost(32);
        let b33 = m.barrier_cost(33);
        assert_eq!(b2, m.barrier_base + m.barrier_per_level);
        assert_eq!(b32, m.barrier_base + m.barrier_per_level * 5);
        assert_eq!(b33, m.barrier_base + m.barrier_per_level * 6);
    }

    #[test]
    fn contention_penalty_quadratic_in_waiters() {
        let m = MachineConfig::meluxina();
        assert_eq!(m.contention_penalty(0), Dur::ZERO);
        assert_eq!(m.contention_penalty(31), m.lock_handoff * (31 * 31));
        // Linear ablation variant.
        let linear = MachineConfig {
            contention_exponent: 1,
            ..MachineConfig::meluxina()
        };
        assert_eq!(linear.contention_penalty(31), linear.lock_handoff * 31);
        // Mild at few contenders, brutal at a 32-thread pile-up.
        assert!(m.contention_penalty(3) < Dur::from_ns(300));
        assert!(m.contention_penalty(31) > Dur::from_us(10));
    }

    #[test]
    fn send_occupancy_includes_bcopy_only_in_eager() {
        let m = MachineConfig::meluxina();
        assert_eq!(m.send_occupancy(512), m.o_send);
        assert_eq!(m.send_occupancy(4096), m.o_send + m.copy_time(4096));
        assert_eq!(m.send_occupancy(1 << 20), m.o_send);
    }

    #[test]
    fn quiet_variant_disables_noise_only() {
        let loud = MachineConfig::meluxina();
        let quiet = MachineConfig::meluxina_quiet();
        assert_eq!(quiet.noise_rel_sd, 0.0);
        assert_eq!(quiet.bandwidth, loud.bandwidth);
        assert_eq!(quiet.o_send, loud.o_send);
    }

    #[test]
    fn commodity_preset_is_slower_machine() {
        let fast = MachineConfig::meluxina();
        let slow = MachineConfig::commodity_cluster();
        assert!(slow.bandwidth < fast.bandwidth);
        assert!(slow.latency > fast.latency);
        assert!(slow.eager_max < fast.eager_max);
        // CPU-side constants are shared.
        assert_eq!(slow.o_send, fast.o_send);
    }

    #[test]
    fn atomic_cost_grows_with_concurrency() {
        let m = MachineConfig::meluxina();
        assert!(m.atomic_cost(8) > m.atomic_cost(0));
        assert_eq!(m.atomic_cost(0), m.atomic_rmw);
    }
}
