//! Multiplicative timing noise for CPU-side costs.

use pcomm_prng::{Normal, Rng64, Xoshiro256pp};
use pcomm_simcore::Dur;

/// Injects multiplicative Gaussian noise `N(1, rel_sd)` into durations.
///
/// The simulator applies this to CPU-side costs only — wire time is kept
/// exact so that bandwidth asymptotes match theory — which mirrors the
/// paper's observation that system noise is a property of execution, not of
/// the link. Noise keeps the Student-t confidence intervals of the
/// measurement protocol meaningful.
#[derive(Debug, Clone)]
pub struct NoiseInjector {
    dist: Normal,
    rng: Xoshiro256pp,
}

impl NoiseInjector {
    /// Create an injector with relative standard deviation `rel_sd`,
    /// seeded deterministically.
    pub fn new(rel_sd: f64, seed: u64) -> Self {
        NoiseInjector {
            dist: Normal::new(1.0, rel_sd),
            rng: Xoshiro256pp::seed_from_u64(seed),
        }
    }

    /// A disabled injector (always returns the input unchanged).
    pub fn disabled() -> Self {
        Self::new(0.0, 0)
    }

    /// Whether this injector actually perturbs values.
    pub fn is_enabled(&self) -> bool {
        self.dist.sd() > 0.0
    }

    /// Apply noise to a duration (clamped at zero).
    pub fn jitter(&mut self, d: Dur) -> Dur {
        if !self.is_enabled() {
            return d;
        }
        let factor = self.dist.sample_clamped_min(&mut self.rng, 0.0);
        d.mul_f64(factor)
    }

    /// Draw a raw multiplicative factor (used for compute-time noise).
    pub fn factor(&mut self) -> f64 {
        self.dist.sample_clamped_min(&mut self.rng, 0.0)
    }

    /// Derive an independent child injector (per simulated entity).
    pub fn split(&mut self) -> Self {
        NoiseInjector {
            dist: self.dist,
            rng: self.rng.split(),
        }
    }

    /// Access the underlying RNG (for auxiliary draws).
    pub fn rng(&mut self) -> &mut impl Rng64 {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_identity() {
        let mut n = NoiseInjector::disabled();
        let d = Dur::from_us(5);
        for _ in 0..10 {
            assert_eq!(n.jitter(d), d);
        }
        assert!(!n.is_enabled());
    }

    #[test]
    fn jitter_stays_close_for_small_sd() {
        let mut n = NoiseInjector::new(0.01, 7);
        let d = Dur::from_us(100);
        for _ in 0..1000 {
            let j = n.jitter(d);
            let rel = (j.as_us_f64() - 100.0).abs() / 100.0;
            assert!(rel < 0.08, "jitter {j} too far from 100us");
        }
    }

    #[test]
    fn jitter_mean_is_unbiased() {
        let mut n = NoiseInjector::new(0.05, 11);
        let d = Dur::from_us(10);
        let total: f64 = (0..20_000).map(|_| n.jitter(d).as_us_f64()).sum();
        let mean = total / 20_000.0;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = NoiseInjector::new(0.05, 3);
        let mut b = NoiseInjector::new(0.05, 3);
        let d = Dur::from_us(1);
        for _ in 0..100 {
            assert_eq!(a.jitter(d), b.jitter(d));
        }
    }

    #[test]
    fn split_streams_differ() {
        let mut parent = NoiseInjector::new(0.05, 3);
        let mut a = parent.split();
        let mut b = parent.split();
        let d = Dur::from_us(1);
        let same = (0..100).filter(|_| a.jitter(d) == b.jitter(d)).count();
        assert!(same < 5);
    }
}
