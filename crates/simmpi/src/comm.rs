//! Communicators.

use crate::world::{CtxKind, World};

/// A simulated communicator handle, as seen from one rank.
///
/// Mirrors the MPI facts the paper's strategies depend on: a communicator
/// carries an isolated matching context, and in MPICH distinct
/// communicators map (round-robin) onto distinct VCIs, which is what makes
/// `MPI_Comm_dup` the classic thread-contention workaround (§2.3.2).
#[derive(Clone)]
pub struct Comm {
    world: World,
    rank: usize,
    size: usize,
    ctx: u64,
    vci_idx: usize,
}

impl Comm {
    pub(crate) fn new(world: World, rank: usize, size: usize, ctx: u64, vci_idx: usize) -> Comm {
        Comm {
            world,
            rank,
            size,
            ctx,
            vci_idx,
        }
    }

    /// This rank's id in the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The matching context id.
    pub fn ctx(&self) -> u64 {
        self.ctx
    }

    /// The VCI this communicator's traffic uses.
    pub fn vci_idx(&self) -> usize {
        self.vci_idx
    }

    /// The world this communicator lives in.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Duplicate the communicator (`MPI_Comm_dup`).
    ///
    /// Collective: every rank must call `dup` on its handle in the same
    /// order so the derived context ids agree (as MPI requires). The new
    /// communicator is assigned the next VCI round-robin.
    pub fn dup(&self) -> Comm {
        let ctx = self
            .world
            .alloc_child_ctx(self.rank, self.ctx, CtxKind::Dup);
        let vci_idx = self.world.assign_vci(self.rank);
        Comm {
            world: self.world.clone(),
            rank: self.rank,
            size: self.size,
            ctx,
            vci_idx,
        }
    }

    /// A clone of this communicator bound to a different VCI (used by the
    /// improved partitioned path's round-robin message→VCI mapping).
    pub(crate) fn with_vci(&self, vci_idx: usize) -> Comm {
        Comm {
            vci_idx,
            ..self.clone()
        }
    }

    /// Derive the internal context used by partitioned communication for a
    /// given user tag (the "reserved tag space" of paper §3.2.1).
    pub(crate) fn part_ctx(&self, tag: i64) -> u64 {
        assert!(
            (0..1 << 16).contains(&tag),
            "partitioned tag out of reserved space"
        );
        // Deterministic on both sides without a counter: kind=Part, idx=tag.
        self.ctx * (1 << 18) + ((CtxKind::Part as u64) << 16) + tag as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_netmodel::MachineConfig;
    use pcomm_simcore::Sim;

    #[test]
    fn dup_changes_ctx_and_vci() {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 4, 0);
        let c0 = world.comm_world(0);
        let d1 = c0.dup();
        let d2 = c0.dup();
        assert_ne!(d1.ctx(), c0.ctx());
        assert_ne!(d1.ctx(), d2.ctx());
        assert_eq!(d1.vci_idx(), 1);
        assert_eq!(d2.vci_idx(), 2);
        assert_eq!(d1.rank(), 0);
        assert_eq!(d1.size(), 2);
    }

    #[test]
    fn symmetric_dup_order_agrees_across_ranks() {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 4, 0);
        let s0 = world.comm_world(0).dup();
        let s1 = world.comm_world(0).dup();
        let r0 = world.comm_world(1).dup();
        let r1 = world.comm_world(1).dup();
        assert_eq!(s0.ctx(), r0.ctx());
        assert_eq!(s1.ctx(), r1.ctx());
    }

    #[test]
    fn part_ctx_is_deterministic_and_tag_scoped() {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 1, 0);
        let c0 = world.comm_world(0);
        let c1 = world.comm_world(1);
        assert_eq!(c0.part_ctx(3), c1.part_ctx(3));
        assert_ne!(c0.part_ctx(3), c0.part_ctx(4));
        assert_ne!(c0.part_ctx(3), c0.ctx());
    }

    #[test]
    #[should_panic(expected = "reserved space")]
    fn part_ctx_rejects_huge_tags() {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 1, 0);
        let _ = world.comm_world(0).part_ctx(1 << 20);
    }
}
