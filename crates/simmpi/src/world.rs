//! The simulated machine: ranks, links, VCIs and the message delivery path.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use pcomm_netmodel::{MachineConfig, NoiseInjector, VciPool};
use pcomm_simcore::sync::Resource;
use pcomm_simcore::{Dur, Sim};
use pcomm_trace::{Event, EventKind, FaultAction, FaultKind, FaultPlan};

use crate::comm::Comm;
use crate::tag::{Delivered, MatchEngine, Posted};

/// Kind discriminator for deterministic context-id derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtxKind {
    /// `MPI_Comm_dup` child.
    Dup = 1,
    /// Window control context.
    Win = 2,
    /// Partitioned-communication internal context.
    Part = 3,
}

struct WorldState {
    engines: Vec<Rc<MatchEngine>>,
    links: HashMap<(usize, usize), Resource>,
    vci_pools: Vec<VciPool>,
    noise: NoiseInjector,
    /// (rank, parent ctx, kind) → next child index; "collective" calls must
    /// happen in the same order on every rank (as in MPI) so derived
    /// context ids agree.
    child_counts: HashMap<(usize, u64, u8), u64>,
    /// Per rank: number of windows created (progress-engine overhead).
    windows: Vec<usize>,
    /// Partitioned requests created per (src, dst) peer pair (tag-space
    /// accounting, paper §3.2.1).
    part_requests: HashMap<(usize, usize), usize>,
    /// Per rank: next VCI assignment for communicators/windows
    /// (round-robin, as MPICH maps comms to VCIs).
    vci_assign: Vec<usize>,
    /// Optional event trace (None = tracing disabled). Events use the
    /// same typed schema as the real runtime ([`pcomm_trace`]), stamped
    /// with *virtual* nanoseconds, so sim and real traces are directly
    /// comparable in one viewer.
    trace: Option<Vec<Event>>,
    /// Analysis-grade `Verify*` event emission for `pcomm-verify`
    /// (implies tracing). Off by default: the verify events are dense
    /// (one per partition access and per message hop) and only the
    /// verification passes consume them.
    verify: bool,
    /// Interned `(ctx, sender_rank)` request identities, in first-seen
    /// order; a request's `Verify*` id is its index. The sender's rank
    /// disambiguates pairs sharing a partitioned (ctx, tag) — mirrors
    /// `Trace::verify_req_id` in the real runtime.
    verify_reqs: Vec<(u64, u16)>,
    /// Optional chaos plan (None = no fault injection). Shares the
    /// [`FaultPlan`] definition with the real runtime so one
    /// `PCOMM_FAULTS` spec drives both.
    fault_plan: Option<FaultPlan>,
    /// Per-channel (src, dst, ctx, tag) message sequence numbers for
    /// [`FaultPlan::decide`]; incremented at transmit-call order, which
    /// the single-threaded simulation makes deterministic.
    fault_seq: HashMap<(usize, usize, u64, i64), u64>,
}

/// Chaos decisions for one simulated transmission, computed at transmit
/// time and charged in virtual time by [`World::charge_faults`].
///
/// The simulated transport stays reliable: where the real fabric loses a
/// message after `max_retries` resends (surfacing `MessageLost`), the
/// simulator's link layer always recovers — each dropped attempt is
/// charged one retransmission round trip and the message is delivered
/// anyway. Drops therefore surface as *latency*, never as data loss;
/// `Duplicate`/`Reorder` decisions decay to clean delivery because an
/// in-order reliable link absorbs them.
struct FaultOutcome {
    /// Dropped attempts before the delivered one (each costs 2×latency).
    drops: u32,
    /// Injected delay on the delivered attempt, microseconds (0 = none).
    delay_us: u64,
}

/// Handle to the simulated machine. Cheap to clone.
#[derive(Clone)]
pub struct World {
    sim: Sim,
    cfg: Rc<MachineConfig>,
    state: Rc<RefCell<WorldState>>,
}

impl World {
    /// Create a world with `n_ranks` ranks, `n_vcis` VCIs per rank and a
    /// deterministic noise seed.
    pub fn new(sim: &Sim, cfg: MachineConfig, n_ranks: usize, n_vcis: usize, seed: u64) -> World {
        assert!(n_ranks >= 1, "need at least one rank");
        let noise = NoiseInjector::new(cfg.noise_rel_sd, seed);
        World {
            sim: sim.clone(),
            cfg: Rc::new(cfg),
            state: Rc::new(RefCell::new(WorldState {
                engines: (0..n_ranks).map(|_| Rc::new(MatchEngine::new())).collect(),
                links: HashMap::new(),
                vci_pools: (0..n_ranks).map(|_| VciPool::new(sim, n_vcis)).collect(),
                noise,
                child_counts: HashMap::new(),
                windows: vec![0; n_ranks],
                part_requests: HashMap::new(),
                trace: None,
                verify: false,
                verify_reqs: Vec::new(),
                fault_plan: None,
                fault_seq: HashMap::new(),
                vci_assign: vec![1; n_ranks], // 0 is comm_world's VCI
            })),
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.state.borrow().engines.len()
    }

    /// Number of VCIs per rank.
    pub fn n_vcis(&self) -> usize {
        self.state.borrow().vci_pools[0].len()
    }

    /// `MPI_COMM_WORLD` as seen from `rank`.
    pub fn comm_world(&self, rank: usize) -> Comm {
        assert!(rank < self.n_ranks(), "rank out of range");
        Comm::new(self.clone(), rank, self.n_ranks(), 0, 0)
    }

    pub(crate) fn engine(&self, rank: usize) -> Rc<MatchEngine> {
        Rc::clone(&self.state.borrow().engines[rank])
    }

    /// The (src → dst) link resource; created lazily.
    pub(crate) fn link(&self, src: usize, dst: usize) -> Resource {
        let mut s = self.state.borrow_mut();
        s.links
            .entry((src, dst))
            .or_insert_with(|| Resource::new(&self.sim))
            .clone()
    }

    /// VCI `idx` of `rank` (round-robin over the pool).
    pub(crate) fn vci(&self, rank: usize, idx: usize) -> Resource {
        self.state.borrow().vci_pools[rank].vci(idx).clone()
    }

    /// Apply system noise to a CPU-side cost.
    pub(crate) fn jitter(&self, d: Dur) -> Dur {
        self.state.borrow_mut().noise.jitter(d)
    }

    /// Enable event tracing (records message injections, VCI waits and
    /// partitioned-communication milestones as typed [`Event`]s).
    pub fn enable_trace(&self) {
        self.state.borrow_mut().trace = Some(Vec::new());
    }

    /// Enable analysis-grade `Verify*` event emission for the
    /// `pcomm-verify` passes (happens-before races, wait-for-graph
    /// deadlocks, protocol lints). Implies [`World::enable_trace`]; the
    /// collected events come back through [`World::take_trace`].
    pub fn enable_verify(&self) {
        let mut s = self.state.borrow_mut();
        if s.trace.is_none() {
            s.trace = Some(Vec::new());
        }
        s.verify = true;
    }

    /// Whether `Verify*` emission is on (callers that must spawn
    /// observer tasks check this up front).
    pub(crate) fn verify_on(&self) -> bool {
        self.state.borrow().verify
    }

    /// Intern a partitioned request's `(ctx, sender_rank)` identity into
    /// the stable `u16` id carried by `Verify*` events; both sides call
    /// with the sender's rank and agree. Returns 0 when verification is
    /// off (no event carries it then).
    pub(crate) fn verify_req_id(&self, ctx: u64, sender_rank: u16) -> u16 {
        let mut s = self.state.borrow_mut();
        if !s.verify {
            return 0;
        }
        let key = (ctx, sender_rank);
        if let Some(i) = s.verify_reqs.iter().position(|&k| k == key) {
            return i as u16;
        }
        s.verify_reqs.push(key);
        (s.verify_reqs.len() - 1) as u16
    }

    /// Record a `Verify*` event at virtual-now, only when verification
    /// is enabled. The closure only runs when it is, keeping the
    /// default path to one branch.
    pub(crate) fn emit_verify(&self, rank: usize, kind: impl FnOnce() -> EventKind) {
        let mut s = self.state.borrow_mut();
        if !s.verify {
            return;
        }
        if let Some(trace) = s.trace.as_mut() {
            let ts_ns = self.sim.now().as_ps() / 1000;
            let mut ev = kind().at(ts_ns);
            ev.rank = rank as u16;
            trace.push(ev);
        }
    }

    /// Enable chaos fault injection on the simulated transport. Every
    /// transmission consults the plan; drops are charged as
    /// retransmission round trips in virtual time (the simulated link
    /// layer is reliable — see [`FaultOutcome`]) and delays as extra
    /// virtual sleeps, each traced as a [`EventKind::FaultInjected`]
    /// event with a virtual timestamp when tracing is on.
    pub fn enable_faults(&self, plan: FaultPlan) {
        self.state.borrow_mut().fault_plan = Some(plan);
    }

    /// The configured fault plan, if any (e.g. for `pready` jitter at
    /// the partitioned layer).
    pub(crate) fn fault_plan(&self) -> Option<FaultPlan> {
        self.state.borrow().fault_plan.clone()
    }

    /// Decide the chaos outcome for one transmission. Sequence numbers
    /// advance at transmit-call order; since the simulation executes
    /// rank coroutines deterministically, the same workload and seed
    /// reproduce the same outcome sequence bit-for-bit.
    fn fault_outcome(&self, src: usize, dst: usize, ctx: u64, tag: i64) -> Option<FaultOutcome> {
        let (plan, seq) = {
            let mut s = self.state.borrow_mut();
            let plan = s.fault_plan.clone()?;
            if !plan.any_faults() {
                return None;
            }
            let counter = s.fault_seq.entry((src, dst, ctx, tag)).or_insert(0);
            let seq = *counter;
            *counter += 1;
            (plan, seq)
        };
        let mut drops = 0u32;
        let action = loop {
            match plan.decide(src, dst, ctx, tag, seq, drops) {
                FaultAction::Drop => {
                    drops += 1;
                    // Retries exhausted: the reliable link recovers
                    // where the real fabric would report `MessageLost`
                    // (same drop count as the real runtime's trace —
                    // initial attempt + `max_retries` resends).
                    if drops > plan.max_retries {
                        break FaultAction::None;
                    }
                }
                other => break other,
            }
        };
        let delay_us = match action {
            FaultAction::Delay { us } => us,
            // Duplicate/Reorder are absorbed by the in-order link.
            _ => 0,
        };
        if drops == 0 && delay_us == 0 {
            return None;
        }
        Some(FaultOutcome { drops, delay_us })
    }

    /// Charge a chaos outcome in virtual time: one retransmission round
    /// trip per dropped attempt, then the injected delay, emitting the
    /// same trace events the real fabric does (virtual timestamps).
    async fn charge_faults(&self, src: usize, dst: usize, tag: i64, f: &FaultOutcome) {
        for attempt in 0..f.drops {
            self.trace(src, || EventKind::FaultInjected {
                fault: FaultKind::Drop,
                dst: dst as u16,
                tag,
                arg: attempt as u64,
            });
            // Loss detection + resend: a full round trip on the link.
            self.sim.sleep(self.cfg.latency * 2).await;
            self.trace(src, || EventKind::RetryAttempt {
                dst: dst as u16,
                attempt: (attempt + 1) as u16,
                tag,
            });
        }
        if f.delay_us > 0 {
            self.trace(src, || EventKind::FaultInjected {
                fault: FaultKind::Delay,
                dst: dst as u16,
                tag,
                arg: f.delay_us,
            });
            self.sim.sleep(Dur::from_us_f64(f.delay_us as f64)).await;
        }
    }

    /// Take the collected trace, sorted by virtual timestamp (empties it;
    /// never-enabled worlds return an empty vector).
    pub fn take_trace(&self) -> Vec<Event> {
        let mut events = self
            .state
            .borrow_mut()
            .trace
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default();
        // Span events are recorded at completion but stamped with their
        // start time; restore timeline order.
        events.sort_by_key(|e| e.ts_ns);
        events
    }

    /// Virtual now in nanoseconds, only while tracing is enabled. Span
    /// sites capture this as the start timestamp; `None` keeps the
    /// disabled path to a single branch.
    pub(crate) fn trace_now_ns(&self) -> Option<u64> {
        if self.state.borrow().trace.is_some() {
            Some(self.sim.now().as_ps() / 1000)
        } else {
            None
        }
    }

    /// Record an instant event at virtual-now if tracing is enabled. The
    /// closure only runs when tracing is on, keeping the disabled path
    /// free.
    pub(crate) fn trace(&self, rank: usize, kind: impl FnOnce() -> EventKind) {
        let mut s = self.state.borrow_mut();
        if let Some(trace) = s.trace.as_mut() {
            let ts_ns = self.sim.now().as_ps() / 1000;
            let mut ev = kind().at(ts_ns);
            ev.rank = rank as u16;
            trace.push(ev);
        }
    }

    /// Record a span event that started at `start_ns` (from
    /// [`World::trace_now_ns`]) and ends now; the closure receives the
    /// span duration in ns. No-op when `start_ns` is `None`.
    pub(crate) fn trace_span(
        &self,
        start_ns: Option<u64>,
        rank: usize,
        kind: impl FnOnce(u64) -> EventKind,
    ) {
        let Some(t0) = start_ns else { return };
        let mut s = self.state.borrow_mut();
        if let Some(trace) = s.trace.as_mut() {
            let now = self.sim.now().as_ps() / 1000;
            let mut ev = kind(now.saturating_sub(t0)).at(t0);
            ev.rank = rank as u16;
            trace.push(ev);
        }
    }

    /// Deterministically derive a child context id. Collective creations
    /// (dup, window, partitioned init) must occur in the same order on all
    /// participating ranks, as MPI requires.
    pub(crate) fn alloc_child_ctx(&self, rank: usize, parent: u64, kind: CtxKind) -> u64 {
        let mut s = self.state.borrow_mut();
        let counter = s
            .child_counts
            .entry((rank, parent, kind as u8))
            .or_insert(0);
        let idx = *counter;
        *counter += 1;
        assert!(idx < 1 << 16, "too many child contexts");
        parent * (1 << 18) + ((kind as u64) << 16) + idx + 1
    }

    /// Round-robin VCI assignment for a new communicator/window on `rank`.
    pub(crate) fn assign_vci(&self, rank: usize) -> usize {
        let mut s = self.state.borrow_mut();
        let n = s.vci_pools[rank].len();
        let idx = s.vci_assign[rank] % n;
        s.vci_assign[rank] += 1;
        idx
    }

    /// Record a new window on `rank`; returns the total including it.
    pub(crate) fn register_window(&self, rank: usize) -> usize {
        let mut s = self.state.borrow_mut();
        s.windows[rank] += 1;
        s.windows[rank]
    }

    /// Windows currently registered on `rank` (progress-engine load).
    pub(crate) fn windows_on(&self, rank: usize) -> usize {
        self.state.borrow().windows[rank]
    }

    /// Count of partitioned requests previously created for the (src, dst)
    /// peer pair; increments the counter (tag-space accounting).
    pub(crate) fn count_part_request(&self, src: usize, dst: usize) -> usize {
        let mut s = self.state.borrow_mut();
        let c = s.part_requests.entry((src, dst)).or_insert(0);
        let prev = *c;
        *c += 1;
        prev
    }

    /// Transmit a payload-bearing message: occupies the (src→dst) link for
    /// the wire time, then propagates for the one-way latency, then enters
    /// `dst`'s matching engine.
    pub(crate) fn transmit(&self, src: usize, dst: usize, d: Delivered) {
        let world = self.clone();
        let link = self.link(src, dst);
        let bytes = d.bytes;
        let faults = self.fault_outcome(src, dst, d.ctx, d.tag);
        self.sim.spawn(async move {
            if let Some(f) = &faults {
                world.charge_faults(src, dst, d.tag, f).await;
            }
            {
                let _g = link.acquire().await;
                world.sim.sleep(world.cfg.wire_time(bytes)).await;
            }
            world.sim.sleep(world.cfg.latency).await;
            world.deliver(dst, d);
        });
    }

    /// Transmit a small control message (RTS/CTS/0-byte sync): pure
    /// latency, no link occupancy.
    pub(crate) fn transmit_ctrl(&self, src: usize, dst: usize, d: Delivered) {
        let world = self.clone();
        let faults = self.fault_outcome(src, dst, d.ctx, d.tag);
        self.sim.spawn(async move {
            if let Some(f) = &faults {
                world.charge_faults(src, dst, d.tag, f).await;
            }
            world.sim.sleep(world.cfg.latency).await;
            world.deliver(dst, d);
        });
    }

    /// An arrival at `dst`: match or queue; finalize on match.
    pub(crate) fn deliver(&self, dst: usize, d: Delivered) {
        let engine = self.engine(dst);
        if let Some(posted) = engine.arrive(d) {
            self.finalize_match(dst, posted);
        }
    }

    /// A receive matched a message (either direction). Eager messages are
    /// complete; rendezvous arrivals start their data transfer now (the
    /// CTS goes back to the sender, then the data crosses the link).
    pub(crate) fn finalize_match(&self, dst: usize, posted: Posted) {
        let (src, bytes, rdv) = {
            let slot = posted.slot.borrow();
            let d = slot.as_ref().expect("matched slot must be filled");
            (d.src, d.bytes, d.rendezvous.clone())
        };
        match rdv {
            None => posted.ready.set(),
            Some(handle) => {
                let world = self.clone();
                let link = self.link(src, dst);
                let cts_cost = self.jitter(self.cfg.o_ctrl);
                // Span start: the match; the sender's buffer stays pinned
                // from here until the zero-copy data lands.
                let t0 = self.trace_now_ns();
                self.sim.spawn(async move {
                    // CTS travels back to the sender.
                    world.sim.sleep(cts_cost + world.cfg.latency).await;
                    // Zero-copy data transfer at full bandwidth.
                    {
                        let _g = link.acquire().await;
                        world.sim.sleep(world.cfg.wire_time(bytes)).await;
                    }
                    handle.sender_done.set();
                    world.sim.sleep(world.cfg.latency).await;
                    world.trace_span(t0, src, |wait_ns| EventKind::RdvCopy {
                        shard: 0,
                        bytes: bytes as u64,
                        wait_ns,
                    });
                    posted.ready.set();
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_simcore::sync::Signal;

    fn quiet_world(n_vcis: usize) -> (Sim, World) {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, n_vcis, 1);
        (sim, world)
    }

    #[test]
    fn world_basics() {
        let (_sim, world) = quiet_world(4);
        assert_eq!(world.n_ranks(), 2);
        assert_eq!(world.n_vcis(), 4);
        let c = world.comm_world(0);
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn ctx_derivation_is_symmetric_across_ranks() {
        let (_sim, world) = quiet_world(1);
        // Both ranks derive children in the same order → same ids.
        let a1 = world.alloc_child_ctx(0, 0, CtxKind::Dup);
        let a2 = world.alloc_child_ctx(0, 0, CtxKind::Dup);
        let b1 = world.alloc_child_ctx(1, 0, CtxKind::Dup);
        let b2 = world.alloc_child_ctx(1, 0, CtxKind::Dup);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
        assert_ne!(a1, a2);
        // Different kinds never collide.
        let w = world.alloc_child_ctx(0, 0, CtxKind::Win);
        let p = world.alloc_child_ctx(0, 0, CtxKind::Part);
        assert_ne!(w, a1);
        assert_ne!(p, a1);
        assert_ne!(w, p);
    }

    #[test]
    fn vci_assignment_round_robin() {
        let (_sim, world) = quiet_world(4);
        // comm_world holds VCI 0; assignments start at 1.
        assert_eq!(world.assign_vci(0), 1);
        assert_eq!(world.assign_vci(0), 2);
        assert_eq!(world.assign_vci(0), 3);
        assert_eq!(world.assign_vci(0), 0);
        assert_eq!(world.assign_vci(0), 1);
    }

    #[test]
    fn transmit_delivers_after_wire_plus_latency() {
        let (sim, world) = quiet_world(1);
        let d = Delivered {
            src: 0,
            ctx: 0,
            tag: 5,
            bytes: 1_000_000, // 40us wire at 25 GB/s
            data: None,
            meta: 0,
            rendezvous: None,
        };
        world.transmit(0, 1, d);
        sim.run();
        assert_eq!(world.engine(1).unexpected_len(), 1);
        // 40us wire + 1.22us latency.
        assert!((sim.now().as_us_f64() - 41.22).abs() < 1e-9);
    }

    #[test]
    fn ctrl_takes_latency_only() {
        let (sim, world) = quiet_world(1);
        let d = Delivered {
            src: 0,
            ctx: 0,
            tag: crate::TAG_CTS,
            bytes: 0,
            data: None,
            meta: 0,
            rendezvous: None,
        };
        world.transmit_ctrl(0, 1, d);
        sim.run();
        assert!((sim.now().as_us_f64() - 1.22).abs() < 1e-9);
    }

    #[test]
    fn rendezvous_match_schedules_transfer() {
        let (sim, world) = quiet_world(1);
        let sender_done = Signal::new();
        let d = Delivered {
            src: 0,
            ctx: 0,
            tag: 1,
            bytes: 2_500_000, // 100us wire
            data: None,
            meta: 0,
            rendezvous: Some(crate::tag::RendezvousHandle {
                sender_done: sender_done.clone(),
            }),
        };
        // Post the receive first, then let the RTS arrive.
        let slot = Rc::new(RefCell::new(None));
        let ready = Signal::new();
        let posted = Posted {
            ctx: 0,
            src: Some(0),
            tag: Some(1),
            slot,
            ready: ready.clone(),
        };
        assert!(world.engine(1).post(posted).is_none());
        world.transmit_ctrl(0, 1, d); // RTS
        sim.run();
        assert!(sender_done.is_set());
        assert!(ready.is_set());
        // RTS latency (1.22) + CTS (o_ctrl 0.3 + 1.22) + wire 100 + latency
        // 1.22 = 103.96us.
        assert!(
            (sim.now().as_us_f64() - 103.96).abs() < 1e-6,
            "t = {}",
            sim.now().as_us_f64()
        );
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn bad_rank_rejected() {
        let (_sim, world) = quiet_world(1);
        let _ = world.comm_world(5);
    }

    /// One faulted transmission batch: returns (virtual end time in µs,
    /// chaos trace events).
    fn faulted_run(plan: FaultPlan) -> (f64, Vec<(u16, EventKind)>) {
        let (sim, world) = quiet_world(1);
        world.enable_trace();
        world.enable_faults(plan);
        for tag in 0..32 {
            let d = Delivered {
                src: 0,
                ctx: 0,
                tag,
                bytes: 4096,
                data: None,
                meta: 0,
                rendezvous: None,
            };
            world.transmit(0, 1, d);
        }
        sim.run();
        let events = world
            .take_trace()
            .into_iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::FaultInjected { .. } | EventKind::RetryAttempt { .. }
                )
            })
            .map(|e| (e.rank, e.kind))
            .collect();
        (sim.now().as_us_f64(), events)
    }

    #[test]
    fn seeded_faults_are_bit_for_bit_reproducible() {
        let plan = FaultPlan::seeded(42).drops(0.3).delays(0.3, 200);
        let (t_a, ev_a) = faulted_run(plan.clone());
        let (t_b, ev_b) = faulted_run(plan);
        assert!(!ev_a.is_empty(), "p=0.6 over 32 messages must inject");
        assert_eq!(ev_a, ev_b, "same seed must inject the same faults");
        assert_eq!(t_a, t_b, "virtual end time must be identical");
        // A different seed perturbs the injection sequence.
        let (_, ev_c) = faulted_run(FaultPlan::seeded(43).drops(0.3).delays(0.3, 200));
        assert_ne!(ev_a, ev_c, "seed must steer the fault stream");
    }

    #[test]
    fn drops_cost_time_but_never_lose_messages() {
        // Certain drop: every attempt is dropped, retries exhaust, yet
        // the reliable simulated link still delivers everything.
        let plan = FaultPlan::seeded(7).drops(1.0).retries(2);
        let (t, events) = faulted_run(plan);
        // 32 messages × 3 dropped attempts (initial + 2 retries) each
        // charged 2×latency before delivery.
        let drops = events
            .iter()
            .filter(|(_, k)| {
                matches!(
                    k,
                    EventKind::FaultInjected {
                        fault: FaultKind::Drop,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(drops, 32 * 3);
        // All 32 messages arrived despite 100% attempt loss.
        let (sim2, world2) = quiet_world(1);
        world2.enable_faults(FaultPlan::seeded(7).drops(1.0).retries(2));
        for tag in 0..32 {
            world2.transmit(
                0,
                1,
                Delivered {
                    src: 0,
                    ctx: 0,
                    tag,
                    bytes: 4096,
                    data: None,
                    meta: 0,
                    rendezvous: None,
                },
            );
        }
        sim2.run();
        assert_eq!(world2.engine(1).unexpected_len(), 32);
        // And the retransmissions cost virtual time (3 RTTs ≈ 7.32 µs
        // on top of the clean wire+latency path).
        assert!(t > 7.0, "retransmission must show up in virtual time: {t}");
    }

    #[test]
    fn zero_probability_plan_changes_nothing() {
        let (sim, world) = quiet_world(1);
        world.enable_faults(FaultPlan::seeded(5));
        let d = Delivered {
            src: 0,
            ctx: 0,
            tag: 5,
            bytes: 1_000_000,
            data: None,
            meta: 0,
            rendezvous: None,
        };
        world.transmit(0, 1, d);
        sim.run();
        assert_eq!(world.engine(1).unexpected_len(), 1);
        // Identical timing to `transmit_delivers_after_wire_plus_latency`.
        assert!((sim.now().as_us_f64() - 41.22).abs() < 1e-9);
    }
}
