//! `pcomm-simmpi` — a simulated MPI runtime over the `pcomm` discrete-event
//! simulator.
//!
//! This crate reproduces, in simulation, the communication machinery that
//! the paper benchmarks on MeluXina:
//!
//! * tag-matched point-to-point with persistent requests ([`p2p`]),
//!   including UCX-like short / eager-bcopy / rendezvous-zcopy protocol
//!   switching;
//! * one-sided windows with active and passive synchronization ([`rma`]);
//! * MPI-4 partitioned communication ([`part`]) in both the legacy
//!   active-message single-message path and the paper's improved
//!   tag-matched multi-message path with gcd message-count negotiation,
//!   message aggregation (`MPIR_CVAR_PART_AGGR_SIZE` analogue) and
//!   round-robin partition→VCI mapping;
//! * the eight pipelined-communication strategies of the paper's
//!   Tables 1–2 ([`strategies`]) and the Fig. 3 benchmark template
//!   ([`scenario`]).
//!
//! Simulated MPI ranks are async tasks; OpenMP threads within a rank are
//! nested tasks. All timing comes from [`pcomm_netmodel::MachineConfig`].

#![warn(missing_docs)]

mod comm;
pub mod explore;
pub mod p2p;
pub mod part;
pub mod rma;
pub mod scenario;
pub mod strategies;
mod tag;
mod world;

pub use comm::Comm;
// Re-exported so sim users consume the unified trace schema without a
// direct `pcomm-trace` dependency.
pub use pcomm_trace::{Event, EventKind};
// Re-exported so exploration users consume the verification verdicts
// without a direct `pcomm-verify` dependency.
pub use pcomm_verify::VerifyReport;
pub use tag::{Delivered, MatchEngine};
pub use world::World;

/// Internal tag used for clear-to-send control messages.
pub(crate) const TAG_CTS: i64 = -1;
/// Internal tag used for active-target "post" notifications.
pub(crate) const TAG_POST: i64 = -2;
/// Internal tag used for active-target "complete" notifications.
pub(crate) const TAG_COMPLETE: i64 = -3;
