//! MPI-4 partitioned communication (paper §3).
//!
//! Two implementations are provided, mirroring MPICH before and after the
//! paper's improvements:
//!
//! * [`PartPath::LegacyAm`] — the original active-message path: one atomic
//!   counter set to `N_part + 1`; a CTS from the receiver is required every
//!   iteration; once all partitions are ready *and* the CTS arrived, the
//!   whole buffer is sent as a single AM message, paying copy overhead at
//!   both ends and forfeiting the early-bird effect (§3.1).
//! * [`PartPath::Improved`] — the paper's contribution (§3.2): the
//!   receiver decides a message count `gcd(N_send, N_recv)`, aggregates
//!   consecutive messages under `MPIR_CVAR_PART_AGGR_SIZE`
//!   ([`PartOptions::aggr_size`]), and each message is sent over the
//!   tag-matching path as soon as its last contributing partition is
//!   readied — by the readying thread itself (early-bird), on a VCI chosen
//!   round-robin by message index (§3.2.2).
//!
//! If more partitioned requests are created towards one receiver than the
//! reserved tag space allows, the implementation falls back to the AM path
//! (§3.2.1); see [`MAX_PART_REQUESTS_PER_PEER`].

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use pcomm_simcore::sync::Signal;
use pcomm_trace::{EventKind, FaultKind};

use crate::comm::Comm;
use crate::p2p::{Msg, RecvRequest, SendRequest};
use crate::tag::Posted;
use crate::world::World;
use crate::TAG_CTS;

/// Internal tag for the legacy path's single AM data message.
const TAG_AM_DATA: i64 = -4;

/// Reserved tag space: partitioned requests per (sender, receiver) pair
/// beyond this fall back to the AM path (paper §3.2.1).
pub const MAX_PART_REQUESTS_PER_PEER: usize = 64;

/// Which implementation path a partitioned request uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartPath {
    /// Original MPICH single-message active-message path.
    LegacyAm,
    /// Improved multi-message tag-matched path (this paper).
    Improved,
}

/// How internal messages are attributed to VCIs.
#[derive(Debug, Clone, Default)]
pub enum VciMapping {
    /// The paper's default: message index modulo the VCI count — the
    /// "round-robin attribution of threads to partitions" assumption that
    /// §3.2.2 calls inflexible and likely to break for θ > 1.
    #[default]
    RoundRobinByMessage,
    /// MPIX_Stream-style thread hint (the paper's future-work fix, §5):
    /// `hint[p]` is the thread that owns partition `p`; a message is sent
    /// on its owning thread's VCI, guaranteeing conflict-free access for
    /// any user partition→thread assignment.
    ThreadHint(std::rc::Rc<Vec<usize>>),
}

/// User-controllable options for a partitioned request.
#[derive(Debug, Clone)]
pub struct PartOptions {
    /// Upper bound in bytes for message aggregation
    /// (`MPIR_CVAR_PART_AGGR_SIZE`); `None` disables aggregation.
    pub aggr_size: Option<usize>,
    /// Implementation path.
    pub path: PartPath,
    /// Message→VCI attribution (improved path only).
    pub vci_mapping: VciMapping,
    /// Ablation switch: defer all sends to `wait()` instead of issuing
    /// them from `pready` (disables the early-bird effect).
    pub defer_sends: bool,
    /// Model the first-iteration clear-to-send the receiver-decided
    /// protocol requires (paper §3.2.1; the paper's future work removes
    /// it). On by default, as in the paper's implementation.
    pub first_iteration_cts: bool,
}

impl Default for PartOptions {
    fn default() -> Self {
        PartOptions {
            aggr_size: None,
            path: PartPath::Improved,
            vci_mapping: VciMapping::default(),
            defer_sends: false,
            first_iteration_cts: true,
        }
    }
}

/// One internal message of the improved path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSpec {
    /// First sender partition contributing to this message.
    pub first_spart: usize,
    /// Number of sender partitions contributing.
    pub n_sparts: usize,
    /// First receiver partition covered.
    pub first_rpart: usize,
    /// Number of receiver partitions covered.
    pub n_rparts: usize,
    /// Message payload in bytes.
    pub bytes: usize,
}

/// The negotiated partition→message mapping.
///
/// Carries dense partition→message index tables (mirroring the real
/// runtime's layout), so per-`pready`/`parrived` lookups are O(1) instead
/// of a scan over messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgLayout {
    /// Messages in buffer order.
    pub msgs: Vec<MsgSpec>,
    /// `spart_msg[p]` = index of the message sender partition `p` feeds.
    spart_msg: Vec<u32>,
    /// `rpart_msg[p]` = index of the message covering receiver partition `p`.
    rpart_msg: Vec<u32>,
}

impl MsgLayout {
    fn from_msgs(msgs: Vec<MsgSpec>) -> MsgLayout {
        let n_sparts: usize = msgs.iter().map(|m| m.n_sparts).sum();
        let n_rparts: usize = msgs.iter().map(|m| m.n_rparts).sum();
        let mut spart_msg = vec![0u32; n_sparts];
        let mut rpart_msg = vec![0u32; n_rparts];
        for (i, m) in msgs.iter().enumerate() {
            for s in &mut spart_msg[m.first_spart..m.first_spart + m.n_sparts] {
                *s = i as u32;
            }
            for r in &mut rpart_msg[m.first_rpart..m.first_rpart + m.n_rparts] {
                *r = i as u32;
            }
        }
        MsgLayout {
            msgs,
            spart_msg,
            rpart_msg,
        }
    }

    /// Index of the message a *sender* partition contributes to (O(1)).
    pub fn msg_of_spart(&self, p: usize) -> usize {
        self.spart_msg
            .get(p)
            .copied()
            .expect("sender partition out of range") as usize
    }

    /// Index of the message covering a *receiver* partition (O(1)).
    pub fn msg_of_rpart(&self, p: usize) -> usize {
        self.rpart_msg
            .get(p)
            .copied()
            .expect("receiver partition out of range") as usize
    }

    /// Number of messages.
    pub fn n_msgs(&self) -> usize {
        self.msgs.len()
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Receiver-side layout decision (paper §3.2.1): the base message count is
/// `gcd(N_send, N_recv)` — guaranteeing every partition contributes to a
/// single message — then consecutive base messages are aggregated while
/// their combined size stays within `aggr_size`.
pub fn negotiate_layout(
    n_send: usize,
    n_recv: usize,
    send_part_bytes: usize,
    aggr_size: Option<usize>,
) -> MsgLayout {
    assert!(n_send >= 1 && n_recv >= 1, "partition counts must be >= 1");
    let g = gcd(n_send, n_recv);
    let sparts_per_msg = n_send / g;
    let rparts_per_msg = n_recv / g;
    let bytes_per_msg = sparts_per_msg * send_part_bytes;
    let mut msgs: Vec<MsgSpec> = Vec::with_capacity(g);
    for i in 0..g {
        let spec = MsgSpec {
            first_spart: i * sparts_per_msg,
            n_sparts: sparts_per_msg,
            first_rpart: i * rparts_per_msg,
            n_rparts: rparts_per_msg,
            bytes: bytes_per_msg,
        };
        match (aggr_size, msgs.last_mut()) {
            (Some(limit), Some(prev)) if prev.bytes + spec.bytes <= limit => {
                prev.n_sparts += spec.n_sparts;
                prev.n_rparts += spec.n_rparts;
                prev.bytes += spec.bytes;
            }
            _ => msgs.push(spec),
        }
    }
    MsgLayout::from_msgs(msgs)
}

struct PsendShared {
    world: World,
    /// Internal communicator on the partitioned context; `vci_idx` is
    /// re-chosen per message for the round-robin VCI mapping.
    comm: Comm,
    /// Interned verify request id (see `World::verify_req_id`).
    vreq: u16,
    dst: usize,
    n_parts: usize,
    part_bytes: usize,
    layout: MsgLayout,
    path: PartPath,
    vci_mapping: VciMapping,
    defer_sends: bool,
    first_iteration_cts: bool,
    /// True until the first start() consumed the initial CTS.
    first_iteration: Cell<bool>,
    /// Improved: per-message remaining-partition counters.
    counters: Vec<Cell<i64>>,
    /// Improved: fired when message *m* has been injected.
    issued: RefCell<Vec<Signal>>,
    sent_reqs: RefCell<Vec<Option<SendRequest>>>,
    /// Legacy: single counter (`N_part + 1` per §3.1).
    am_counter: Cell<i64>,
    /// Legacy: fired when the single AM message has been injected.
    am_issued: RefCell<Signal>,
    /// Threads concurrently inside `pready` (atomic-contention model).
    /// Scoped per request, not per message: a request's counters are
    /// allocated contiguously (as in MPICH), so concurrent updates to any
    /// of them contend via false sharing.
    concurrent_preadys: Cell<usize>,
    started: Cell<bool>,
    /// Iterations started so far; `iters - 1` is the current (or most
    /// recently completed) iteration, the `iter` of the verify events.
    iters: Cell<u64>,
    /// Chaos `pready` jitter rounds consumed (one per permuted
    /// `pready_range`/`pready_list` call); mirrors the real runtime.
    jitter_round: Cell<u64>,
}

/// Sender-side partitioned request (`MPI_Psend_init`). Cheap to clone;
/// clones are handed to the worker threads that call
/// [`PsendRequest::pready`].
#[derive(Clone)]
pub struct PsendRequest {
    inner: Rc<PsendShared>,
}

/// Create a sender-side partitioned request.
///
/// `n_recv_parts` is the receiver's partition count (agreed during the
/// init handshake); the layout is derived deterministically on both sides.
pub fn psend_init(
    comm: &Comm,
    dst: usize,
    tag: i64,
    n_parts: usize,
    part_bytes: usize,
    n_recv_parts: usize,
    opts: PartOptions,
) -> PsendRequest {
    assert!(n_parts >= 1, "need at least one partition");
    if let VciMapping::ThreadHint(hint) = &opts.vci_mapping {
        assert_eq!(
            hint.len(),
            n_parts,
            "thread hint must cover every partition"
        );
    }
    let world = comm.world().clone();
    let path = effective_path(&world, comm.rank(), dst, opts.path);
    let layout = negotiate_layout(n_parts, n_recv_parts, part_bytes, opts.aggr_size);
    world.trace(comm.rank(), || EventKind::AggrLayout {
        base_msgs: gcd(n_parts, n_recv_parts) as u16,
        msgs: layout.n_msgs() as u16,
        bytes_per_msg: layout.msgs[0].bytes as u64,
    });
    let part_comm = Comm::new(
        world.clone(),
        comm.rank(),
        comm.size(),
        comm.part_ctx(tag),
        comm.vci_idx(),
    );
    let n_msgs = layout.n_msgs();
    // Keyed by the sender's rank so pairs sharing a (ctx, tag) — e.g. a
    // ring whose links all use one tag — stay distinct for the analyzer.
    let vreq = world.verify_req_id(part_comm.ctx(), comm.rank() as u16);
    emit_verify_init(
        &world,
        &part_comm,
        vreq,
        true,
        path,
        n_parts,
        n_recv_parts,
        &layout,
        n_parts * part_bytes,
    );
    PsendRequest {
        inner: Rc::new(PsendShared {
            world,
            comm: part_comm,
            vreq,
            dst,
            n_parts,
            part_bytes,
            layout,
            path,
            vci_mapping: opts.vci_mapping.clone(),
            defer_sends: opts.defer_sends,
            first_iteration_cts: opts.first_iteration_cts,
            first_iteration: Cell::new(true),
            counters: (0..n_msgs).map(|_| Cell::new(0)).collect(),
            issued: RefCell::new(vec![Signal::new(); n_msgs]),
            sent_reqs: RefCell::new((0..n_msgs).map(|_| None).collect()),
            am_counter: Cell::new(0),
            am_issued: RefCell::new(Signal::new()),
            concurrent_preadys: Cell::new(0),
            started: Cell::new(false),
            iters: Cell::new(0),
            jitter_round: Cell::new(0),
        }),
    }
}

/// Emit the analysis-grade init events for one side of a partitioned
/// request: shape plus one layout event per wire message. Mirrors the
/// real runtime's emission exactly, so `pcomm-verify` consumes sim and
/// real traces identically. No-op unless [`World::enable_verify`] ran.
#[allow(clippy::too_many_arguments)]
fn emit_verify_init(
    world: &World,
    comm: &Comm,
    req: u16,
    sender: bool,
    path: PartPath,
    n_parts: usize,
    n_peer_parts: usize,
    layout: &MsgLayout,
    total_bytes: usize,
) {
    let rank = comm.rank();
    let legacy = path == PartPath::LegacyAm;
    let n_msgs = if legacy { 1 } else { layout.n_msgs() };
    world.emit_verify(rank, || EventKind::VerifyPartInit {
        req,
        sender,
        parts: n_parts as u32,
        msgs: n_msgs as u32,
    });
    if legacy {
        // One message covering the whole buffer, sent as a single AM.
        let (n_sparts, n_rparts) = if sender {
            (n_parts, n_peer_parts)
        } else {
            (n_peer_parts, n_parts)
        };
        world.emit_verify(rank, || EventKind::VerifyLayoutMsg {
            req,
            msg: 0,
            first_spart: 0,
            n_sparts: n_sparts as u16,
            first_rpart: 0,
            n_rparts: n_rparts as u16,
            bytes: total_bytes as u64,
        });
    } else {
        for (m, spec) in layout.msgs.iter().enumerate() {
            world.emit_verify(rank, || EventKind::VerifyLayoutMsg {
                req,
                msg: m as u16,
                first_spart: spec.first_spart as u16,
                n_sparts: spec.n_sparts as u16,
                first_rpart: spec.first_rpart as u16,
                n_rparts: spec.n_rparts as u16,
                bytes: spec.bytes as u64,
            });
        }
    }
}

/// Track partitioned-request pressure per peer and decide the actual path
/// (tag-space exhaustion forces the AM path, §3.2.1).
fn effective_path(world: &World, src: usize, dst: usize, requested: PartPath) -> PartPath {
    let created = world.count_part_request(src, dst);
    if requested == PartPath::Improved && created >= MAX_PART_REQUESTS_PER_PEER {
        PartPath::LegacyAm
    } else {
        requested
    }
}

impl PsendRequest {
    /// Number of internal messages the layout produced.
    pub fn n_msgs(&self) -> usize {
        self.inner.layout.n_msgs()
    }

    /// The negotiated layout (inspection/testing).
    pub fn layout(&self) -> &MsgLayout {
        &self.inner.layout
    }

    /// The path actually in use (may differ from the requested one if the
    /// reserved tag space was exhausted).
    pub fn path(&self) -> PartPath {
        self.inner.path
    }

    /// Current iteration index for verify provenance (0 before the
    /// first `start`). The simulated thread id is the rank: each rank's
    /// "threads" are coroutines of one deterministic schedule.
    fn cur_iter(&self) -> u32 {
        self.inner.iters.get().saturating_sub(1) as u32
    }

    /// `MPI_Start`: reset counters and arm the iteration. Charges the
    /// per-message request-setup cost serially (master thread).
    pub async fn start(&self) {
        let s = &self.inner;
        assert!(!s.started.get(), "partitioned send started twice");
        s.started.set(true);
        let iter = s.iters.get();
        s.iters.set(iter + 1);
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyStart {
                req: s.vreq,
                sender: true,
                iter: iter as u32,
                tid: s.comm.rank() as u16,
            });
        let cfg = s.world.config().clone();
        match s.path {
            PartPath::Improved => {
                if s.first_iteration.replace(false) && s.first_iteration_cts {
                    // Receiver-decided message count (§3.2.1): the first
                    // iteration cannot send before the receiver's CTS
                    // announced the agreed count.
                    let t0 = s.world.trace_now_ns();
                    s.comm.recv(Some(s.dst), Some(TAG_CTS)).await;
                    s.world
                        .trace_span(t0, s.comm.rank(), |wait_ns| EventKind::CtsWait {
                            peer: s.dst as u16,
                            wait_ns,
                        });
                }
                for (m, spec) in s.layout.msgs.iter().enumerate() {
                    s.world
                        .sim()
                        .sleep(s.world.jitter(cfg.o_request_setup))
                        .await;
                    s.counters[m].set(spec.n_sparts as i64);
                }
                let n = s.layout.n_msgs();
                *s.issued.borrow_mut() = vec![Signal::new(); n];
                *s.sent_reqs.borrow_mut() = (0..n).map(|_| None).collect();
            }
            PartPath::LegacyAm => {
                s.world
                    .sim()
                    .sleep(s.world.jitter(cfg.o_request_setup))
                    .await;
                // N_part + 1: the extra decrement comes from the CTS.
                s.am_counter.set(s.n_parts as i64 + 1);
                *s.am_issued.borrow_mut() = Signal::new();
                // Watch for the receiver's CTS of this iteration.
                let req = s.comm.irecv(Some(s.dst), Some(TAG_CTS)).await;
                let this = self.clone();
                let t0 = s.world.trace_now_ns();
                s.world.sim().spawn(async move {
                    req.wait().await;
                    let s = &this.inner;
                    s.world
                        .trace_span(t0, s.comm.rank(), |wait_ns| EventKind::CtsWait {
                            peer: s.dst as u16,
                            wait_ns,
                        });
                    this.am_decrement().await;
                });
            }
        }
    }

    /// `MPI_Pready(p)`: mark partition `p` ready. Called from worker
    /// threads; charges the (possibly contended) atomic update and, if
    /// this was the last partition of a message, injects that message from
    /// the calling thread — the early-bird effect.
    pub async fn pready(&self, p: usize) {
        let s = &self.inner;
        assert!(s.started.get(), "pready before start");
        assert!(p < s.n_parts, "partition index out of range");
        // Atomic counter update under contention.
        let conc = s.concurrent_preadys.get();
        s.concurrent_preadys.set(conc + 1);
        let cost = s.world.jitter(s.world.config().atomic_cost(conc));
        s.world.sim().sleep(cost).await;
        s.concurrent_preadys.set(s.concurrent_preadys.get() - 1);
        s.world
            .trace(s.comm.rank(), || EventKind::Pready { part: p as u64 });
        // Before the state gate on purpose: a double pready leaves two
        // VerifyPready events for the lint pass to find.
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyPready {
                req: s.vreq,
                part: p as u32,
                iter: self.cur_iter(),
                tid: s.comm.rank() as u16,
            });
        match s.path {
            PartPath::Improved => {
                let m = s.layout.msg_of_spart(p);
                let left = s.counters[m].get() - 1;
                s.counters[m].set(left);
                assert!(left >= 0, "partition {p} readied twice");
                if left == 0 && !s.defer_sends {
                    // Early-bird: this pready injects the message itself;
                    // the gap is pready-to-injection latency.
                    let pready_ns = s.world.trace_now_ns();
                    self.issue_message(m, pready_ns).await;
                }
            }
            PartPath::LegacyAm => self.am_decrement().await,
        }
    }

    /// `MPI_Pready_range`: mark partitions `lo..=hi` ready, in order
    /// (permuted under chaos `pready` jitter).
    pub async fn pready_range(&self, lo: usize, hi: usize) {
        assert!(lo <= hi, "empty or inverted range");
        let parts: Vec<usize> = (lo..=hi).collect();
        self.pready_permuted(&parts).await;
    }

    /// `MPI_Pready_list`: mark the listed partitions ready, in order
    /// (permuted under chaos `pready` jitter).
    pub async fn pready_list(&self, parts: &[usize]) {
        self.pready_permuted(parts).await;
    }

    /// Chaos mirror of the real runtime's `pready` jitter: when the
    /// world's fault plan asks for it, issue the batch in a seeded
    /// permuted order (same `jitter_order` stream as `pcomm-core`, so
    /// sim and real runs of one seed scramble identically).
    async fn pready_permuted(&self, parts: &[usize]) {
        let s = &self.inner;
        if parts.len() > 1 {
            if let Some(plan) = s.world.fault_plan() {
                if plan.jitter_pready {
                    let round = s.jitter_round.get();
                    s.jitter_round.set(round + 1);
                    let order = plan.jitter_order(s.comm.rank(), round, parts.len());
                    s.world.trace(s.comm.rank(), || EventKind::FaultInjected {
                        fault: FaultKind::PreadyJitter,
                        dst: s.dst as u16,
                        tag: 0,
                        arg: round,
                    });
                    for &i in &order {
                        self.pready(parts[i]).await;
                    }
                    return;
                }
            }
        }
        for &p in parts {
            self.pready(p).await;
        }
    }

    /// Improved path: inject message `m` on its round-robin VCI.
    /// `pready_ns` is set when the completing `pready` injects the message
    /// itself (the early-bird path); deferred sends pass `None`.
    async fn issue_message(&self, m: usize, pready_ns: Option<u64>) {
        let s = &self.inner;
        let spec = s.layout.msgs[m];
        // The injection is the transfer's read of the send partitions
        // this message covers.
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyMsgSend {
                req: s.vreq,
                msg: m as u16,
                iter: self.cur_iter(),
                tid: s.comm.rank() as u16,
            });
        let vci_idx = match &s.vci_mapping {
            // Round-robin message → VCI attribution (§3.2.2).
            VciMapping::RoundRobinByMessage => m % s.world.n_vcis(),
            // Stream hint: the owning thread's VCI.
            VciMapping::ThreadHint(hint) => hint[spec.first_spart] % s.world.n_vcis(),
        };
        let comm = s.comm.with_vci(vci_idx);
        let req = comm
            .isend(s.dst, m as i64, Msg::synthetic(spec.bytes))
            .await;
        if let Some(t0) = pready_ns {
            let gap_ns = s
                .world
                .trace_now_ns()
                .map_or(0, |now| now.saturating_sub(t0));
            s.world.trace(s.comm.rank(), || EventKind::EarlyBird {
                msg: m as u16,
                shard: vci_idx as u16,
                bytes: spec.bytes as u64,
                gap_ns,
            });
        }
        s.sent_reqs.borrow_mut()[m] = Some(req);
        s.issued.borrow()[m].set();
    }

    /// Legacy path: decrement the single counter; on zero, send the whole
    /// buffer as one AM message (copy at both ends).
    async fn am_decrement(&self) {
        let s = &self.inner;
        let left = s.am_counter.get() - 1;
        s.am_counter.set(left);
        if left == 0 {
            let total = s.n_parts * s.part_bytes;
            let cfg = s.world.config().clone();
            {
                let vci = s.world.vci(s.comm.rank(), s.comm.vci_idx());
                let guard = vci.acquire().await;
                let penalty = cfg.contention_penalty(guard.waiters_behind());
                let occupancy = s.world.jitter(cfg.o_am + cfg.copy_time(total)) + penalty;
                s.world.sim().sleep(occupancy).await;
            }
            s.world
                .emit_verify(s.comm.rank(), || EventKind::VerifyMsgSend {
                    req: s.vreq,
                    msg: 0,
                    iter: self.cur_iter(),
                    tid: s.comm.rank() as u16,
                });
            s.world.transmit(
                s.comm.rank(),
                s.dst,
                crate::tag::Delivered {
                    src: s.comm.rank(),
                    ctx: s.comm.ctx(),
                    tag: TAG_AM_DATA,
                    bytes: total,
                    data: None,
                    meta: 0,
                    rendezvous: None,
                },
            );
            s.am_issued.borrow().set();
        }
    }

    /// `MPI_Wait`: complete the iteration (master thread). Blocks until
    /// every message has been injected and locally completed.
    pub async fn wait(&self) {
        let s = &self.inner;
        assert!(s.started.get(), "wait before start");
        let t0 = s.world.trace_now_ns();
        let n_msgs;
        match s.path {
            PartPath::Improved => {
                n_msgs = s.layout.n_msgs();
                if s.defer_sends {
                    for m in 0..s.layout.n_msgs() {
                        assert_eq!(
                            s.counters[m].get(),
                            0,
                            "deferred wait requires all partitions ready"
                        );
                        self.issue_message(m, None).await;
                    }
                }
                for m in 0..s.layout.n_msgs() {
                    let sig = s.issued.borrow()[m].clone();
                    sig.wait().await;
                    let req = s.sent_reqs.borrow_mut()[m]
                        .take()
                        .expect("issued message must have a request");
                    req.wait().await;
                }
            }
            PartPath::LegacyAm => {
                n_msgs = 1;
                let sig = s.am_issued.borrow().clone();
                sig.wait().await;
                let cost = s.world.jitter(s.world.config().o_request_complete);
                s.world.sim().sleep(cost).await;
            }
        }
        s.world
            .trace_span(t0, s.comm.rank(), |wait_ns| EventKind::PartWait {
                msgs: n_msgs as u16,
                wait_ns,
            });
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyWaitDone {
                req: s.vreq,
                sender: true,
                iter: self.cur_iter(),
                tid: s.comm.rank() as u16,
            });
        s.started.set(false);
    }
}

struct PrecvShared {
    world: World,
    comm: Comm,
    /// Interned verify request id, agreed with the sender side.
    vreq: u16,
    src: usize,
    n_parts: usize,
    total_bytes: usize,
    layout: MsgLayout,
    path: PartPath,
    first_iteration_cts: bool,
    first_iteration: Cell<bool>,
    reqs: RefCell<Vec<Option<RecvRequest>>>,
    arrived: RefCell<Vec<Signal>>,
    /// Legacy: completion of the single AM message.
    am_ready: RefCell<Signal>,
    started: Cell<bool>,
    /// Iterations started so far (verify provenance, as on the send side).
    iters: Cell<u64>,
}

/// Receiver-side partitioned request (`MPI_Precv_init`).
#[derive(Clone)]
pub struct PrecvRequest {
    inner: Rc<PrecvShared>,
}

/// Create a receiver-side partitioned request. `n_send_parts` /
/// `send_part_bytes` describe the sender side (agreed at init).
pub fn precv_init(
    comm: &Comm,
    src: usize,
    tag: i64,
    n_parts: usize,
    n_send_parts: usize,
    send_part_bytes: usize,
    opts: PartOptions,
) -> PrecvRequest {
    assert!(n_parts >= 1, "need at least one partition");
    let world = comm.world().clone();
    let path = effective_path(&world, src, comm.rank(), opts.path);
    let layout = negotiate_layout(n_send_parts, n_parts, send_part_bytes, opts.aggr_size);
    let part_comm = Comm::new(
        world.clone(),
        comm.rank(),
        comm.size(),
        comm.part_ctx(tag),
        comm.vci_idx(),
    );
    let n_msgs = layout.n_msgs();
    // Same id the sender interned: both sides key by the sender's rank.
    let vreq = world.verify_req_id(part_comm.ctx(), src as u16);
    emit_verify_init(
        &world,
        &part_comm,
        vreq,
        false,
        path,
        n_parts,
        n_send_parts,
        &layout,
        n_send_parts * send_part_bytes,
    );
    PrecvRequest {
        inner: Rc::new(PrecvShared {
            world,
            comm: part_comm,
            vreq,
            src,
            n_parts,
            total_bytes: n_send_parts * send_part_bytes,
            layout,
            path,
            first_iteration_cts: opts.first_iteration_cts,
            first_iteration: Cell::new(true),
            reqs: RefCell::new((0..n_msgs).map(|_| None).collect()),
            arrived: RefCell::new(vec![Signal::new(); n_msgs]),
            am_ready: RefCell::new(Signal::new()),
            started: Cell::new(false),
            iters: Cell::new(0),
        }),
    }
}

impl PrecvRequest {
    /// Number of internal messages.
    pub fn n_msgs(&self) -> usize {
        self.inner.layout.n_msgs()
    }

    /// The path actually in use.
    pub fn path(&self) -> PartPath {
        self.inner.path
    }

    /// Current iteration index for verify provenance (0 before the
    /// first `start`).
    fn cur_iter(&self) -> u32 {
        self.inner.iters.get().saturating_sub(1) as u32
    }

    /// Spawn an observer coroutine that emits [`EventKind::VerifyMsgRecv`]
    /// the moment `sig` fires — the virtual instant the wire message's
    /// payload lands in the recv buffer. Observers add no virtual time,
    /// so verification never perturbs the simulated schedule.
    fn watch_arrival(&self, m: usize, sig: Signal) {
        let s = &self.inner;
        if !s.world.verify_on() {
            return;
        }
        let world = s.world.clone();
        let rank = s.comm.rank();
        let req = s.vreq;
        s.world.sim().spawn(async move {
            sig.wait().await;
            // The simulated transport always lands payloads through a
            // staging copy, never a peek into the sender's live buffer —
            // eager semantics as far as the sender's HB edges go.
            world.emit_verify(rank, || EventKind::VerifyMsgRecv {
                req,
                msg: m as u16,
                tid: rank as u16,
                eager: true,
            });
        });
    }

    /// `MPI_Start`: post the internal receives (improved) or send the CTS
    /// and post the AM receive (legacy).
    pub async fn start(&self) {
        let s = &self.inner;
        assert!(!s.started.get(), "partitioned recv started twice");
        s.started.set(true);
        let iter = s.iters.get();
        s.iters.set(iter + 1);
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyStart {
                req: s.vreq,
                sender: false,
                iter: iter as u32,
                tid: s.comm.rank() as u16,
            });
        match s.path {
            PartPath::Improved => {
                if s.first_iteration.replace(false) && s.first_iteration_cts {
                    // Announce the receiver-decided message count (§3.2.1).
                    s.comm
                        .send(s.src, TAG_CTS, Msg::ctrl(s.layout.n_msgs() as u64))
                        .await;
                }
                let n = s.layout.n_msgs();
                *s.arrived.borrow_mut() = vec![Signal::new(); n];
                for m in 0..n {
                    let req = s.comm.irecv(Some(s.src), Some(m as i64)).await;
                    self.watch_arrival(m, req.ready_signal());
                    // Bridge the request's readiness to the arrived signal
                    // so Parrived can poll without consuming the request.
                    s.reqs.borrow_mut()[m] = Some(req);
                }
            }
            PartPath::LegacyAm => {
                // CTS to the sender: mandatory every iteration (§3.1).
                let cost = s.world.jitter(s.world.config().o_ctrl);
                s.world.sim().sleep(cost).await;
                s.world.transmit_ctrl(
                    s.comm.rank(),
                    s.src,
                    crate::tag::Delivered {
                        src: s.comm.rank(),
                        ctx: s.comm.ctx(),
                        tag: TAG_CTS,
                        bytes: 0,
                        data: None,
                        meta: 0,
                        rendezvous: None,
                    },
                );
                // Post the receive for the single AM data message.
                let ready = Signal::new();
                let posted = Posted {
                    ctx: s.comm.ctx(),
                    src: Some(s.src),
                    tag: Some(TAG_AM_DATA),
                    slot: Rc::new(RefCell::new(None)),
                    ready: ready.clone(),
                };
                let engine = s.world.engine(s.comm.rank());
                if let Some(matched) = engine.post(posted) {
                    s.world.finalize_match(s.comm.rank(), matched);
                }
                self.watch_arrival(0, ready.clone());
                *s.am_ready.borrow_mut() = ready;
            }
        }
    }

    /// `MPI_Parrived(p)`: has receiver partition `p` arrived?
    ///
    /// In the improved path this tests the internal message covering the
    /// partition; in the legacy path the whole buffer arrives at once.
    /// An *inactive* request — never started, or between iterations —
    /// reports `true`, as MPI defines for completed operations (and as
    /// the real runtime does).
    pub fn parrived(&self, p: usize) -> bool {
        let s = &self.inner;
        assert!(p < s.n_parts, "partition index out of range");
        let arrived = match s.path {
            PartPath::Improved => {
                let m = s.layout.msg_of_rpart(p);
                // An empty request slot means the request is inactive:
                // either wait() consumed it completing the iteration, or
                // start() never ran. Both answer true.
                s.reqs.borrow()[m]
                    .as_ref()
                    .map(|r| r.test())
                    .unwrap_or(!s.started.get())
            }
            PartPath::LegacyAm => !s.started.get() || s.am_ready.borrow().is_set(),
        };
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyParrived {
                req: s.vreq,
                part: p as u32,
                iter: self.cur_iter(),
                tid: s.comm.rank() as u16,
                arrived,
            });
        arrived
    }

    /// Wait until **some** internal message has arrived and return its
    /// index (an `MPI_Waitany` over the partition groups — lets a consumer
    /// start processing the earliest data without polling `parrived`).
    pub async fn wait_any_msg(&self) -> usize {
        let s = &self.inner;
        assert!(s.started.get(), "wait_any_msg outside an active iteration");
        match s.path {
            PartPath::Improved => {
                let signals: Vec<Signal> = s
                    .reqs
                    .borrow()
                    .iter()
                    .map(|r| {
                        r.as_ref()
                            .expect("started recv has requests")
                            .ready_signal()
                    })
                    .collect();
                pcomm_simcore::sync::wait_any(signals).await
            }
            PartPath::LegacyAm => {
                let sig = s.am_ready.borrow().clone();
                sig.wait().await;
                0
            }
        }
    }

    /// `MPI_Wait`: complete the iteration; charges per-message completion
    /// (improved) or the AM copy (legacy).
    pub async fn wait(&self) {
        let s = &self.inner;
        assert!(s.started.get(), "wait before start");
        let t0 = s.world.trace_now_ns();
        let n_msgs;
        match s.path {
            PartPath::Improved => {
                n_msgs = s.layout.n_msgs();
                for m in 0..s.layout.n_msgs() {
                    let req = s.reqs.borrow_mut()[m]
                        .take()
                        .expect("started recv must have requests");
                    req.wait().await;
                }
            }
            PartPath::LegacyAm => {
                n_msgs = 1;
                let ready = s.am_ready.borrow().clone();
                ready.wait().await;
                let cfg = s.world.config().clone();
                let cost = s.world.jitter(cfg.o_am + cfg.copy_time(s.total_bytes));
                s.world.sim().sleep(cost).await;
            }
        }
        s.world
            .trace_span(t0, s.comm.rank(), |wait_ns| EventKind::PartWait {
                msgs: n_msgs as u16,
                wait_ns,
            });
        s.world
            .emit_verify(s.comm.rank(), || EventKind::VerifyWaitDone {
                req: s.vreq,
                sender: false,
                iter: self.cur_iter(),
                tid: s.comm.rank() as u16,
            });
        s.started.set(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_netmodel::MachineConfig;
    use pcomm_simcore::{Dur, Sim};

    fn setup(n_vcis: usize) -> (Sim, World) {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, n_vcis, 1);
        (sim, world)
    }

    // ---- layout negotiation -------------------------------------------

    #[test]
    fn layout_equal_counts_no_aggregation() {
        let l = negotiate_layout(8, 8, 1024, None);
        assert_eq!(l.n_msgs(), 8);
        for (i, m) in l.msgs.iter().enumerate() {
            assert_eq!(m.n_sparts, 1);
            assert_eq!(m.n_rparts, 1);
            assert_eq!(m.bytes, 1024);
            assert_eq!(m.first_spart, i);
        }
    }

    #[test]
    fn layout_gcd_mismatched_counts() {
        // gcd(12, 8) = 4 messages; 3 send parts / 2 recv parts each.
        let l = negotiate_layout(12, 8, 100, None);
        assert_eq!(l.n_msgs(), 4);
        for m in &l.msgs {
            assert_eq!(m.n_sparts, 3);
            assert_eq!(m.n_rparts, 2);
            assert_eq!(m.bytes, 300);
        }
    }

    #[test]
    fn layout_aggregation_respects_bound() {
        // 16 partitions of 512 B, aggregate up to 2048 B → 4 msgs of 4.
        let l = negotiate_layout(16, 16, 512, Some(2048));
        assert_eq!(l.n_msgs(), 4);
        for m in &l.msgs {
            assert_eq!(m.bytes, 2048);
            assert_eq!(m.n_sparts, 4);
        }
    }

    #[test]
    fn layout_aggregation_is_upper_bound_not_exact() {
        // 5 partitions of 900 B, limit 2000 → groups of 2,2,1.
        let l = negotiate_layout(5, 5, 900, Some(2000));
        let sizes: Vec<usize> = l.msgs.iter().map(|m| m.bytes).collect();
        assert_eq!(sizes, vec![1800, 1800, 900]);
    }

    #[test]
    fn layout_oversized_partition_stays_alone() {
        let l = negotiate_layout(4, 4, 4096, Some(1024));
        assert_eq!(l.n_msgs(), 4);
    }

    #[test]
    fn layout_partition_mapping_is_total() {
        let l = negotiate_layout(24, 16, 64, Some(512));
        for p in 0..24 {
            let m = l.msg_of_spart(p);
            assert!(m < l.n_msgs(), "partition {p} maps to missing msg {m}");
        }
        for p in 0..16 {
            let _ = l.msg_of_rpart(p);
        }
    }

    // ---- improved path -------------------------------------------------

    fn mk_pair(
        world: &World,
        n_parts: usize,
        part_bytes: usize,
        opts: PartOptions,
    ) -> (PsendRequest, PrecvRequest) {
        let cs = world.comm_world(0);
        let cr = world.comm_world(1);
        let ps = psend_init(&cs, 1, 0, n_parts, part_bytes, n_parts, opts.clone());
        let pr = precv_init(&cr, 0, 0, n_parts, n_parts, part_bytes, opts);
        (ps, pr)
    }

    #[test]
    fn improved_roundtrip_all_partitions() {
        let (sim, world) = setup(1);
        let (ps, pr) = mk_pair(&world, 4, 256, PartOptions::default());
        let done = sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                pr.wait().await;
                (0..4).all(|p| pr.parrived(p))
            }
        });
        sim.spawn(async move {
            ps.start().await;
            for p in 0..4 {
                ps.pready(p).await;
            }
            ps.wait().await;
        });
        sim.run();
        assert!(done.try_take().unwrap());
    }

    #[test]
    fn pready_jitter_permutes_order_and_roundtrip_survives() {
        use pcomm_trace::FaultPlan;
        let (sim, world) = setup(1);
        world.enable_trace();
        world.enable_faults(FaultPlan::seeded(11).jitter(true));
        let (ps, pr) = mk_pair(&world, 16, 64, PartOptions::default());
        let done = sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                pr.wait().await;
                (0..16).all(|p| pr.parrived(p))
            }
        });
        sim.spawn(async move {
            ps.start().await;
            ps.pready_range(0, 15).await;
            ps.wait().await;
        });
        sim.run();
        assert!(done.try_take().unwrap());
        // Exactly one jitter round was traced, and the Pready events do
        // not appear in ascending partition order.
        let events = world.take_trace();
        let jitters = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::FaultInjected {
                        fault: FaultKind::PreadyJitter,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(jitters, 1);
        let order: Vec<u64> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Pready { part } => Some(part),
                _ => None,
            })
            .collect();
        assert_eq!(order.len(), 16);
        assert_ne!(order, (0..16).collect::<Vec<u64>>(), "order must scramble");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn early_bird_message_leaves_before_last_pready() {
        let (sim, world) = setup(1);
        let (ps, pr) = mk_pair(&world, 2, 64, PartOptions::default());
        // Receiver polls Parrived(0) while partition 1 is still delayed.
        let saw_early = sim.spawn({
            let pr = pr.clone();
            let s = sim.clone();
            async move {
                pr.start().await;
                s.sleep(Dur::from_us(100)).await; // partition 0 readied at ~0
                let early = pr.parrived(0) && !pr.parrived(1);
                pr.wait().await;
                early
            }
        });
        sim.spawn({
            let s = sim.clone();
            async move {
                ps.start().await;
                ps.pready(0).await;
                s.sleep(Dur::from_us(500)).await; // delayed last partition
                ps.pready(1).await;
                ps.wait().await;
            }
        });
        sim.run();
        assert!(saw_early.try_take().unwrap(), "early-bird arrival not seen");
    }

    #[test]
    fn aggregated_request_sends_fewer_messages() {
        let (_sim, world) = setup(1);
        let opts = PartOptions {
            aggr_size: Some(4096),
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 32, 512, opts);
        assert_eq!(ps.n_msgs(), 4);
        assert_eq!(pr.n_msgs(), 4);
    }

    #[test]
    fn reuse_across_iterations() {
        let (sim, world) = setup(2);
        let (ps, pr) = mk_pair(&world, 3, 128, PartOptions::default());
        let iters = sim.spawn({
            let pr = pr.clone();
            async move {
                for _ in 0..5 {
                    pr.start().await;
                    pr.wait().await;
                }
                5
            }
        });
        sim.spawn(async move {
            for _ in 0..5 {
                ps.start().await;
                for p in 0..3 {
                    ps.pready(p).await;
                }
                ps.wait().await;
            }
        });
        sim.run();
        assert_eq!(iters.try_take().unwrap(), 5);
    }

    #[test]
    #[should_panic(expected = "readied twice")]
    fn double_pready_detected() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            first_iteration_cts: false, // no receiver task in this test
            ..PartOptions::default()
        };
        let (ps, _pr) = mk_pair(&world, 2, 64, opts);
        sim.block_on(async move {
            ps.start().await;
            ps.pready(0).await;
            ps.pready(0).await;
        });
    }

    #[test]
    #[should_panic(expected = "pready before start")]
    fn pready_requires_start() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            first_iteration_cts: false,
            ..PartOptions::default()
        };
        let (ps, _pr) = mk_pair(&world, 2, 64, opts);
        sim.block_on(async move {
            ps.pready(0).await;
        });
    }

    // ---- legacy AM path -------------------------------------------------

    #[test]
    fn legacy_roundtrip() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            path: PartPath::LegacyAm,
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 4, 1024, opts);
        assert_eq!(ps.path(), PartPath::LegacyAm);
        let done = sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                pr.wait().await;
                pr.parrived(3)
            }
        });
        sim.spawn(async move {
            ps.start().await;
            for p in 0..4 {
                ps.pready(p).await;
            }
            ps.wait().await;
        });
        sim.run();
        assert!(done.try_take().unwrap());
    }

    #[test]
    fn legacy_slower_than_improved_single_partition() {
        // Fig. 4's headline: the AM path pays copies at both ends; the
        // improved path matches plain Pt2Pt.
        // Warm-up iteration first (as the paper does) so the improved
        // path's first-iteration CTS does not skew the steady state.
        fn one_iter(path: PartPath, bytes: usize) -> f64 {
            let (sim, world) = setup(1);
            let opts = PartOptions {
                path,
                ..PartOptions::default()
            };
            let (ps, pr) = mk_pair(&world, 1, bytes, opts);
            let done = sim.spawn({
                let pr = pr.clone();
                async move {
                    pr.start().await;
                    pr.wait().await;
                    let t0 = pr.inner.world.sim().now();
                    pr.start().await;
                    pr.wait().await;
                    pr.inner.world.sim().now().since(t0).as_us_f64()
                }
            });
            sim.spawn(async move {
                for _ in 0..2 {
                    ps.start().await;
                    ps.pready(0).await;
                    ps.wait().await;
                }
            });
            sim.run();
            done.try_take().unwrap()
        }
        for bytes in [512usize, 8192, 1 << 20] {
            let legacy = one_iter(PartPath::LegacyAm, bytes);
            let improved = one_iter(PartPath::Improved, bytes);
            assert!(
                legacy > improved,
                "{bytes}B: legacy {legacy}us <= improved {improved}us"
            );
        }
    }

    #[test]
    fn legacy_waits_for_cts() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            path: PartPath::LegacyAm,
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 1, 64, opts);
        // Receiver starts late → CTS late → AM send cannot leave earlier.
        let recv_done = sim.spawn({
            let pr = pr.clone();
            let s = sim.clone();
            async move {
                s.sleep(Dur::from_us(300)).await;
                pr.start().await;
                pr.wait().await;
                s.now()
            }
        });
        let send_done = sim.spawn({
            let s = sim.clone();
            async move {
                ps.start().await;
                ps.pready(0).await;
                ps.wait().await;
                s.now()
            }
        });
        sim.run();
        let t_send = send_done.try_take().unwrap().as_us_f64();
        let t_recv = recv_done.try_take().unwrap().as_us_f64();
        assert!(t_send > 300.0, "AM send left before CTS: {t_send}");
        assert!(t_recv > t_send);
    }

    #[test]
    fn mismatched_partition_counts_roundtrip() {
        // 12 sender vs 8 receiver partitions → gcd = 4 messages; the
        // receiver-side Parrived granularity follows the receiver count.
        let (sim, world) = setup(1);
        let cs = world.comm_world(0);
        let cr = world.comm_world(1);
        let opts = PartOptions::default();
        let ps = psend_init(&cs, 1, 0, 12, 100, 8, opts.clone());
        let pr = precv_init(&cr, 0, 0, 8, 12, 100, opts);
        assert_eq!(ps.n_msgs(), 4);
        assert_eq!(pr.n_msgs(), 4);
        let done = sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                pr.wait().await;
                (0..8).all(|r| pr.parrived(r))
            }
        });
        sim.spawn(async move {
            ps.start().await;
            for p in 0..12 {
                ps.pready(p).await;
            }
            ps.wait().await;
        });
        sim.run();
        assert!(done.try_take().unwrap());
    }

    #[test]
    fn trace_records_early_bird_ordering() {
        let (sim, world) = setup(1);
        world.enable_trace();
        let opts = PartOptions {
            first_iteration_cts: false,
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 2, 64, opts);
        sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                pr.wait().await;
            }
        });
        sim.spawn({
            let s = sim.clone();
            async move {
                ps.start().await;
                ps.pready(0).await;
                s.sleep(Dur::from_us(50)).await;
                ps.pready(1).await;
                ps.wait().await;
            }
        });
        sim.run();
        let trace = world.take_trace();
        assert!(!trace.is_empty());
        // Timestamps are monotone (take_trace sorts by virtual time).
        for w in trace.windows(2) {
            assert!(w[1].ts_ns >= w[0].ts_ns, "trace out of order");
        }
        // Message 0 leaves early-bird, before partition 1 is even ready.
        let early0 = trace
            .iter()
            .position(|e| matches!(e.kind, EventKind::EarlyBird { msg: 0, .. }))
            .expect("missing early-bird event for message 0");
        let pready1 = trace
            .iter()
            .position(|e| matches!(e.kind, EventKind::Pready { part: 1 }))
            .expect("missing pready event for partition 1");
        assert!(early0 < pready1, "early-bird send must precede pready(1)");
        // The sender's injections are typed eager sends on rank 0.
        assert!(trace
            .iter()
            .any(|e| e.rank == 0 && matches!(e.kind, EventKind::EagerSend { dst: 1, .. })));
        // Disabled tracing yields nothing further.
        assert!(world.take_trace().is_empty());
    }

    #[test]
    fn wait_any_msg_returns_earliest() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            first_iteration_cts: false,
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 3, 64, opts);
        let first = sim.spawn({
            let pr = pr.clone();
            async move {
                pr.start().await;
                let m = pr.wait_any_msg().await;
                pr.wait().await;
                m
            }
        });
        sim.spawn({
            let s = sim.clone();
            async move {
                ps.start().await;
                // Partition 1 first, then 0 and 2 much later.
                ps.pready(1).await;
                s.sleep(Dur::from_us(200)).await;
                ps.pready(0).await;
                ps.pready(2).await;
                ps.wait().await;
            }
        });
        sim.run();
        assert_eq!(first.try_take().unwrap(), 1, "earliest arrival wins");
    }

    // ---- extensions: thread hints, deferred sends, first-iter CTS ----

    #[test]
    fn thread_hint_controls_vci_attribution() {
        // 2 threads × θ=2 on 2 VCIs. Round-robin-by-message puts messages
        // 0,1,2,3 on VCIs 0,1,0,1; the thread hint (p % 2) puts messages
        // of thread 0 (partitions 0,2) on VCI 0 and thread 1's on VCI 1 —
        // same distribution here, so instead use a *block* hint where
        // thread 0 owns partitions 0,1: the mappings then differ.
        fn vci_counts(mapping: VciMapping) -> (u64, u64) {
            let (sim, world) = setup(2);
            let opts = PartOptions {
                vci_mapping: mapping,
                first_iteration_cts: false,
                ..PartOptions::default()
            };
            let (ps, _pr) = mk_pair(&world, 4, 64, opts);
            sim.block_on({
                let ps = ps.clone();
                async move {
                    ps.start().await;
                    for p in 0..4 {
                        ps.pready(p).await;
                    }
                }
            });
            (
                world.vci(0, 0).stats().acquisitions,
                world.vci(0, 1).stats().acquisitions,
            )
        }
        let rr = vci_counts(VciMapping::RoundRobinByMessage);
        assert_eq!(rr, (2, 2), "round-robin spreads 4 messages evenly");
        // Block hint: thread 0 owns partitions 0..2, thread 1 owns 2..4.
        let hint = std::rc::Rc::new(vec![0usize, 0, 1, 1]);
        let hinted = vci_counts(VciMapping::ThreadHint(hint));
        assert_eq!(hinted, (2, 2), "two messages per owning thread's VCI");
        // With an adversarial hint (everything owned by thread 0), all
        // traffic lands on VCI 0.
        let all0 = vci_counts(VciMapping::ThreadHint(std::rc::Rc::new(vec![0; 4])));
        assert_eq!(all0, (4, 0));
    }

    #[test]
    fn deferred_sends_disable_early_bird() {
        let (sim, world) = setup(1);
        let opts = PartOptions {
            defer_sends: true,
            ..PartOptions::default()
        };
        let (ps, pr) = mk_pair(&world, 2, 64, opts);
        let saw_early = sim.spawn({
            let pr = pr.clone();
            let s = sim.clone();
            async move {
                pr.start().await;
                s.sleep(Dur::from_us(100)).await;
                let early = pr.parrived(0);
                pr.wait().await;
                early
            }
        });
        sim.spawn({
            let s = sim.clone();
            async move {
                ps.start().await;
                ps.pready(0).await;
                s.sleep(Dur::from_us(500)).await;
                ps.pready(1).await;
                ps.wait().await;
            }
        });
        sim.run();
        assert!(
            !saw_early.try_take().unwrap(),
            "deferred mode must not deliver partition 0 early"
        );
    }

    #[test]
    fn first_iteration_cts_slows_only_iteration_zero() {
        let (sim, world) = setup(1);
        let (ps, pr) = mk_pair(&world, 2, 128, PartOptions::default());
        let times = sim.spawn({
            let pr = pr.clone();
            let s = sim.clone();
            async move {
                let mut v = Vec::new();
                for _ in 0..3 {
                    let t0 = s.now();
                    pr.start().await;
                    pr.wait().await;
                    v.push(s.now().since(t0).as_us_f64());
                }
                v
            }
        });
        sim.spawn(async move {
            for _ in 0..3 {
                ps.start().await;
                for p in 0..2 {
                    ps.pready(p).await;
                }
                ps.wait().await;
            }
        });
        sim.run();
        let v = times.try_take().unwrap();
        // Iteration 0 pays the CTS round trip; later iterations do not.
        assert!(
            v[0] > v[1] + 1.0,
            "first iteration should carry the CTS overhead: {v:?}"
        );
        assert!((v[1] - v[2]).abs() < 0.2, "steady state: {v:?}");
    }

    #[test]
    fn tag_space_exhaustion_falls_back_to_am() {
        let (_sim, world) = setup(1);
        let cs = world.comm_world(0);
        let mut last = None;
        for t in 0..(MAX_PART_REQUESTS_PER_PEER + 1) as i64 {
            let ps = psend_init(&cs, 1, t, 1, 64, 1, PartOptions::default());
            last = Some(ps.path());
        }
        assert_eq!(last, Some(PartPath::LegacyAm));
    }
}
