//! One-sided (RMA) communication: windows, put, active and passive
//! synchronization.
//!
//! The model captures what the paper's RMA strategies pay for (§2.3.3):
//!
//! * `put` is cheaper to issue than a tag-matched send (no matching), but
//!   remote completion needs an ack round-trip, paid at `flush`;
//! * **active** synchronization exchanges post/complete control messages
//!   (`MPI_Post` → origin, `MPI_Complete` → target);
//! * **passive** synchronization (lock/unlock with `MPI_MODE_NOCHECK`) is
//!   local, but exposure must then be managed with explicit 0-byte
//!   messages, which the strategies in [`crate::strategies`] issue;
//! * a rank's progress engine slows down with every additional window it
//!   must progress (the `RMA many – passive` penalty of Fig. 5).

use std::cell::{Cell, RefCell};

use pcomm_simcore::sync::{channel, Receiver, Sender};
use pcomm_trace::EventKind;

use crate::comm::Comm;
use crate::p2p::Msg;
use crate::world::{CtxKind, World};
use crate::{TAG_COMPLETE, TAG_POST};

/// Create a window pair: `origin` will `put` into `target`'s exposed
/// memory of `bytes` bytes.
///
/// Window creation is collective; this simulator variant creates both ends
/// at once (call it from setup code that owns both rank handles). The
/// window is assigned the next VCI round-robin on each rank, as MPICH does.
pub fn create_win(origin: &Comm, target: &Comm, bytes: usize) -> (WinOrigin, WinTarget) {
    assert_eq!(
        origin.ctx(),
        target.ctx(),
        "window ends must come from the same communicator"
    );
    let world = origin.world().clone();
    let win_ctx = world.alloc_child_ctx(origin.rank(), origin.ctx(), CtxKind::Win);
    let win_ctx_t = world.alloc_child_ctx(target.rank(), target.ctx(), CtxKind::Win);
    assert_eq!(win_ctx, win_ctx_t, "symmetric creation order required");
    let vci_o = world.assign_vci(origin.rank());
    let vci_t = world.assign_vci(target.rank());
    world.register_window(origin.rank());
    world.register_window(target.rank());
    let (acks_tx, acks_rx) = channel();
    let (arrivals_tx, arrivals_rx) = channel();
    let ctrl_o = Comm::new(world.clone(), origin.rank(), origin.size(), win_ctx, vci_o);
    let ctrl_t = Comm::new(world.clone(), target.rank(), target.size(), win_ctx, vci_t);
    (
        WinOrigin {
            world: world.clone(),
            ctrl: ctrl_o,
            target_rank: target.rank(),
            vci_idx: vci_o,
            bytes,
            puts_in_epoch: Cell::new(0),
            acks_tx,
            acks_rx: RefCell::new(acks_rx),
            arrivals_tx,
        },
        WinTarget {
            world,
            ctrl: ctrl_t,
            origin_rank: origin.rank(),
            arrivals_rx: RefCell::new(arrivals_rx),
        },
    )
}

/// Origin side of a window.
pub struct WinOrigin {
    world: World,
    ctrl: Comm,
    target_rank: usize,
    vci_idx: usize,
    bytes: usize,
    puts_in_epoch: Cell<u64>,
    acks_tx: Sender<()>,
    acks_rx: RefCell<Receiver<()>>,
    arrivals_tx: Sender<()>,
}

impl WinOrigin {
    /// Exposed window size.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `MPI_Win_lock(MPI_MODE_NOCHECK)`: local bookkeeping only.
    pub async fn lock(&self) {
        let cost = self.world.jitter(self.world.config().o_win_sync);
        self.world.sim().sleep(cost).await;
    }

    /// `MPI_Win_unlock`: completes outstanding puts, then local release.
    pub async fn unlock(&self) {
        self.flush().await;
    }

    /// `MPI_Put` of `bytes` at some offset (offsets don't affect timing).
    ///
    /// Issues on the window's VCI; completes locally at injection. Remote
    /// completion is observed by [`WinOrigin::flush`].
    pub async fn put(&self, bytes: usize) {
        assert!(bytes <= self.bytes, "put exceeds window size");
        let world = &self.world;
        let cfg = world.config().clone();
        {
            let vci = world.vci(self.ctrl.rank(), self.vci_idx);
            let guard = vci.acquire().await;
            let penalty = cfg.contention_penalty(guard.waiters_behind());
            let occupancy = world.jitter(cfg.o_rma_put) + penalty;
            world.sim().sleep(occupancy).await;
        }
        self.puts_in_epoch.set(self.puts_in_epoch.get() + 1);
        let link = world.link(self.ctrl.rank(), self.target_rank);
        let arrivals = self.arrivals_tx.clone();
        let acks = self.acks_tx.clone();
        let w = world.clone();
        world.sim().spawn(async move {
            {
                let _g = link.acquire().await;
                w.sim().sleep(w.config().wire_time(bytes)).await;
            }
            w.sim().sleep(w.config().latency).await;
            arrivals.send(());
            // Remote-completion ack travels back for flush semantics.
            w.sim().sleep(w.config().latency).await;
            acks.send(());
        });
    }

    /// `MPI_Get` of `bytes`: issue on the window's VCI; data travels
    /// target→origin (wire + latency each way for the request/response).
    /// Completes at [`WinOrigin::flush`] like puts.
    pub async fn get(&self, bytes: usize) {
        assert!(bytes <= self.bytes, "get exceeds window size");
        let world = &self.world;
        let cfg = world.config().clone();
        {
            let vci = world.vci(self.ctrl.rank(), self.vci_idx);
            let guard = vci.acquire().await;
            let penalty = cfg.contention_penalty(guard.waiters_behind());
            let occupancy = world.jitter(cfg.o_rma_put) + penalty;
            world.sim().sleep(occupancy).await;
        }
        self.puts_in_epoch.set(self.puts_in_epoch.get() + 1);
        // Request travels to the target, data comes back over the reverse
        // link; completion (the "ack") is the data arrival itself.
        let link_back = world.link(self.target_rank, self.ctrl.rank());
        let arrivals = self.arrivals_tx.clone();
        let acks = self.acks_tx.clone();
        let w = world.clone();
        world.sim().spawn(async move {
            w.sim().sleep(w.config().latency).await; // request
            {
                let _g = link_back.acquire().await;
                w.sim().sleep(w.config().wire_time(bytes)).await;
            }
            w.sim().sleep(w.config().latency).await; // response
            arrivals.send(());
            acks.send(());
        });
    }

    /// `MPI_Win_flush`: wait until every put of this epoch is remotely
    /// complete. Pays the synchronization cost plus the progress-engine
    /// overhead of every *other* window this rank must keep progressing.
    // Holding the RefCell borrow across the await is intentional: the ack
    // channel has a single consumer (the window's flusher) by design, and
    // a second concurrent flush would be an API-contract violation that
    // the borrow panic surfaces loudly.
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn flush(&self) {
        let cfg = self.world.config().clone();
        let others = self.world.windows_on(self.ctrl.rank()).saturating_sub(1);
        let cost = self.world.jitter(cfg.o_win_sync) + cfg.o_progress_per_object * others as u64;
        self.world.sim().sleep(cost).await;
        let n = self.puts_in_epoch.replace(0);
        let mut rx = self.acks_rx.borrow_mut();
        for _ in 0..n {
            rx.recv().await.expect("ack channel lives with the window");
        }
    }

    /// Active sync: `MPI_Win_start` — wait for the target's post.
    pub async fn start_epoch(&self) {
        let cost = self.world.jitter(self.world.config().o_win_sync);
        self.world.sim().sleep(cost).await;
        let t0 = self.world.trace_now_ns();
        self.ctrl.recv(Some(self.target_rank), Some(TAG_POST)).await;
        let win = (self.ctrl.ctx() & 0xffff) as u16;
        self.world
            .trace_span(t0, self.ctrl.rank(), |wait_ns| EventKind::EpochOpen {
                win,
                wait_ns,
            });
    }

    /// Active sync: `MPI_Win_complete` — notify the target how many puts
    /// to expect and close the access epoch.
    pub async fn complete_epoch(&self) {
        let cost = self.world.jitter(self.world.config().o_win_sync);
        self.world.sim().sleep(cost).await;
        let n = self.puts_in_epoch.replace(0);
        self.ctrl
            .send(self.target_rank, TAG_COMPLETE, Msg::ctrl(n))
            .await;
        let win = (self.ctrl.ctx() & 0xffff) as u16;
        self.world
            .trace(self.ctrl.rank(), || EventKind::EpochClose { win, puts: n });
    }
}

/// Target side of a window.
pub struct WinTarget {
    world: World,
    ctrl: Comm,
    origin_rank: usize,
    arrivals_rx: RefCell<Receiver<()>>,
}

impl WinTarget {
    /// Active sync: `MPI_Post` — expose the window to the origin.
    pub async fn post(&self) {
        let cost = self.world.jitter(self.world.config().o_win_sync);
        self.world.sim().sleep(cost).await;
        self.ctrl
            .send(self.origin_rank, TAG_POST, Msg::ctrl(0))
            .await;
    }

    /// Active sync: `MPI_Win_wait` — wait for the origin's complete
    /// notification and for all announced puts to have landed.
    // Single consumer by design; see flush() above.
    #[allow(clippy::await_holding_refcell_ref)]
    pub async fn wait_epoch(&self) {
        let d = self
            .ctrl
            .recv(Some(self.origin_rank), Some(TAG_COMPLETE))
            .await;
        let mut rx = self.arrivals_rx.borrow_mut();
        for _ in 0..d.meta {
            rx.recv().await.expect("arrival channel lives with window");
        }
        drop(rx);
        let cost = self.world.jitter(self.world.config().o_win_sync);
        self.world.sim().sleep(cost).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_netmodel::MachineConfig;
    use pcomm_simcore::{Dur, Sim};
    use std::rc::Rc;

    fn setup() -> (Sim, World) {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, 4, 1);
        (sim, world)
    }

    #[test]
    fn put_flush_roundtrip_time() {
        let (sim, world) = setup();
        let (wo, _wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1 << 20);
        let done = sim.spawn(async move {
            wo.put(1024).await;
            wo.flush().await;
            wo.world.sim().now()
        });
        sim.run();
        let t = done.try_take().unwrap().as_us_f64();
        // Put issues at 0.25; data + ack: wire(1024B)=0.041 + 2*1.22.
        // Flush CPU: 0.25 + progress for the peer's window count... this
        // rank has 1 window → no extra. Ack path dominates.
        let ack_at = 0.25 + 1024.0 / 25e9 * 1e6 + 2.44;
        assert!((t - ack_at).abs() < 1e-2, "t = {t}, expect {ack_at}");
    }

    #[test]
    fn flush_waits_for_all_puts() {
        let (sim, world) = setup();
        let (wo, _wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1 << 24);
        let done = sim.spawn(async move {
            for _ in 0..4 {
                wo.put(2_500_000).await; // 100us wire each
            }
            wo.flush().await;
            wo.world.sim().now()
        });
        sim.run();
        let t = done.try_take().unwrap().as_us_f64();
        // Four serialized 100us transfers on the link dominate.
        assert!(t > 400.0, "flush returned before transfers done: {t}");
        assert!(t < 410.0, "flush too slow: {t}");
    }

    #[test]
    fn get_round_trip_time() {
        let (sim, world) = setup();
        let (wo, _wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1 << 22);
        let done = sim.spawn(async move {
            wo.get(2_500_000).await; // 100us wire
            wo.flush().await;
            wo.world.sim().now()
        });
        sim.run();
        let t = done.try_take().unwrap().as_us_f64();
        // o_rma_put 0.25 + latency 1.22 + wire 100 + latency 1.22.
        let expect = 0.25 + 1.22 + 100.0 + 1.22;
        assert!((t - expect).abs() < 0.1, "t = {t}, expect {expect}");
    }

    #[test]
    fn active_epoch_synchronizes() {
        let (sim, world) = setup();
        let (wo, wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1 << 20);
        let wo = Rc::new(wo);
        let wt = Rc::new(wt);
        let target_done = sim.spawn({
            let wt = Rc::clone(&wt);
            async move {
                wt.post().await;
                wt.wait_epoch().await;
                wt.world.sim().now()
            }
        });
        let origin_done = sim.spawn({
            let wo = Rc::clone(&wo);
            async move {
                wo.start_epoch().await;
                wo.put(65536).await;
                wo.complete_epoch().await;
                wo.world.sim().now()
            }
        });
        sim.run();
        let t_t = target_done.try_take().unwrap().as_us_f64();
        let t_o = origin_done.try_take().unwrap().as_us_f64();
        assert!(t_t > 0.0 && t_o > 0.0);
        // Target completes after the put landed AND the complete ctrl came.
        let wire = 65536.0 / 25e9 * 1e6;
        assert!(t_t > wire, "target finished before data landed: {t_t}");
    }

    #[test]
    fn start_epoch_blocks_until_post() {
        let (sim, world) = setup();
        let (wo, wt) = create_win(&world.comm_world(0), &world.comm_world(1), 4096);
        let started_at = sim.spawn(async move {
            wo.start_epoch().await;
            wo.world.sim().now()
        });
        sim.spawn(async move {
            wt.world.sim().sleep(Dur::from_us(50)).await;
            wt.post().await;
        });
        sim.run();
        let t = started_at.try_take().unwrap().as_us_f64();
        assert!(t > 50.0, "start returned before post: {t}");
    }

    #[test]
    fn epochs_are_reusable() {
        let (sim, world) = setup();
        let (wo, wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1 << 16);
        let wo = Rc::new(wo);
        let wt = Rc::new(wt);
        let iters = sim.spawn({
            let wt = Rc::clone(&wt);
            async move {
                for _ in 0..5 {
                    wt.post().await;
                    wt.wait_epoch().await;
                }
                5
            }
        });
        sim.spawn({
            let wo = Rc::clone(&wo);
            async move {
                for _ in 0..5 {
                    wo.start_epoch().await;
                    wo.put(4096).await;
                    wo.put(4096).await;
                    wo.complete_epoch().await;
                }
            }
        });
        sim.run();
        assert_eq!(iters.try_take().unwrap(), 5);
    }

    #[test]
    fn progress_overhead_grows_with_windows() {
        // Same flush on a rank with 1 vs 4 windows: extra windows slow the
        // progress engine (the RMA many-passive effect of Fig. 5).
        fn flush_time(extra_windows: usize) -> f64 {
            let (sim, world) = setup();
            let mut keep = Vec::new();
            for _ in 0..extra_windows {
                keep.push(create_win(&world.comm_world(0), &world.comm_world(1), 1024));
            }
            let (wo, _wt) = create_win(&world.comm_world(0), &world.comm_world(1), 1024);
            let done = sim.spawn(async move {
                // Enough puts that the flush CPU cost is on the critical
                // path only via the progress term.
                wo.put(64).await;
                wo.flush().await;
                // Second flush with no pending acks: pure CPU cost.
                wo.flush().await;
                wo.world.sim().now()
            });
            sim.run();
            done.try_take().unwrap().as_us_f64()
        }
        let lone = flush_time(0);
        let crowded = flush_time(3);
        assert!(crowded > lone, "crowded {crowded} <= lone {lone}");
    }

    #[test]
    #[should_panic(expected = "put exceeds window size")]
    fn oversized_put_rejected() {
        let (sim, world) = setup();
        let (wo, _wt) = create_win(&world.comm_world(0), &world.comm_world(1), 16);
        sim.block_on(async move {
            wo.put(1024).await;
        });
    }
}
