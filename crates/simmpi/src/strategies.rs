//! The eight pipelined-communication strategies (paper Tables 1–2),
//! implemented on the simulated runtime and driven by the Fig. 3 template.

// Per-thread loops index shared per-thread state; keeping the index
// explicit mirrors the benchmark template's thread numbering.
#![allow(clippy::needless_range_loop)]

use std::rc::Rc;

use pcomm_simcore::JoinHandle;

use crate::comm::Comm;
use crate::p2p::Msg;
use crate::part::{
    precv_init, psend_init, PartOptions, PartPath, PrecvRequest, PsendRequest, VciMapping,
};
use crate::rma::{create_win, WinOrigin, WinTarget};
use crate::scenario::{Approach, Recorder, Scenario};
use crate::world::World;

/// User-level tag for the passive-target "window exposed" notification.
const TAG_EXPOSE: i64 = 5;
/// User-level tag for the passive-target "puts complete" notification.
const TAG_DONE: i64 = 6;

/// Charge the OpenMP thread-barrier cost on the calling (master) task.
async fn charge_barrier(world: &World, n_threads: usize) {
    let cost = world.jitter(world.config().barrier_cost(n_threads));
    world.sim().sleep(cost).await;
}

/// Set up and spawn the sender and receiver rank tasks for `approach`.
pub(crate) fn spawn(world: &World, approach: Approach, sc: Scenario, rec: Recorder) {
    let sim = world.sim().clone();
    let cs = world.comm_world(0);
    let cr = world.comm_world(1);
    match approach {
        Approach::PtpPart | Approach::PtpPartOld => {
            let path = if approach == Approach::PtpPart {
                PartPath::Improved
            } else {
                PartPath::LegacyAm
            };
            let vci_mapping = if sc.thread_hint {
                // MPIX_Stream-style hint: the scenario's actual
                // partition→thread ownership.
                let hint: Vec<usize> = (0..sc.n_parts())
                    .map(|p| sc.thread_of_partition(p))
                    .collect();
                VciMapping::ThreadHint(Rc::new(hint))
            } else {
                VciMapping::RoundRobinByMessage
            };
            let opts = PartOptions {
                aggr_size: if path == PartPath::Improved {
                    sc.aggr_size
                } else {
                    None
                },
                path,
                vci_mapping,
                defer_sends: sc.defer_sends,
                first_iteration_cts: true,
            };
            let ps = psend_init(
                &cs,
                1,
                0,
                sc.n_parts(),
                sc.part_bytes,
                sc.n_parts(),
                opts.clone(),
            );
            let pr = precv_init(&cr, 0, 0, sc.n_parts(), sc.n_parts(), sc.part_bytes, opts);
            sim.spawn(sender_part(world.clone(), sc.clone(), rec.clone(), ps));
            sim.spawn(receiver_part(world.clone(), sc, rec, pr));
        }
        Approach::PtpSingle => {
            let ps = Rc::new(cs.send_init(1, 0, sc.total_bytes()));
            let pr = Rc::new(cr.recv_init(0, 0));
            sim.spawn(sender_single(world.clone(), sc.clone(), rec.clone(), ps));
            sim.spawn(receiver_single(world.clone(), sc, rec, pr));
        }
        Approach::PtpMany => {
            // Per-thread duplicated communicators, dup'd in the same order
            // on both ranks (collective semantics).
            let mut send_reqs = Vec::with_capacity(sc.n_threads);
            let mut recv_reqs = Vec::with_capacity(sc.n_threads);
            for t in 0..sc.n_threads {
                let dst_comm = cs.dup();
                let src_comm = cr.dup();
                let mut s_row = Vec::with_capacity(sc.theta);
                let mut r_row = Vec::with_capacity(sc.theta);
                for (p, _) in sc.parts_of_thread(t) {
                    s_row.push(Rc::new(dst_comm.send_init(1, p as i64, sc.part_bytes)));
                    r_row.push(Rc::new(src_comm.recv_init(0, p as i64)));
                }
                send_reqs.push(s_row);
                recv_reqs.push(r_row);
            }
            sim.spawn(sender_many(
                world.clone(),
                sc.clone(),
                rec.clone(),
                send_reqs,
            ));
            sim.spawn(receiver_many(world.clone(), sc, rec, recv_reqs));
        }
        Approach::RmaSinglePassive => {
            let ds = cs.dup();
            let dr = cr.dup();
            let (wo, wt) = create_win(&ds, &dr, sc.total_bytes());
            drop(wt); // passive target: exposure handled via 0B messages
            sim.spawn(sender_rma_single_passive(
                world.clone(),
                sc.clone(),
                rec.clone(),
                ds,
                Rc::new(wo),
            ));
            sim.spawn(receiver_rma_passive(world.clone(), sc, rec, dr));
        }
        Approach::RmaManyPassive => {
            let wins: Vec<Rc<WinOrigin>> = (0..sc.n_threads)
                .map(|_| {
                    let (wo, wt) = create_win(&cs, &cr, sc.total_bytes());
                    drop(wt);
                    Rc::new(wo)
                })
                .collect();
            sim.spawn(sender_rma_many_passive(
                world.clone(),
                sc.clone(),
                rec.clone(),
                cs.clone(),
                wins,
            ));
            sim.spawn(receiver_rma_passive(world.clone(), sc, rec, cr));
        }
        Approach::RmaSingleActive => {
            let ds = cs.dup();
            let dr = cr.dup();
            let (wo, wt) = create_win(&ds, &dr, sc.total_bytes());
            sim.spawn(sender_rma_single_active(
                world.clone(),
                sc.clone(),
                rec.clone(),
                Rc::new(wo),
            ));
            sim.spawn(receiver_rma_single_active(
                world.clone(),
                sc,
                rec,
                Rc::new(wt),
            ));
        }
        Approach::RmaManyActive => {
            let mut origins = Vec::with_capacity(sc.n_threads);
            let mut targets = Vec::with_capacity(sc.n_threads);
            for _ in 0..sc.n_threads {
                let (wo, wt) = create_win(&cs, &cr, sc.total_bytes());
                origins.push(Rc::new(wo));
                targets.push(Rc::new(wt));
            }
            sim.spawn(sender_rma_many_active(
                world.clone(),
                sc.clone(),
                rec.clone(),
                origins,
            ));
            sim.spawn(receiver_rma_many_active(world.clone(), sc, rec, targets));
        }
    }
}

/// Join a set of worker-thread tasks (acts as the pre-`wait` barrier's
/// synchronization; its cost is charged separately).
async fn join_all(handles: Vec<JoinHandle<()>>) {
    for h in handles {
        h.await;
    }
}

// ---------------------------------------------------------------- part --

async fn sender_part(world: World, sc: Scenario, rec: Recorder, ps: PsendRequest) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        ps.start().await;
        charge_barrier(&world, sc.n_threads).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let ps = ps.clone();
            let sim2 = sim.clone();
            handles.push(sim.spawn(async move {
                // Partitions that become ready at the same instant are
                // issued as one `pready_list` batch: identical timing to
                // the per-partition loop, but the batch is a unit the
                // chaos pready jitter can permute, which is what the
                // verification layer's schedule exploration drives.
                let mut i = 0;
                while i < parts.len() {
                    let (_, ready) = parts[i];
                    sim2.sleep_until(t0 + ready).await;
                    let mut batch = Vec::new();
                    while i < parts.len() && parts[i].1 == ready {
                        batch.push(parts[i].0);
                        i += 1;
                    }
                    ps.pready_list(&batch).await;
                }
            }));
        }
        join_all(handles).await;
        charge_barrier(&world, sc.n_threads).await;
        ps.wait().await;
    }
}

async fn receiver_part(world: World, sc: Scenario, rec: Recorder, pr: PrecvRequest) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        pr.start().await;
        pr.wait().await;
        rec.end(sim.now());
    }
}

// -------------------------------------------------------------- single --

async fn sender_single(
    world: World,
    sc: Scenario,
    rec: Recorder,
    ps: Rc<crate::p2p::PersistentSend>,
) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        // Threads compute; bulk synchronization before the single send.
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let sim2 = sim.clone();
            handles.push(sim.spawn(async move {
                for (_, ready) in parts {
                    sim2.sleep_until(t0 + ready).await;
                }
            }));
        }
        join_all(handles).await;
        charge_barrier(&world, sc.n_threads).await;
        ps.start().await;
        ps.wait().await;
    }
}

async fn receiver_single(
    world: World,
    sc: Scenario,
    rec: Recorder,
    pr: Rc<crate::p2p::PersistentRecv>,
) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        pr.start().await;
        pr.wait().await;
        rec.end(sim.now());
    }
}

// ---------------------------------------------------------------- many --

async fn sender_many(
    world: World,
    sc: Scenario,
    rec: Recorder,
    reqs: Vec<Vec<Rc<crate::p2p::PersistentSend>>>,
) {
    let sim = world.sim().clone();
    let reqs = Rc::new(reqs);
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let row = reqs[t].clone();
            let sim2 = sim.clone();
            handles.push(sim.spawn(async move {
                for (j, (_, ready)) in parts.into_iter().enumerate() {
                    sim2.sleep_until(t0 + ready).await;
                    row[j].start().await;
                    row[j].wait().await;
                }
            }));
        }
        join_all(handles).await;
    }
}

async fn receiver_many(
    world: World,
    sc: Scenario,
    rec: Recorder,
    reqs: Vec<Vec<Rc<crate::p2p::PersistentRecv>>>,
) {
    let sim = world.sim().clone();
    let reqs = Rc::new(reqs);
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let row = reqs[t].clone();
            let theta = sc.theta;
            handles.push(sim.spawn(async move {
                for j in 0..theta {
                    row[j].start().await;
                    row[j].wait().await;
                }
            }));
        }
        join_all(handles).await;
        rec.end(sim.now());
    }
}

// ------------------------------------------------------------- passive --

async fn sender_rma_single_passive(
    world: World,
    sc: Scenario,
    rec: Recorder,
    comm: Comm,
    win: Rc<WinOrigin>,
) {
    let sim = world.sim().clone();
    win.lock().await; // MPI_Win_lock(NOCHECK): once, at init
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        // start: wait for the target's exposure notification.
        comm.recv(Some(1), Some(TAG_EXPOSE)).await;
        charge_barrier(&world, sc.n_threads).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let win = Rc::clone(&win);
            let sim2 = sim.clone();
            let part_bytes = sc.part_bytes;
            handles.push(sim.spawn(async move {
                for (_, ready) in parts {
                    sim2.sleep_until(t0 + ready).await;
                    win.put(part_bytes).await;
                }
            }));
        }
        join_all(handles).await;
        charge_barrier(&world, sc.n_threads).await;
        win.flush().await;
        comm.send(1, TAG_DONE, Msg::ctrl(0)).await;
    }
}

async fn sender_rma_many_passive(
    world: World,
    sc: Scenario,
    rec: Recorder,
    comm: Comm,
    wins: Vec<Rc<WinOrigin>>,
) {
    let sim = world.sim().clone();
    for w in &wins {
        w.lock().await;
    }
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        comm.recv(Some(1), Some(TAG_EXPOSE)).await;
        charge_barrier(&world, sc.n_threads).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let win = Rc::clone(&wins[t]);
            let sim2 = sim.clone();
            let part_bytes = sc.part_bytes;
            handles.push(sim.spawn(async move {
                for (_, ready) in parts {
                    sim2.sleep_until(t0 + ready).await;
                    win.put(part_bytes).await;
                }
                // ready column: each thread flushes its own window.
                win.flush().await;
            }));
        }
        join_all(handles).await;
        charge_barrier(&world, sc.n_threads).await;
        comm.send(1, TAG_DONE, Msg::ctrl(0)).await;
    }
}

async fn receiver_rma_passive(world: World, sc: Scenario, rec: Recorder, comm: Comm) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        comm.send(0, TAG_EXPOSE, Msg::ctrl(0)).await;
        comm.recv(Some(0), Some(TAG_DONE)).await;
        rec.end(sim.now());
    }
}

// -------------------------------------------------------------- active --

async fn sender_rma_single_active(world: World, sc: Scenario, rec: Recorder, win: Rc<WinOrigin>) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        win.start_epoch().await;
        charge_barrier(&world, sc.n_threads).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let win = Rc::clone(&win);
            let sim2 = sim.clone();
            let part_bytes = sc.part_bytes;
            handles.push(sim.spawn(async move {
                for (_, ready) in parts {
                    sim2.sleep_until(t0 + ready).await;
                    win.put(part_bytes).await;
                }
            }));
        }
        join_all(handles).await;
        charge_barrier(&world, sc.n_threads).await;
        win.complete_epoch().await;
    }
}

async fn receiver_rma_single_active(world: World, sc: Scenario, rec: Recorder, win: Rc<WinTarget>) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        win.post().await;
        win.wait_epoch().await;
        rec.end(sim.now());
    }
}

async fn sender_rma_many_active(
    world: World,
    sc: Scenario,
    rec: Recorder,
    wins: Vec<Rc<WinOrigin>>,
) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        let t0 = sim.now();
        let mut handles = Vec::with_capacity(sc.n_threads);
        for t in 0..sc.n_threads {
            let parts = sc.parts_of_thread(t);
            let win = Rc::clone(&wins[t]);
            let sim2 = sim.clone();
            let part_bytes = sc.part_bytes;
            handles.push(sim.spawn(async move {
                // ready column: Start + Put(s) + Complete, per thread.
                win.start_epoch().await;
                for (_, ready) in parts {
                    sim2.sleep_until(t0 + ready).await;
                    win.put(part_bytes).await;
                }
                win.complete_epoch().await;
            }));
        }
        join_all(handles).await;
    }
}

async fn receiver_rma_many_active(
    world: World,
    sc: Scenario,
    rec: Recorder,
    wins: Vec<Rc<WinTarget>>,
) {
    let sim = world.sim().clone();
    for _ in 0..sc.iterations {
        rec.begin(&sim).await;
        for w in &wins {
            w.post().await;
        }
        for w in &wins {
            w.wait_epoch().await;
        }
        rec.end(sim.now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_scenario;
    use pcomm_netmodel::MachineConfig;
    use pcomm_simcore::Dur;

    fn quiet() -> MachineConfig {
        MachineConfig::meluxina_quiet()
    }

    /// Every strategy completes a small scenario and yields plausible
    /// per-iteration times.
    #[test]
    fn all_strategies_run_to_completion() {
        let sc = Scenario::immediate(2, 1, 1024, 4);
        for a in Approach::ALL {
            let times = run_scenario(&quiet(), 2, 1, a, &sc);
            assert_eq!(times.len(), 4, "{a:?}");
            for t in &times {
                assert!(
                    t.as_us_f64() > 0.5 && t.as_us_f64() < 1000.0,
                    "{a:?}: implausible time {t}"
                );
            }
        }
    }

    /// With no delay and quiet config, iterations after the first are
    /// identical (steady state).
    #[test]
    fn steady_state_is_deterministic() {
        let sc = Scenario::immediate(4, 1, 512, 6);
        for a in Approach::ALL {
            let times = run_scenario(&quiet(), 1, 1, a, &sc);
            let tail = &times[1..];
            for w in tail.windows(2) {
                assert_eq!(w[0], w[1], "{a:?}: unstable steady state {times:?}");
            }
        }
    }

    /// Fig. 4's headline comparison at N=1, θ=1: the improved partitioned
    /// path matches Pt2Pt single closely, the legacy AM path is slower.
    #[test]
    fn fig4_shape_single_thread() {
        for bytes in [512usize, 4096, 1 << 20] {
            let sc = Scenario::immediate(1, 1, bytes, 3);
            let t = |a: Approach| run_scenario(&quiet(), 1, 1, a, &sc)[2].as_us_f64();
            let part = t(Approach::PtpPart);
            let old = t(Approach::PtpPartOld);
            let single = t(Approach::PtpSingle);
            assert!(
                old > part,
                "{bytes}B: legacy {old} should exceed improved {part}"
            );
            assert!(
                (part - single).abs() / single < 0.5,
                "{bytes}B: part {part} should be close to single {single}"
            );
        }
    }

    /// RMA passive approaches pay extra synchronization at small sizes.
    #[test]
    fn rma_slower_than_ptp_at_small_sizes() {
        let sc = Scenario::immediate(1, 1, 256, 3);
        let t = |a: Approach| run_scenario(&quiet(), 1, 1, a, &sc)[2].as_us_f64();
        let single = t(Approach::PtpSingle);
        for a in [
            Approach::RmaSinglePassive,
            Approach::RmaManyPassive,
            Approach::RmaSingleActive,
            Approach::RmaManyActive,
        ] {
            assert!(
                t(a) > single,
                "{a:?} should be slower than Pt2Pt single at 256B"
            );
        }
    }

    /// Thread contention (Fig. 5): with one VCI and many threads, the
    /// multithreaded strategies are far slower than the single-message
    /// one; with per-thread VCIs (Fig. 6) the gap collapses.
    #[test]
    fn contention_and_vci_relief() {
        let sc = Scenario::immediate(16, 1, 512, 3);
        let run = |a: Approach, v: usize| run_scenario(&quiet(), v, 1, a, &sc)[2].as_us_f64();
        let single_1 = run(Approach::PtpSingle, 1);
        let many_1 = run(Approach::PtpMany, 1);
        let many_16 = run(Approach::PtpMany, 16);
        let part_1 = run(Approach::PtpPart, 1);
        let part_16 = run(Approach::PtpPart, 16);
        assert!(
            many_1 / single_1 > 5.0,
            "contention penalty too small: many/single = {}",
            many_1 / single_1
        );
        assert!(
            many_16 < many_1 / 3.0,
            "VCIs should relieve contention: {many_16} vs {many_1}"
        );
        assert!(part_16 < part_1, "partitioned also benefits from VCIs");
    }

    /// Message aggregation (Fig. 7): fewer messages → lower overhead for
    /// small partitions.
    #[test]
    fn aggregation_reduces_overhead() {
        let mut sc = Scenario::immediate(4, 8, 512, 3);
        let no_aggr = run_scenario(&quiet(), 1, 1, Approach::PtpPart, &sc)[2];
        sc.aggr_size = Some(8192);
        let aggr = run_scenario(&quiet(), 1, 1, Approach::PtpPart, &sc)[2];
        assert!(
            aggr.as_us_f64() < no_aggr.as_us_f64() / 2.0,
            "aggregation: {aggr} vs {no_aggr}"
        );
    }

    /// Early-bird effect (Fig. 8): with a large delayed last partition,
    /// the pipelined partitioned send beats the bulk single send.
    #[test]
    fn early_bird_gain_at_large_sizes() {
        let part_bytes = 4 << 20; // 4 MiB per partition
        let gamma = 1e-10; // 100 µs/MB
        let delay = Dur::from_secs_f64(gamma * part_bytes as f64);
        let mut sc = Scenario::immediate(4, 1, part_bytes, 3);
        sc.delays[3] = delay;
        let t_part = run_scenario(&quiet(), 1, 1, Approach::PtpPart, &sc)[2].as_us_f64();
        let t_single = run_scenario(&quiet(), 1, 1, Approach::PtpSingle, &sc)[2].as_us_f64();
        let gain = t_single / t_part;
        // Theory: η = 4 / (4 − γβ) = 2.67; latency and contention shave it.
        assert!(
            gain > 1.8 && gain < 2.8,
            "early-bird gain {gain} out of expected band"
        );
    }

    /// The early-bird gain is approach-agnostic for large messages
    /// (paper §4.3): Pt2Pt many and RMA variants see it too.
    #[test]
    fn early_bird_gain_is_approach_agnostic() {
        let part_bytes = 4 << 20;
        let delay = Dur::from_secs_f64(1e-10 * part_bytes as f64);
        let mut sc = Scenario::immediate(4, 1, part_bytes, 3);
        sc.delays[3] = delay;
        let t_single = run_scenario(&quiet(), 1, 1, Approach::PtpSingle, &sc)[2].as_us_f64();
        for a in [Approach::PtpMany, Approach::RmaSinglePassive] {
            let t = run_scenario(&quiet(), 1, 1, a, &sc)[2].as_us_f64();
            let gain = t_single / t;
            assert!(gain > 1.8, "{a:?}: gain {gain} too small");
        }
    }
}
