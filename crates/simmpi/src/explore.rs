//! Bounded schedule exploration: replay one scenario under N seeded
//! pready-jitter permutations and run the full verification suite
//! (happens-before races, wait-for-graph deadlocks, protocol lints) on
//! every interleaving.
//!
//! The simulator is deterministic in `(cfg, n_vcis, seed, approach,
//! scenario)`, so each seed names exactly one interleaving: the seed
//! drives both the machine-noise stream (perturbing compute and atomic
//! costs, hence message timing) and the chaos [`FaultPlan`]'s
//! `jitter_order` permutation stream, which scrambles the intra-batch
//! order of `pready_list`/`pready_range` calls — the same stream the
//! real runtime consumes, so a seed that trips a finding here can be
//! replayed against `pcomm-core` under `PCOMM_FAULTS=seed=...,jitter`.
//!
//! Guarantees and limits: the sweep is *bounded* — it certifies only the
//! explored interleavings, not all schedules (there is no DPOR-style
//! reduction), but every explored schedule gets an exact verdict, and a
//! clean protocol stays clean under any permutation the stream emits.

use pcomm_netmodel::MachineConfig;
use pcomm_trace::FaultPlan;
use pcomm_verify::VerifyReport;

use crate::scenario::{run_scenario_verified, Approach, Scenario};

/// The outcome of one explored interleaving.
#[derive(Debug)]
pub struct Exploration {
    /// Seed that produced (and reproduces) this interleaving.
    pub seed: u64,
    /// Verification verdict for the interleaving's trace.
    pub report: VerifyReport,
    /// Verify events analyzed (sanity: a partitioned scenario that
    /// emitted nothing was not actually instrumented).
    pub verify_events: usize,
}

/// Replay `sc` under `approach` once per seed, each run under that
/// seed's pready-jitter permutation, and verify every interleaving.
///
/// Returns one [`Exploration`] per seed, in order. Callers typically
/// assert `report.is_clean()` across the sweep (a correct protocol must
/// hold under any readiness order) or scan for the first finding.
pub fn explore_scenario(
    cfg: &MachineConfig,
    n_vcis: usize,
    approach: Approach,
    sc: &Scenario,
    seeds: &[u64],
) -> Vec<Exploration> {
    seeds
        .iter()
        .map(|&seed| {
            let plan = FaultPlan::seeded(seed).jitter(true);
            let (_times, events) =
                run_scenario_verified(cfg, n_vcis, seed, approach, sc, Some(plan));
            let report = pcomm_verify::analyze(&events);
            let verify_events = report.stats.verify_events;
            Exploration {
                seed,
                report,
                verify_events,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(n: u64) -> Vec<u64> {
        (1..=n).collect()
    }

    #[test]
    fn partitioned_scenario_is_clean_across_jitter_sweep() {
        let cfg = MachineConfig::meluxina_quiet();
        let sc = Scenario::immediate(4, 2, 256, 3);
        let runs = explore_scenario(&cfg, 2, Approach::PtpPart, &sc, &seeds(8));
        assert_eq!(runs.len(), 8);
        for r in &runs {
            assert!(r.report.is_clean(), "seed {} found: {}", r.seed, r.report);
            assert!(
                r.verify_events > 0,
                "seed {} emitted no verify events",
                r.seed
            );
            // Full protocol coverage: both sides init'd and waited.
            assert_eq!(r.report.stats.requests, 1);
        }
    }

    #[test]
    fn legacy_path_is_clean_across_jitter_sweep() {
        let cfg = MachineConfig::meluxina_quiet();
        let mut sc = Scenario::immediate(2, 4, 128, 2);
        sc.aggr_size = None;
        let runs = explore_scenario(&cfg, 1, Approach::PtpPartOld, &sc, &seeds(4));
        for r in &runs {
            assert!(r.report.is_clean(), "seed {}: {}", r.seed, r.report);
            assert!(r.verify_events > 0);
        }
    }

    #[test]
    fn non_partitioned_strategies_pass_vacuously() {
        // RMA / plain p2p strategies emit no partitioned verify events;
        // the passes must report clean, not crash, on such traces.
        let cfg = MachineConfig::meluxina_quiet();
        let sc = Scenario::immediate(2, 1, 512, 2);
        for approach in [Approach::PtpSingle, Approach::RmaSinglePassive] {
            let runs = explore_scenario(&cfg, 1, approach, &sc, &seeds(2));
            for r in &runs {
                assert!(
                    r.report.is_clean(),
                    "{approach:?} seed {}: {}",
                    r.seed,
                    r.report
                );
            }
        }
    }

    #[test]
    fn seeds_steer_distinct_interleavings_deterministically() {
        let cfg = MachineConfig::meluxina_quiet();
        let sc = Scenario::immediate(2, 4, 64, 1);
        let a = explore_scenario(&cfg, 1, Approach::PtpPart, &sc, &[5]);
        let b = explore_scenario(&cfg, 1, Approach::PtpPart, &sc, &[5]);
        assert_eq!(
            a[0].verify_events, b[0].verify_events,
            "same seed must replay the same interleaving"
        );
        // Different seeds permute the pready batches differently: the
        // traces differ even though both verify clean.
        let plan5 = FaultPlan::seeded(5).jitter(true);
        let plan9 = FaultPlan::seeded(9).jitter(true);
        let (_, ev5) = run_scenario_verified(&cfg, 1, 5, Approach::PtpPart, &sc, Some(plan5));
        let (_, ev9) = run_scenario_verified(&cfg, 1, 9, Approach::PtpPart, &sc, Some(plan9));
        let order = |evs: &[pcomm_trace::Event]| {
            evs.iter()
                .filter_map(|e| match e.kind {
                    pcomm_trace::EventKind::VerifyPready { part, .. } => Some(part),
                    _ => None,
                })
                .collect::<Vec<u32>>()
        };
        assert_ne!(order(&ev5), order(&ev9), "seed must steer pready order");
    }
}
