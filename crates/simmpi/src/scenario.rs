//! The benchmark template of the paper's Fig. 3, driving any of the eight
//! strategies over a parameterized scenario.
//!
//! Per iteration: both ranks synchronize (benchmark artifact, zero cost),
//! the sender performs its `start` operation and thread barrier, threads
//! compute (sleep until their partitions' ready times) and issue their
//! `ready` operations, a final barrier precedes the master's `wait`; the
//! iteration's *time-to-solution* runs until the receiver completes its
//! `wait`. The compute time (`max_delay`) is subtracted, yielding the
//! communication-only overhead the paper reports (§2.1).

use std::cell::RefCell;
use std::rc::Rc;

use pcomm_netmodel::MachineConfig;
use pcomm_simcore::sync::Barrier;
use pcomm_simcore::{Dur, Sim, SimTime};

use crate::strategies;
use crate::world::World;

/// A benchmark scenario: the knobs of the paper's figures.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// OpenMP threads per rank (N).
    pub n_threads: usize,
    /// Partitions per thread (θ).
    pub theta: usize,
    /// Bytes per partition (S_part).
    pub part_bytes: usize,
    /// Aggregation bound for the improved partitioned path
    /// (`MPIR_CVAR_PART_AGGR_SIZE`); `None` disables aggregation.
    pub aggr_size: Option<usize>,
    /// Ready time of each partition, measured from the compute start
    /// (length `n_threads·theta`). See `pcomm_workloads::DelaySchedule`.
    pub delays: Vec<Dur>,
    /// Iterations to run (including any warm-up the caller discards).
    pub iterations: usize,
    /// Ablation: defer partitioned sends to `wait()` (no early-bird).
    pub defer_sends: bool,
    /// Use an MPIX_Stream-style thread hint for partition→VCI mapping
    /// instead of the default round-robin-by-message attribution.
    pub thread_hint: bool,
    /// Assign partitions to threads in contiguous blocks (`thread t` owns
    /// partitions `[t·θ, (t+1)·θ)`) instead of round-robin — the user
    /// layout §3.2.2 says the default VCI attribution is "likely to
    /// break" for.
    pub block_assignment: bool,
}

impl Scenario {
    /// A delay-free scenario (Figs. 4–7 style).
    pub fn immediate(
        n_threads: usize,
        theta: usize,
        part_bytes: usize,
        iterations: usize,
    ) -> Scenario {
        Scenario {
            n_threads,
            theta,
            part_bytes,
            aggr_size: None,
            delays: vec![Dur::ZERO; n_threads * theta],
            iterations,
            defer_sends: false,
            thread_hint: false,
            block_assignment: false,
        }
    }

    /// Total number of partitions (N·θ).
    pub fn n_parts(&self) -> usize {
        self.n_threads * self.theta
    }

    /// Total buffer size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.n_parts() * self.part_bytes
    }

    /// The compute delay subtracted from the measured time.
    pub fn max_delay(&self) -> Dur {
        self.delays.iter().copied().max().unwrap_or(Dur::ZERO)
    }

    /// The thread owning partition `p` under this scenario's assignment.
    pub fn thread_of_partition(&self, p: usize) -> usize {
        if self.block_assignment {
            p / self.theta
        } else {
            p % self.n_threads
        }
    }

    /// The (partition, ready-time) pairs thread `t` processes, in order.
    pub fn parts_of_thread(&self, t: usize) -> Vec<(usize, Dur)> {
        (0..self.theta)
            .map(|j| {
                let p = if self.block_assignment {
                    t * self.theta + j
                } else {
                    t + j * self.n_threads
                };
                (p, self.delays[p])
            })
            .collect()
    }

    /// Check internal consistency; panics on malformed scenarios.
    pub fn validate(&self) {
        assert!(self.n_threads >= 1, "need at least one thread");
        assert!(self.theta >= 1, "need at least one partition per thread");
        assert!(self.part_bytes >= 1, "empty partitions not supported");
        assert!(self.iterations >= 1, "need at least one iteration");
        assert_eq!(
            self.delays.len(),
            self.n_parts(),
            "delays must cover every partition"
        );
    }
}

/// The eight pipelined-communication strategies of Tables 1–2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// MPI-4 partitioned communication, improved implementation.
    PtpPart,
    /// MPI-4 partitioned communication, legacy AM implementation.
    PtpPartOld,
    /// One persistent message after bulk thread synchronization.
    PtpSingle,
    /// One message per partition from per-thread duplicated communicators.
    PtpMany,
    /// One shared window, passive synchronization.
    RmaSinglePassive,
    /// One window per thread, passive synchronization.
    RmaManyPassive,
    /// One shared window, active (PSCW) synchronization.
    RmaSingleActive,
    /// One window per thread, active synchronization.
    RmaManyActive,
}

impl Approach {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Approach; 8] = [
        Approach::PtpPart,
        Approach::PtpPartOld,
        Approach::PtpSingle,
        Approach::PtpMany,
        Approach::RmaSinglePassive,
        Approach::RmaManyPassive,
        Approach::RmaSingleActive,
        Approach::RmaManyActive,
    ];

    /// Human-readable label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::PtpPart => "Pt2Pt part",
            Approach::PtpPartOld => "Pt2Pt part - old",
            Approach::PtpSingle => "Pt2Pt single",
            Approach::PtpMany => "Pt2Pt many",
            Approach::RmaSinglePassive => "RMA single - passive",
            Approach::RmaManyPassive => "RMA many - passive",
            Approach::RmaSingleActive => "RMA single - active",
            Approach::RmaManyActive => "RMA many - active",
        }
    }

    /// Sender-side MPI operations (paper Table 1): `[init, start, ready,
    /// wait]`.
    pub fn sender_ops(&self) -> [&'static str; 4] {
        match self {
            Approach::PtpPart | Approach::PtpPartOld => {
                ["MPI_Psend_init", "MPI_Start", "MPI_Pready", "MPI_Wait"]
            }
            Approach::PtpSingle => ["MPI_Send_init", "", "", "MPI_Start MPI_Wait"],
            Approach::PtpMany => ["MPI_Comm_dup MPI_Send_init", "", "MPI_Start MPI_Wait", ""],
            Approach::RmaSinglePassive => [
                "MPI_Comm_dup MPI_Win_create MPI_Win_lock",
                "MPI_Recv",
                "MPI_Put",
                "MPI_Win_flush MPI_Send",
            ],
            Approach::RmaManyPassive => [
                "MPI_Win_create MPI_Win_lock",
                "MPI_Recv",
                "MPI_Put MPI_Win_flush",
                "MPI_Send",
            ],
            Approach::RmaSingleActive => [
                "MPI_Comm_dup MPI_Win_create",
                "MPI_Start",
                "MPI_Put",
                "MPI_Complete",
            ],
            Approach::RmaManyActive => ["MPI_Win_create", "", "MPI_Start MPI_Put MPI_Complete", ""],
        }
    }

    /// Receiver-side MPI operations (paper Table 2).
    pub fn receiver_ops(&self) -> [&'static str; 4] {
        match self {
            Approach::PtpPart | Approach::PtpPartOld => {
                ["MPI_Precv_init", "MPI_Start", "MPI_Parrived", "MPI_Wait"]
            }
            Approach::PtpSingle => ["MPI_Recv_init", "MPI_Start", "", "MPI_Wait"],
            Approach::PtpMany => ["MPI_Comm_dup MPI_Recv_init", "", "MPI_Start MPI_Wait", ""],
            Approach::RmaSinglePassive | Approach::RmaManyPassive => {
                ["MPI_Win_create", "MPI_Send", "", "MPI_Recv"]
            }
            Approach::RmaSingleActive | Approach::RmaManyActive => {
                ["MPI_Win_create", "MPI_Post", "", "MPI_Wait"]
            }
        }
    }
}

/// Records per-iteration start/end timestamps; the inter-rank iteration
/// barrier is a benchmark artifact with no modeled cost.
#[derive(Clone)]
pub(crate) struct Recorder {
    barrier: Barrier,
    starts: Rc<RefCell<Vec<SimTime>>>,
    ends: Rc<RefCell<Vec<SimTime>>>,
}

impl Recorder {
    fn new() -> Recorder {
        Recorder {
            barrier: Barrier::new(2),
            starts: Rc::new(RefCell::new(Vec::new())),
            ends: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Both ranks call this at the top of every iteration; the leader (the
    /// later arrival) records the iteration start time.
    pub(crate) async fn begin(&self, sim: &Sim) {
        let r = self.barrier.wait().await;
        if r.is_leader {
            self.starts.borrow_mut().push(sim.now());
        }
    }

    /// The receiver calls this once its `wait` completed.
    pub(crate) fn end(&self, now: SimTime) {
        self.ends.borrow_mut().push(now);
    }

    fn into_times(self, max_delay: Dur) -> Vec<Dur> {
        let starts = self.starts.borrow();
        let ends = self.ends.borrow();
        assert_eq!(starts.len(), ends.len(), "unbalanced iteration records");
        starts
            .iter()
            .zip(ends.iter())
            .map(|(s, e)| e.since(*s).saturating_sub(max_delay))
            .collect()
    }
}

/// Run one scenario under one strategy on a fresh simulated machine.
///
/// Returns the per-iteration communication overhead (time-to-solution
/// minus compute delay), in iteration order. Fully deterministic in
/// `(cfg, n_vcis, seed, approach, scenario)`.
pub fn run_scenario(
    cfg: &MachineConfig,
    n_vcis: usize,
    seed: u64,
    approach: Approach,
    sc: &Scenario,
) -> Vec<Dur> {
    sc.validate();
    let sim = Sim::new();
    let world = World::new(&sim, cfg.clone(), 2, n_vcis, seed);
    let rec = Recorder::new();
    strategies::spawn(&world, approach, sc.clone(), rec.clone());
    sim.run();
    let times = rec.into_times(sc.max_delay());
    assert_eq!(times.len(), sc.iterations, "lost iterations");
    times
}

/// Like [`run_scenario`], but with analysis-grade `Verify*` emission on
/// and an optional chaos plan steering the interleaving. Returns the
/// per-iteration overheads plus the collected trace, ready for
/// [`pcomm_verify::analyze`]. The [`crate::explore`] module drives this
/// over a seed sweep.
pub fn run_scenario_verified(
    cfg: &MachineConfig,
    n_vcis: usize,
    seed: u64,
    approach: Approach,
    sc: &Scenario,
    plan: Option<pcomm_trace::FaultPlan>,
) -> (Vec<Dur>, Vec<pcomm_trace::Event>) {
    sc.validate();
    let sim = Sim::new();
    let world = World::new(&sim, cfg.clone(), 2, n_vcis, seed);
    world.enable_verify();
    if let Some(plan) = plan {
        world.enable_faults(plan);
    }
    let rec = Recorder::new();
    strategies::spawn(&world, approach, sc.clone(), rec.clone());
    sim.run();
    let times = rec.into_times(sc.max_delay());
    assert_eq!(times.len(), sc.iterations, "lost iterations");
    (times, world.take_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_accessors() {
        let sc = Scenario::immediate(4, 2, 1024, 10);
        assert_eq!(sc.n_parts(), 8);
        assert_eq!(sc.total_bytes(), 8192);
        assert_eq!(sc.max_delay(), Dur::ZERO);
        assert_eq!(sc.parts_of_thread(1), vec![(1, Dur::ZERO), (5, Dur::ZERO)]);
        sc.validate();
    }

    #[test]
    fn max_delay_is_max() {
        let mut sc = Scenario::immediate(2, 2, 64, 1);
        sc.delays = vec![Dur::ZERO, Dur::from_us(3), Dur::from_us(7), Dur::from_us(5)];
        assert_eq!(sc.max_delay(), Dur::from_us(7));
    }

    #[test]
    #[should_panic(expected = "delays must cover")]
    fn validate_catches_bad_delays() {
        let mut sc = Scenario::immediate(2, 2, 64, 1);
        sc.delays.pop();
        sc.validate();
    }

    #[test]
    fn approach_labels_match_paper() {
        let labels: Vec<&str> = Approach::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Pt2Pt part",
                "Pt2Pt part - old",
                "Pt2Pt single",
                "Pt2Pt many",
                "RMA single - passive",
                "RMA many - passive",
                "RMA single - active",
                "RMA many - active",
            ]
        );
    }

    #[test]
    fn op_tables_are_complete() {
        for a in Approach::ALL {
            let s = a.sender_ops();
            let r = a.receiver_ops();
            assert!(!s[0].is_empty(), "{a:?} sender init must not be empty");
            assert!(!r[0].is_empty(), "{a:?} receiver init must not be empty");
        }
        // Spot-check against the paper's tables.
        assert_eq!(Approach::PtpPart.sender_ops()[2], "MPI_Pready");
        assert_eq!(
            Approach::RmaManyPassive.sender_ops()[2],
            "MPI_Put MPI_Win_flush"
        );
        assert_eq!(Approach::RmaSingleActive.receiver_ops()[1], "MPI_Post");
    }
}
