//! Point-to-point communication: immediate, blocking and persistent.
//!
//! Protocol selection follows the machine configuration: *short* and
//! *eager-bcopy* messages complete locally at injection and are delivered
//! through the link; *rendezvous* messages send an RTS and complete when
//! the receiver's CTS triggers the zero-copy transfer (paper §4.1 / \[10\]).

use std::cell::RefCell;
use std::rc::Rc;

use pcomm_netmodel::Protocol;
use pcomm_simcore::sync::Signal;
use pcomm_trace::EventKind;

use crate::comm::Comm;
use crate::tag::{Delivered, Posted, RendezvousHandle};
use crate::world::World;

/// A message payload description.
#[derive(Debug, Clone, Default)]
pub struct Msg {
    /// Payload size in bytes.
    pub bytes: usize,
    /// Optional real payload (timing-only benchmarks use `None`).
    pub data: Option<Vec<u8>>,
    /// Small out-of-band integer rider (control protocols).
    pub meta: u64,
}

impl Msg {
    /// A synthetic payload of `bytes` (no data carried).
    pub fn synthetic(bytes: usize) -> Msg {
        Msg {
            bytes,
            data: None,
            meta: 0,
        }
    }

    /// A real payload.
    pub fn bytes(data: Vec<u8>) -> Msg {
        Msg {
            bytes: data.len(),
            data: Some(data),
            meta: 0,
        }
    }

    /// A zero-byte control message carrying `meta`.
    pub fn ctrl(meta: u64) -> Msg {
        Msg {
            bytes: 0,
            data: None,
            meta,
        }
    }
}

/// Handle to an in-flight send.
pub struct SendRequest {
    done: Signal,
    world: World,
}

impl SendRequest {
    /// Complete the send (`MPI_Wait`); charges the request completion cost.
    pub async fn wait(self) {
        self.done.wait().await;
        let cost = self.world.jitter(self.world.config().o_request_complete);
        self.world.sim().sleep(cost).await;
    }

    /// Non-blocking completion test.
    pub fn test(&self) -> bool {
        self.done.is_set()
    }
}

/// Handle to an in-flight receive.
pub struct RecvRequest {
    ready: Signal,
    slot: Rc<RefCell<Option<Delivered>>>,
    world: World,
}

impl RecvRequest {
    /// Complete the receive and return the message; charges the
    /// receiver-side landing cost (match + copy for eager protocols).
    pub async fn wait(self) -> Delivered {
        self.ready.wait().await;
        let d = self
            .slot
            .borrow_mut()
            .take()
            .expect("ready receive must have a message");
        let cost = self.world.jitter(self.world.config().recv_cost(d.bytes));
        self.world.sim().sleep(cost).await;
        d
    }

    /// Non-blocking arrival test (`MPI_Test` flavour).
    pub fn test(&self) -> bool {
        self.ready.is_set()
    }

    /// The completion signal (for `wait_any`-style composition).
    pub(crate) fn ready_signal(&self) -> Signal {
        self.ready.clone()
    }
}

impl Comm {
    /// Immediate send. The call itself models the CPU injection: it
    /// acquires this communicator's VCI, pays the (possibly contended)
    /// occupancy, and returns a request.
    pub async fn isend(&self, dst: usize, tag: i64, msg: Msg) -> SendRequest {
        let world = self.world().clone();
        let cfg = world.config().clone();
        let proto = cfg.protocol_for(msg.bytes);
        let vci_idx = self.vci_idx();
        {
            let vci = world.vci(self.rank(), vci_idx);
            let t0 = world.trace_now_ns();
            let guard = vci.acquire().await;
            world.trace_span(t0, self.rank(), |wait_ns| EventKind::LockWait {
                shard: vci_idx as u16,
                wait_ns,
            });
            let penalty = cfg.contention_penalty(guard.waiters_behind());
            let occupancy = world.jitter(cfg.send_occupancy(msg.bytes)) + penalty;
            world.sim().sleep(occupancy).await;
        }
        let bytes = msg.bytes;
        match proto {
            Protocol::Short | Protocol::EagerBcopy => {
                world.trace(self.rank(), || EventKind::EagerSend {
                    dst: dst as u16,
                    shard: vci_idx as u16,
                    bytes: bytes as u64,
                });
            }
            Protocol::RendezvousZcopy => {
                world.trace(self.rank(), || EventKind::RdvSend {
                    dst: dst as u16,
                    shard: vci_idx as u16,
                    bytes: bytes as u64,
                });
            }
        }
        let done = Signal::new();
        let rendezvous = match proto {
            Protocol::Short | Protocol::EagerBcopy => {
                done.set(); // eager: local completion at injection
                None
            }
            Protocol::RendezvousZcopy => Some(RendezvousHandle {
                sender_done: done.clone(),
            }),
        };
        let d = Delivered {
            src: self.rank(),
            ctx: self.ctx(),
            tag,
            bytes: msg.bytes,
            data: msg.data,
            meta: msg.meta,
            rendezvous,
        };
        match proto {
            Protocol::Short | Protocol::EagerBcopy => world.transmit(self.rank(), dst, d),
            Protocol::RendezvousZcopy => world.transmit_ctrl(self.rank(), dst, d),
        }
        SendRequest { done, world }
    }

    /// Blocking send (`isend` + `wait`).
    pub async fn send(&self, dst: usize, tag: i64, msg: Msg) {
        self.isend(dst, tag, msg).await.wait().await;
    }

    /// Immediate receive. `src`/`tag` of `None` are wildcards.
    pub async fn irecv(&self, src: Option<usize>, tag: Option<i64>) -> RecvRequest {
        let world = self.world().clone();
        let setup = world.jitter(world.config().o_request_setup);
        world.sim().sleep(setup).await;
        let slot = Rc::new(RefCell::new(None));
        let ready = Signal::new();
        let posted = Posted {
            ctx: self.ctx(),
            src,
            tag,
            slot: Rc::clone(&slot),
            ready: ready.clone(),
        };
        let engine = world.engine(self.rank());
        if let Some(matched) = engine.post(posted) {
            world.finalize_match(self.rank(), matched);
        }
        RecvRequest { ready, slot, world }
    }

    /// Blocking receive.
    pub async fn recv(&self, src: Option<usize>, tag: Option<i64>) -> Delivered {
        self.irecv(src, tag).await.wait().await
    }

    /// Create a persistent send request (`MPI_Send_init`).
    pub fn send_init(&self, dst: usize, tag: i64, bytes: usize) -> PersistentSend {
        PersistentSend {
            comm: self.clone(),
            dst,
            tag,
            bytes,
            active: RefCell::new(None),
        }
    }

    /// Create a persistent receive request (`MPI_Recv_init`).
    pub fn recv_init(&self, src: usize, tag: i64) -> PersistentRecv {
        PersistentRecv {
            comm: self.clone(),
            src,
            tag,
            active: RefCell::new(None),
        }
    }
}

/// Persistent send request.
pub struct PersistentSend {
    comm: Comm,
    dst: usize,
    tag: i64,
    bytes: usize,
    active: RefCell<Option<SendRequest>>,
}

impl PersistentSend {
    /// `MPI_Start`: injects the message (charges request setup + the send
    /// occupancy on the communicator's VCI).
    pub async fn start(&self) {
        assert!(
            self.active.borrow().is_none(),
            "persistent send started twice without wait"
        );
        let world = self.comm.world().clone();
        let setup = world.jitter(world.config().o_request_setup);
        world.sim().sleep(setup).await;
        let req = self
            .comm
            .isend(self.dst, self.tag, Msg::synthetic(self.bytes))
            .await;
        *self.active.borrow_mut() = Some(req);
    }

    /// `MPI_Wait` on the active request.
    pub async fn wait(&self) {
        let req = self
            .active
            .borrow_mut()
            .take()
            .expect("persistent send not started");
        req.wait().await;
    }

    /// Payload size this request sends.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// Persistent receive request.
pub struct PersistentRecv {
    comm: Comm,
    src: usize,
    tag: i64,
    active: RefCell<Option<RecvRequest>>,
}

impl PersistentRecv {
    /// `MPI_Start`: posts the receive.
    pub async fn start(&self) {
        assert!(
            self.active.borrow().is_none(),
            "persistent recv started twice without wait"
        );
        let req = self.comm.irecv(Some(self.src), Some(self.tag)).await;
        *self.active.borrow_mut() = Some(req);
    }

    /// `MPI_Wait`: completes the receive.
    pub async fn wait(&self) -> Delivered {
        let req = self
            .active
            .borrow_mut()
            .take()
            .expect("persistent recv not started");
        req.wait().await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcomm_netmodel::MachineConfig;
    use pcomm_simcore::{Dur, Sim};

    fn setup(n_vcis: usize) -> (Sim, World) {
        let sim = Sim::new();
        let world = World::new(&sim, MachineConfig::meluxina_quiet(), 2, n_vcis, 1);
        (sim, world)
    }

    #[test]
    fn short_message_end_to_end_time() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let done_at = sim.spawn(async move {
            let d = r.recv(Some(0), Some(7)).await;
            assert_eq!(d.bytes, 16);
            r.world().sim().now()
        });
        sim.spawn(async move {
            s.send(1, 7, Msg::synthetic(16)).await;
        });
        sim.run();
        let t = done_at.try_take().unwrap().as_us_f64();
        // recv posted at 0.12 (setup); send: o_send 0.4 + wire(16B) 0.00064
        // + latency 1.22; recv landing o_recv 0.2 → ≈ 1.82us.
        assert!((t - 1.82064).abs() < 1e-6, "t = {t}");
    }

    #[test]
    fn eager_pays_copies_both_sides() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let bytes = 4096usize;
        let done_at = sim.spawn(async move {
            r.recv(Some(0), Some(0)).await;
            r.world().sim().now()
        });
        sim.spawn(async move {
            s.send(1, 0, Msg::synthetic(bytes)).await;
        });
        sim.run();
        let t = done_at.try_take().unwrap().as_us_f64();
        let copy_us = 4096.0 / 12e9 * 1e6; // ≈ 0.341us each side
        let wire_us = 4096.0 / 25e9 * 1e6; // ≈ 0.164us
        let expect = 0.4 + copy_us + wire_us + 1.22 + 0.2 + copy_us;
        assert!((t - expect).abs() < 1e-3, "t = {t}, expect {expect}");
    }

    #[test]
    fn rendezvous_waits_for_receiver() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let bytes = 1 << 20; // zcopy
        let send_done = sim.spawn(async move {
            let req = s.isend(1, 0, Msg::synthetic(bytes)).await;
            req.wait().await;
            s.world().sim().now()
        });
        let recv_done = sim.spawn({
            let r = r.clone();
            async move {
                // Receiver arrives late: the transfer cannot start before.
                r.world().sim().sleep(Dur::from_us(500)).await;
                r.recv(Some(0), Some(0)).await;
                r.world().sim().now()
            }
        });
        sim.run();
        let t_send = send_done.try_take().unwrap().as_us_f64();
        let t_recv = recv_done.try_take().unwrap().as_us_f64();
        // Wire time for 1 MiB ≈ 41.9us; transfer starts only after the
        // receiver posts at 500us.
        assert!(t_send > 500.0, "sender completed early: {t_send}");
        assert!(
            t_recv > t_send,
            "receiver completes after sender buffer free"
        );
        let wire_us = (1u64 << 20) as f64 / 25e9 * 1e6;
        // recv setup 0.3 + CTS o_ctrl 0.3 + latency + wire + latency +
        // recv landing 0.2, after the receiver posts at 500us.
        assert!(
            (t_recv - (500.0 + 0.3 + 0.3 + 1.22 + wire_us + 1.22 + 0.2)).abs() < 0.1,
            "t_recv = {t_recv}"
        );
    }

    #[test]
    fn eager_completes_locally_before_receiver_posts() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let send_done = sim.spawn(async move {
            let req = s.isend(1, 0, Msg::synthetic(512)).await;
            req.wait().await;
            s.world().sim().now()
        });
        sim.spawn(async move {
            r.world().sim().sleep(Dur::from_us(100)).await;
            r.recv(Some(0), Some(0)).await;
        });
        sim.run();
        let t = send_done.try_take().unwrap().as_us_f64();
        assert!(t < 1.0, "eager send must complete locally, took {t}us");
    }

    #[test]
    fn payload_data_is_carried() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let got = sim.spawn(async move { r.recv(None, None).await });
        sim.spawn(async move {
            s.send(1, 3, Msg::bytes(vec![1, 2, 3, 4])).await;
        });
        sim.run();
        let d = got.try_take().unwrap();
        assert_eq!(d.data.as_deref(), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(d.src, 0);
        assert_eq!(d.tag, 3);
    }

    #[test]
    fn same_vci_messages_arrive_in_order() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let order = sim.spawn(async move {
            let mut tags = Vec::new();
            for _ in 0..4 {
                tags.push(r.recv(Some(0), None).await.meta);
            }
            tags
        });
        sim.spawn(async move {
            for i in 0..4u64 {
                s.send(1, 9, Msg::ctrl(i)).await;
            }
        });
        sim.run();
        assert_eq!(order.try_take().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn vci_contention_serializes_concurrent_sends() {
        // 8 concurrent sends on 1 VCI vs 8 VCIs: the single-VCI case must
        // be significantly slower (serialization + contention penalty).
        fn run(n_vcis: usize) -> f64 {
            let (sim, world) = setup(n_vcis);
            let r = world.comm_world(1);
            for t in 0..8usize {
                let comm = world.comm_world(0).dup();
                sim.spawn(async move {
                    comm.send(1, t as i64, Msg::synthetic(64)).await;
                });
            }
            // Matching receiver comms, same dup order.
            for t in 0..8usize {
                let comm = r.dup();
                sim.spawn(async move {
                    comm.recv(Some(0), Some(t as i64)).await;
                });
            }
            sim.run();
            sim.now().as_us_f64()
        }
        let contended = run(1);
        let spread = run(8);
        assert!(
            contended > 2.0 * spread,
            "contended {contended}us vs spread {spread}us"
        );
    }

    #[test]
    fn persistent_requests_are_reusable() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let r = world.comm_world(1);
        let ps = Rc::new(s.send_init(1, 5, 256));
        let pr = Rc::new(r.recv_init(0, 5));
        let count = sim.spawn({
            let pr = Rc::clone(&pr);
            async move {
                let mut n = 0;
                for _ in 0..10 {
                    pr.start().await;
                    let d = pr.wait().await;
                    assert_eq!(d.bytes, 256);
                    n += 1;
                }
                n
            }
        });
        sim.spawn(async move {
            for _ in 0..10 {
                ps.start().await;
                ps.wait().await;
            }
        });
        sim.run();
        assert_eq!(count.try_take().unwrap(), 10);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        let (sim, world) = setup(1);
        let s = world.comm_world(0);
        let ps = s.send_init(1, 0, 8);
        sim.block_on(async move {
            ps.start().await;
            ps.start().await;
        });
    }
}
