//! Tag-matching engine: one per simulated rank.
//!
//! Implements the MPI matching rules used here: a receive matches the
//! oldest arrived (or arriving) message with equal context id, equal tag
//! (or any-tag) and equal source (or any-source). Arrivals that find no
//! posted receive go to the unexpected queue, as in MPICH.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use pcomm_simcore::sync::Signal;

/// A message as seen by the matching layer.
#[derive(Debug, Clone)]
pub struct Delivered {
    /// Source rank.
    pub src: usize,
    /// Communicator context id.
    pub ctx: u64,
    /// Tag.
    pub tag: i64,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Optional actual payload (synthetic benchmarks carry `None`).
    pub data: Option<Vec<u8>>,
    /// Small out-of-band integer (e.g. put-count in a "complete" control
    /// message, message count in a partitioned CTS).
    pub meta: u64,
    /// Set for rendezvous arrivals: the header (RTS) arrived, but the data
    /// transfer must still be scheduled by the world at match time.
    pub rendezvous: Option<RendezvousHandle>,
}

/// Completion hooks of an in-flight rendezvous transfer.
#[derive(Debug, Clone)]
pub struct RendezvousHandle {
    /// Set when the sender's buffer is free (data fully injected).
    pub sender_done: Signal,
}

/// A posted receive waiting for a match.
pub struct Posted {
    /// Matching criteria: context id.
    pub ctx: u64,
    /// Source rank, or `None` for any-source.
    pub src: Option<usize>,
    /// Tag, or `None` for any-tag.
    pub tag: Option<i64>,
    /// Where the matched message is placed.
    pub slot: Rc<RefCell<Option<Delivered>>>,
    /// Fired when the message (including data for rendezvous) is complete.
    pub ready: Signal,
}

impl Posted {
    fn matches(&self, d: &Delivered) -> bool {
        self.ctx == d.ctx
            && self.src.map(|s| s == d.src).unwrap_or(true)
            && self.tag.map(|t| t == d.tag).unwrap_or(true)
    }
}

#[derive(Default)]
struct EngineState {
    posted: VecDeque<Posted>,
    unexpected: VecDeque<Delivered>,
}

/// Per-rank tag-matching engine.
#[derive(Default)]
pub struct MatchEngine {
    state: RefCell<EngineState>,
}

impl MatchEngine {
    /// Create an empty engine.
    pub fn new() -> MatchEngine {
        MatchEngine::default()
    }

    /// An arrival: returns the matching posted receive if one exists,
    /// otherwise queues the message as unexpected.
    pub fn arrive(&self, d: Delivered) -> Option<Posted> {
        let mut s = self.state.borrow_mut();
        if let Some(idx) = s.posted.iter().position(|p| p.matches(&d)) {
            let p = s.posted.remove(idx).expect("index in range");
            drop(s);
            *p.slot.borrow_mut() = Some(d);
            Some(p)
        } else {
            s.unexpected.push_back(d);
            None
        }
    }

    /// Post a receive: if an unexpected message matches, it is moved into
    /// the posted slot and returned (the caller finalizes it — e.g.
    /// schedules the rendezvous data transfer). Otherwise the receive is
    /// queued.
    pub fn post(&self, p: Posted) -> Option<Posted> {
        let mut s = self.state.borrow_mut();
        if let Some(idx) = s.unexpected.iter().position(|d| p.matches(d)) {
            let d = s.unexpected.remove(idx).expect("index in range");
            drop(s);
            *p.slot.borrow_mut() = Some(d);
            Some(p)
        } else {
            s.posted.push_back(p);
            None
        }
    }

    /// Number of queued unexpected messages (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.state.borrow().unexpected.len()
    }

    /// Number of posted-but-unmatched receives (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.state.borrow().posted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, ctx: u64, tag: i64) -> Delivered {
        Delivered {
            src,
            ctx,
            tag,
            bytes: 8,
            data: None,
            meta: 0,
            rendezvous: None,
        }
    }

    fn recv(ctx: u64, src: Option<usize>, tag: Option<i64>) -> Posted {
        Posted {
            ctx,
            src,
            tag,
            slot: Rc::new(RefCell::new(None)),
            ready: Signal::new(),
        }
    }

    #[test]
    fn arrival_matches_posted() {
        let e = MatchEngine::new();
        let p = recv(0, Some(1), Some(7));
        let slot = Rc::clone(&p.slot);
        assert!(e.post(p).is_none());
        let matched = e.arrive(msg(1, 0, 7));
        assert!(matched.is_some());
        assert_eq!(slot.borrow().as_ref().unwrap().tag, 7);
        assert_eq!(e.posted_len(), 0);
        assert_eq!(e.unexpected_len(), 0);
    }

    #[test]
    fn unmatched_arrival_goes_unexpected() {
        let e = MatchEngine::new();
        assert!(e.arrive(msg(0, 0, 3)).is_none());
        assert_eq!(e.unexpected_len(), 1);
        // A later matching post picks it up.
        let p = recv(0, Some(0), Some(3));
        assert!(e.post(p).is_some());
        assert_eq!(e.unexpected_len(), 0);
    }

    #[test]
    fn context_isolation() {
        let e = MatchEngine::new();
        assert!(e.post(recv(1, None, None)).is_none());
        // Wrong context: goes unexpected despite wildcard src/tag.
        assert!(e.arrive(msg(0, 2, 0)).is_none());
        assert_eq!(e.posted_len(), 1);
        assert_eq!(e.unexpected_len(), 1);
    }

    #[test]
    fn tag_mismatch_not_matched() {
        let e = MatchEngine::new();
        assert!(e.post(recv(0, Some(0), Some(5))).is_none());
        assert!(e.arrive(msg(0, 0, 6)).is_none());
        assert_eq!(e.posted_len(), 1);
    }

    #[test]
    fn any_source_any_tag_match() {
        let e = MatchEngine::new();
        assert!(e.post(recv(0, None, None)).is_none());
        assert!(e.arrive(msg(42, 0, 99)).is_some());
    }

    #[test]
    fn fifo_among_posted() {
        let e = MatchEngine::new();
        let p1 = recv(0, None, None);
        let s1 = Rc::clone(&p1.slot);
        let p2 = recv(0, None, None);
        let s2 = Rc::clone(&p2.slot);
        e.post(p1);
        e.post(p2);
        e.arrive(msg(0, 0, 1));
        assert!(s1.borrow().is_some(), "oldest posted matches first");
        assert!(s2.borrow().is_none());
    }

    #[test]
    fn fifo_among_unexpected() {
        let e = MatchEngine::new();
        e.arrive(msg(0, 0, 1));
        e.arrive(msg(0, 0, 2));
        let p = recv(0, None, None);
        let s = Rc::clone(&p.slot);
        e.post(p);
        assert_eq!(s.borrow().as_ref().unwrap().tag, 1, "oldest arrival first");
    }

    #[test]
    fn specific_recv_skips_nonmatching_unexpected() {
        let e = MatchEngine::new();
        e.arrive(msg(0, 0, 1));
        e.arrive(msg(0, 0, 2));
        let p = recv(0, None, Some(2));
        let s = Rc::clone(&p.slot);
        e.post(p);
        assert_eq!(s.borrow().as_ref().unwrap().tag, 2);
        assert_eq!(e.unexpected_len(), 1);
    }
}
