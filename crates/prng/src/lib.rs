//! Deterministic pseudo-random number generation for the `pcomm` workspace.
//!
//! The discrete-event simulator must be bit-reproducible across runs and
//! platforms, so we implement the generators directly instead of pulling in
//! an external RNG crate:
//!
//! * [`SplitMix64`] — used to expand a 64-bit seed into generator state.
//! * [`Xoshiro256pp`] — the main generator (xoshiro256++ by Blackman and
//!   Vigna), fast and with a 2^256 − 1 period.
//! * [`Normal`] — Gaussian sampling via the Box–Muller transform, used for
//!   the paper's compute-noise model `N(1, (ε+δ)/2)` (Appendix A, eq. 7).

mod normal;
mod splitmix;
mod xoshiro;

pub use normal::Normal;
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// Convenience trait implemented by all generators in this crate.
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn next_bounded_respects_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn next_bounded_one_is_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(rng.next_bounded(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_bounded_zero_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        rng.next_bounded(0);
    }

    #[test]
    fn next_bounded_small_bound_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[rng.next_bounded(4) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow 5% deviation.
            assert!((9500..10500).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_per_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        Xoshiro256pp::seed_from_u64(5).shuffle(&mut a);
        Xoshiro256pp::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn range_f64_within_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.next_range_f64(-3.0, 7.5);
            assert!((-3.0..7.5).contains(&x));
        }
    }
}
