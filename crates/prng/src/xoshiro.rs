//! xoshiro256++ — Blackman & Vigna's all-purpose 64-bit generator.
//!
//! Period 2^256 − 1; passes BigCrush. Public-domain reference:
//! <https://prng.di.unimi.it/xoshiro256plusplus.c>.

use crate::{Rng64, SplitMix64};

/// xoshiro256++ generator. 256 bits of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Create from full 256-bit state. The state must not be all zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Self { s }
    }

    /// Seed from a single 64-bit value by expanding through SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 output of four consecutive words is never all-zero.
        Self { s }
    }

    /// Derive an independent child generator (for per-entity RNG streams).
    ///
    /// Uses the current generator to seed a fresh one; statistically
    /// independent enough for simulation noise streams.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Equivalent to 2^128 calls to `next_u64`; used to generate
    /// non-overlapping subsequences.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut t = [0u64; 4];
        for &jump_word in &JUMP {
            for b in 0..64 {
                if jump_word & (1u64 << b) != 0 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng64 for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs for state {1,2,3,4}, cross-checked against the
    /// reference C implementation.
    #[test]
    fn reference_vector_state_1234() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        // result = rotl(s0 + s3, 23) + s0 = rotl(1+4,23)+1 = 5<<23 + 1
        assert_eq!(rng.next_u64(), (5u64 << 23) + 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(99);
        let mut b = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn jump_changes_sequence() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = a;
        b.jump();
        let collisions = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = Xoshiro256pp::seed_from_u64(17);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let collisions = (0..128).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
