//! SplitMix64 — Steele, Lea & Flood's fixed-increment generator.
//!
//! Used only to expand user seeds into state for [`crate::Xoshiro256pp`],
//! following the recommendation of the xoshiro authors.

use crate::Rng64;

/// SplitMix64 generator. One 64-bit word of state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0, from the public-domain reference
    /// implementation (Vigna, <https://prng.di.unimi.it/splitmix64.c>).
    #[test]
    fn reference_vector_seed_zero() {
        let mut rng = SplitMix64::new(0);
        let expected: [u64; 5] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
