//! Gaussian sampling via the Box–Muller transform.
//!
//! The paper's Appendix A models per-partition compute time as
//! `µ · S · N(1, (ε+δ)/2)` (eq. 7); this module provides the `N(mean, sd)`
//! sampler used by `pcomm-workloads` and the simulator's noise injection.

use crate::Rng64;

/// A normal distribution `N(mean, sd)`.
///
/// Sampling uses Box–Muller, producing two variates per two uniforms; the
/// spare variate is cached so consecutive calls cost one uniform on average.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    sd: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Create a normal distribution. `sd` must be finite and non-negative.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd.is_finite() && sd >= 0.0, "sd must be finite and >= 0");
        assert!(mean.is_finite(), "mean must be finite");
        Self {
            mean,
            sd,
            spare: None,
        }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draw one sample.
    pub fn sample<R: Rng64>(&mut self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        let z = if let Some(z) = self.spare.take() {
            z
        } else {
            // Box–Muller: u1 in (0,1], u2 in [0,1).
            let u1 = 1.0 - rng.next_f64();
            let u2 = rng.next_f64();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        };
        self.mean + self.sd * z
    }

    /// Draw one sample truncated below at `lo` (resample-free clamping).
    ///
    /// The paper's compute times must be non-negative even under noise; the
    /// simulator clamps rather than resamples to keep the stream length
    /// deterministic regardless of parameters.
    pub fn sample_clamped_min<R: Rng64>(&mut self, rng: &mut R, lo: f64) -> f64 {
        self.sample(rng).max(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256pp;

    #[test]
    fn zero_sd_is_constant() {
        let mut n = Normal::new(3.5, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn sample_mean_and_sd_converge() {
        let mut n = Normal::new(10.0, 2.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let count = 200_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn roughly_symmetric_tails() {
        let mut n = Normal::new(0.0, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let count = 100_000;
        let above = (0..count).filter(|_| n.sample(&mut rng) > 0.0).count();
        let frac = above as f64 / count as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac above mean: {frac}");
    }

    #[test]
    fn clamped_never_below_floor() {
        let mut n = Normal::new(0.0, 5.0);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..10_000 {
            assert!(n.sample_clamped_min(&mut rng, 0.0) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "sd must be finite")]
    fn negative_sd_rejected() {
        let _ = Normal::new(0.0, -1.0);
    }

    #[test]
    fn within_five_sigma() {
        let mut n = Normal::new(0.0, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..100_000 {
            let x = n.sample(&mut rng);
            assert!(x.abs() < 6.0, "implausible tail sample {x}");
        }
    }
}
