//! The eight pipelined-communication strategies (paper Tables 1–2) on the
//! *real* runtime, for wall-clock benchmarking.
//!
//! Mirrors `pcomm_simmpi::strategies`, but with OS threads, real locks and
//! `Instant`-based timing. Compute delays are injected with calibrated
//! spin-waits ([`crate::sync::spin_for_micros`]), since `thread::sleep`
//! granularity is far above the µs scale of interest.

// Per-thread loops index shared per-thread state; keeping the index
// explicit mirrors the benchmark template's thread numbering.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::comm::Comm;
use crate::part::PartOptions;
use crate::sync::spin_for_micros;
use crate::Universe;

/// Exposure/done tags for the passive RMA strategies.
const TAG_EXPOSE: i64 = 50;
const TAG_DONE: i64 = 51;

/// The eight strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum RealApproach {
    PtpPart,
    PtpPartOld,
    PtpSingle,
    PtpMany,
    RmaSinglePassive,
    RmaManyPassive,
    RmaSingleActive,
    RmaManyActive,
}

impl RealApproach {
    /// All strategies in the paper's order.
    pub const ALL: [RealApproach; 8] = [
        RealApproach::PtpPart,
        RealApproach::PtpPartOld,
        RealApproach::PtpSingle,
        RealApproach::PtpMany,
        RealApproach::RmaSinglePassive,
        RealApproach::RmaManyPassive,
        RealApproach::RmaSingleActive,
        RealApproach::RmaManyActive,
    ];

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            RealApproach::PtpPart => "Pt2Pt part",
            RealApproach::PtpPartOld => "Pt2Pt part - old",
            RealApproach::PtpSingle => "Pt2Pt single",
            RealApproach::PtpMany => "Pt2Pt many",
            RealApproach::RmaSinglePassive => "RMA single - passive",
            RealApproach::RmaManyPassive => "RMA many - passive",
            RealApproach::RmaSingleActive => "RMA single - active",
            RealApproach::RmaManyActive => "RMA many - active",
        }
    }
}

/// A real-machine benchmark scenario.
#[derive(Debug, Clone)]
pub struct RealScenario {
    /// Worker threads per rank (N).
    pub n_threads: usize,
    /// Partitions per thread (θ).
    pub theta: usize,
    /// Bytes per partition.
    pub part_bytes: usize,
    /// Aggregation bound for the improved partitioned path.
    pub aggr_size: Option<usize>,
    /// Per-partition ready times in µs (spin-injected compute).
    pub delays_us: Vec<f64>,
    /// Match shards per rank (the VCI analogue).
    pub shards: usize,
    /// Iterations (the first is a warm-up the caller may discard).
    pub iterations: usize,
}

impl RealScenario {
    /// A delay-free scenario.
    pub fn immediate(
        n_threads: usize,
        theta: usize,
        part_bytes: usize,
        shards: usize,
        iterations: usize,
    ) -> RealScenario {
        RealScenario {
            n_threads,
            theta,
            part_bytes,
            aggr_size: None,
            delays_us: vec![0.0; n_threads * theta],
            shards,
            iterations,
        }
    }

    /// Total partitions.
    pub fn n_parts(&self) -> usize {
        self.n_threads * self.theta
    }

    /// Total buffer bytes.
    pub fn total_bytes(&self) -> usize {
        self.n_parts() * self.part_bytes
    }

    /// Largest injected delay (subtracted from measured times).
    pub fn max_delay_us(&self) -> f64 {
        self.delays_us.iter().copied().fold(0.0, f64::max)
    }

    /// `(partition, ready-µs)` pairs of thread `t` in processing order.
    pub fn parts_of_thread(&self, t: usize) -> Vec<(usize, f64)> {
        (0..self.theta)
            .map(|j| {
                let p = t + j * self.n_threads;
                (p, self.delays_us[p])
            })
            .collect()
    }
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an FNV-1a running hash.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Deterministic per-partition fill: every strategy writes the same
/// bytes for partition `p`, so on a clean run every strategy — and every
/// fabric, shared-memory or socket — produces the same digest.
fn fill_pattern(buf: &mut [u8], p: usize) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = (p.wrapping_mul(131).wrapping_add(i.wrapping_mul(7)) as u8) ^ 0x3D;
    }
}

/// Run `approach` under `scenario`; returns per-iteration communication
/// overhead (receiver-side time-to-solution minus injected compute),
/// including the warm-up iteration at index 0.
pub fn measure(approach: RealApproach, sc: &RealScenario) -> Vec<Duration> {
    run_strategy(approach, sc, false).0
}

/// Like [`measure`], but the sender writes a deterministic pattern and
/// the receiver folds every received byte (canonical partition order,
/// every iteration) into an FNV-1a digest returned alongside the
/// timings. All eight strategies yield the *same* digest for a given
/// scenario, so transport-agreement tests can compare digests across
/// strategies and fabrics. In a multiprocess run only the receiving
/// rank's process observes the real digest (the sender's is 0).
pub fn measure_validated(approach: RealApproach, sc: &RealScenario) -> (Vec<Duration>, u64) {
    run_strategy(approach, sc, true)
}

fn run_strategy(approach: RealApproach, sc: &RealScenario, validate: bool) -> (Vec<Duration>, u64) {
    assert_eq!(
        sc.delays_us.len(),
        sc.n_parts(),
        "delays must cover partitions"
    );
    let universe = Universe::new(2).with_shards(sc.shards);
    let mut out = universe
        .run(|comm| run_rank(approach, sc, comm, validate))
        .expect("measurement universe failed");
    out.pop().expect("receiver produces the timings")
}

fn run_rank(
    approach: RealApproach,
    sc: &RealScenario,
    comm: Comm,
    validate: bool,
) -> (Vec<Duration>, u64) {
    match approach {
        RealApproach::PtpPart => part_rank(sc, comm, false, validate),
        RealApproach::PtpPartOld => part_rank(sc, comm, true, validate),
        RealApproach::PtpSingle => single_rank(sc, comm, validate),
        RealApproach::PtpMany => many_rank(sc, comm, validate),
        RealApproach::RmaSinglePassive => rma_passive_rank(sc, comm, false, validate),
        RealApproach::RmaManyPassive => rma_passive_rank(sc, comm, true, validate),
        RealApproach::RmaSingleActive => rma_active_rank(sc, comm, false, validate),
        RealApproach::RmaManyActive => rma_active_rank(sc, comm, true, validate),
    }
}

/// Receiver-side bookkeeping: subtract injected compute from elapsed.
fn overhead(elapsed: Duration, sc: &RealScenario) -> Duration {
    elapsed.saturating_sub(Duration::from_nanos((sc.max_delay_us() * 1000.0) as u64))
}

// ---------------------------------------------------------------- part --

fn part_rank(sc: &RealScenario, comm: Comm, legacy: bool, validate: bool) -> (Vec<Duration>, u64) {
    let opts = PartOptions {
        aggr_size: if legacy { None } else { sc.aggr_size },
        legacy_single_message: legacy,
        ..PartOptions::default()
    };
    let mut times = Vec::with_capacity(sc.iterations);
    let mut digest = FNV_OFFSET;
    if comm.rank() == 0 {
        let ps = comm.psend_init(1, 0, sc.n_parts(), sc.part_bytes, opts);
        for _ in 0..sc.iterations {
            comm.barrier();
            ps.start();
            std::thread::scope(|s| {
                for t in 0..sc.n_threads {
                    let ps = ps.clone();
                    let parts = sc.parts_of_thread(t);
                    s.spawn(move || {
                        let t0 = Instant::now();
                        for (p, ready_us) in parts {
                            spin_for_micros(ready_us - t0.elapsed().as_secs_f64() * 1e6);
                            if validate {
                                ps.write_partition(p, |buf| fill_pattern(buf, p));
                            }
                            ps.pready(p);
                        }
                    });
                }
            });
            ps.wait();
        }
        (Vec::new(), 0)
    } else {
        let pr = comm.precv_init(0, 0, sc.n_parts(), sc.part_bytes, opts);
        for _ in 0..sc.iterations {
            comm.barrier();
            let t0 = Instant::now();
            pr.start();
            pr.wait();
            times.push(overhead(t0.elapsed(), sc));
            if validate {
                for p in 0..sc.n_parts() {
                    pr.read_partition(p, |b| digest = fnv1a(digest, b));
                }
            }
        }
        (times, digest)
    }
}

// -------------------------------------------------------------- single --

fn single_rank(sc: &RealScenario, comm: Comm, validate: bool) -> (Vec<Duration>, u64) {
    let mut times = Vec::with_capacity(sc.iterations);
    let mut digest = FNV_OFFSET;
    if comm.rank() == 0 {
        let ps = comm.send_init(1, 0, sc.total_bytes());
        if validate {
            ps.write(|b| {
                for (p, chunk) in b.chunks_mut(sc.part_bytes).enumerate() {
                    fill_pattern(chunk, p);
                }
            });
        }
        for _ in 0..sc.iterations {
            comm.barrier();
            std::thread::scope(|s| {
                for t in 0..sc.n_threads {
                    let parts = sc.parts_of_thread(t);
                    s.spawn(move || {
                        let t0 = Instant::now();
                        for (_, ready_us) in parts {
                            spin_for_micros(ready_us - t0.elapsed().as_secs_f64() * 1e6);
                        }
                    });
                }
            });
            ps.start();
            ps.wait();
        }
        (Vec::new(), 0)
    } else {
        let pr = comm.recv_init(0, 0, sc.total_bytes());
        for _ in 0..sc.iterations {
            comm.barrier();
            let t0 = Instant::now();
            pr.start();
            pr.wait();
            times.push(overhead(t0.elapsed(), sc));
            if validate {
                // Partitions are contiguous and ascending, so digesting
                // the whole buffer matches the canonical partition order.
                pr.read(|b| digest = fnv1a(digest, b));
            }
        }
        (times, digest)
    }
}

// ---------------------------------------------------------------- many --

fn many_rank(sc: &RealScenario, comm: Comm, validate: bool) -> (Vec<Duration>, u64) {
    let mut times = Vec::with_capacity(sc.iterations);
    let mut digest = FNV_OFFSET;
    if comm.rank() == 0 {
        let reqs: Vec<Vec<Arc<crate::p2p::PersistentSend>>> = (0..sc.n_threads)
            .map(|t| {
                let c = comm.dup();
                sc.parts_of_thread(t)
                    .iter()
                    .map(|(p, _)| {
                        let req = Arc::new(c.send_init(1, *p as i64, sc.part_bytes));
                        if validate {
                            req.write(|b| fill_pattern(b, *p));
                        }
                        req
                    })
                    .collect()
            })
            .collect();
        for _ in 0..sc.iterations {
            comm.barrier();
            std::thread::scope(|s| {
                for t in 0..sc.n_threads {
                    let row = &reqs[t];
                    let parts = sc.parts_of_thread(t);
                    s.spawn(move || {
                        let t0 = Instant::now();
                        for (j, (_, ready_us)) in parts.into_iter().enumerate() {
                            spin_for_micros(ready_us - t0.elapsed().as_secs_f64() * 1e6);
                            row[j].start();
                            row[j].wait();
                        }
                    });
                }
            });
        }
        (Vec::new(), 0)
    } else {
        let reqs: Vec<Vec<Arc<crate::p2p::PersistentRecv>>> = (0..sc.n_threads)
            .map(|t| {
                let c = comm.dup();
                sc.parts_of_thread(t)
                    .iter()
                    .map(|(p, _)| Arc::new(c.recv_init(0, *p as i64, sc.part_bytes)))
                    .collect()
            })
            .collect();
        for _ in 0..sc.iterations {
            comm.barrier();
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for row in reqs.iter() {
                    s.spawn(move || {
                        for r in row {
                            r.start();
                            r.wait();
                        }
                    });
                }
            });
            times.push(overhead(t0.elapsed(), sc));
            if validate {
                // Canonical partition order: partition p lives at
                // reqs[p % n_threads][p / n_threads].
                for p in 0..sc.n_parts() {
                    reqs[p % sc.n_threads][p / sc.n_threads].read(|b| digest = fnv1a(digest, b));
                }
            }
        }
        (times, digest)
    }
}

// ------------------------------------------------------------- passive --

/// Digest the target windows in canonical partition order: partition `p`
/// was put into window `p % n_wins` (per-thread windows) or window 0, at
/// offset `p * part_bytes`.
fn digest_target_wins(
    digest: &mut u64,
    wins: &[crate::rma::WinTarget],
    sc: &RealScenario,
    many: bool,
) {
    for p in 0..sc.n_parts() {
        let w = if many { p % sc.n_threads } else { 0 };
        wins[w].read(|b| {
            *digest = fnv1a(*digest, &b[p * sc.part_bytes..(p + 1) * sc.part_bytes]);
        });
    }
}

fn rma_passive_rank(
    sc: &RealScenario,
    comm: Comm,
    many: bool,
    validate: bool,
) -> (Vec<Duration>, u64) {
    let n_wins = if many { sc.n_threads } else { 1 };
    let mut times = Vec::with_capacity(sc.iterations);
    let mut digest = FNV_OFFSET;
    if comm.rank() == 0 {
        let wins: Vec<Arc<crate::rma::WinOrigin>> = (0..n_wins)
            .map(|_| Arc::new(comm.win_create_origin(1, sc.total_bytes())))
            .collect();
        for w in &wins {
            w.lock();
        }
        for _ in 0..sc.iterations {
            comm.barrier();
            let mut b = [0u8; 1];
            comm.recv_into(Some(1), Some(TAG_EXPOSE), &mut b);
            std::thread::scope(|s| {
                for t in 0..sc.n_threads {
                    let win = Arc::clone(&wins[if many { t } else { 0 }]);
                    let parts = sc.parts_of_thread(t);
                    let part_bytes = sc.part_bytes;
                    let mut payload = vec![1u8; part_bytes];
                    s.spawn(move || {
                        let t0 = Instant::now();
                        for (p, ready_us) in parts {
                            spin_for_micros(ready_us - t0.elapsed().as_secs_f64() * 1e6);
                            if validate {
                                fill_pattern(&mut payload, p);
                            }
                            win.put(p * part_bytes, &payload);
                        }
                        if win_is_per_thread(&win, many) {
                            win.flush();
                        }
                    });
                }
            });
            if !many {
                wins[0].flush();
            }
            comm.send(1, TAG_DONE, &[0]);
        }
        (Vec::new(), 0)
    } else {
        let wins: Vec<crate::rma::WinTarget> = (0..n_wins)
            .map(|_| comm.win_create_target(0, sc.total_bytes()))
            .collect();
        for _ in 0..sc.iterations {
            comm.barrier();
            let t0 = Instant::now();
            comm.send(0, TAG_EXPOSE, &[0]);
            let mut b = [0u8; 1];
            comm.recv_into(Some(0), Some(TAG_DONE), &mut b);
            times.push(overhead(t0.elapsed(), sc));
            if validate {
                digest_target_wins(&mut digest, &wins, sc, many);
            }
        }
        (times, digest)
    }
}

fn win_is_per_thread(_win: &crate::rma::WinOrigin, many: bool) -> bool {
    many
}

// -------------------------------------------------------------- active --

fn rma_active_rank(
    sc: &RealScenario,
    comm: Comm,
    many: bool,
    validate: bool,
) -> (Vec<Duration>, u64) {
    let n_wins = if many { sc.n_threads } else { 1 };
    let mut times = Vec::with_capacity(sc.iterations);
    let mut digest = FNV_OFFSET;
    if comm.rank() == 0 {
        let wins: Vec<Arc<crate::rma::WinOrigin>> = (0..n_wins)
            .map(|_| Arc::new(comm.win_create_origin(1, sc.total_bytes())))
            .collect();
        for _ in 0..sc.iterations {
            comm.barrier();
            if !many {
                wins[0].start_epoch();
            }
            std::thread::scope(|s| {
                for t in 0..sc.n_threads {
                    let win = Arc::clone(&wins[if many { t } else { 0 }]);
                    let parts = sc.parts_of_thread(t);
                    let part_bytes = sc.part_bytes;
                    let mut payload = vec![1u8; part_bytes];
                    let many_local = many;
                    s.spawn(move || {
                        if many_local {
                            win.start_epoch();
                        }
                        let t0 = Instant::now();
                        for (p, ready_us) in parts {
                            spin_for_micros(ready_us - t0.elapsed().as_secs_f64() * 1e6);
                            if validate {
                                fill_pattern(&mut payload, p);
                            }
                            win.put(p * part_bytes, &payload);
                        }
                        if many_local {
                            win.complete_epoch();
                        }
                    });
                }
            });
            if !many {
                wins[0].complete_epoch();
            }
        }
        (Vec::new(), 0)
    } else {
        let wins: Vec<crate::rma::WinTarget> = (0..n_wins)
            .map(|_| comm.win_create_target(0, sc.total_bytes()))
            .collect();
        for _ in 0..sc.iterations {
            comm.barrier();
            let t0 = Instant::now();
            for w in &wins {
                w.post();
            }
            for w in &wins {
                w.wait_epoch();
            }
            times.push(overhead(t0.elapsed(), sc));
            if validate {
                digest_target_wins(&mut digest, &wins, sc, many);
            }
        }
        (times, digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_complete_small_scenario() {
        let sc = RealScenario::immediate(2, 1, 256, 2, 3);
        for a in RealApproach::ALL {
            let times = measure(a, &sc);
            assert_eq!(times.len(), 3, "{a:?}");
            for t in &times {
                assert!(
                    *t < Duration::from_millis(100),
                    "{a:?}: implausible iteration {t:?}"
                );
            }
        }
    }

    #[test]
    fn all_strategies_complete_with_theta_and_aggregation() {
        let mut sc = RealScenario::immediate(2, 4, 128, 2, 2);
        sc.aggr_size = Some(512);
        for a in RealApproach::ALL {
            let times = measure(a, &sc);
            assert_eq!(times.len(), 2, "{a:?}");
        }
    }

    #[test]
    fn delays_are_subtracted() {
        // A 200µs injected delay must not inflate the reported overhead
        // (single-message bulk waits for it, then subtracts it).
        let mut sc = RealScenario::immediate(2, 1, 128, 1, 5);
        sc.delays_us[1] = 200.0;
        let times = measure(RealApproach::PtpSingle, &sc);
        // Wall-clock scheduling can inflate individual iterations; the
        // *best* iteration shows the true overhead, which must be far
        // below the injected 200µs delay.
        let best = times[1..].iter().min().unwrap();
        assert!(
            *best < Duration::from_micros(150),
            "delay leaked into overhead: best {best:?} of {times:?}"
        );
    }

    #[test]
    fn rendezvous_sized_scenario_completes() {
        let sc = RealScenario::immediate(2, 1, 256 * 1024, 2, 2);
        for a in [
            RealApproach::PtpPart,
            RealApproach::PtpSingle,
            RealApproach::PtpMany,
        ] {
            let times = measure(a, &sc);
            assert_eq!(times.len(), 2, "{a:?}");
        }
    }

    #[test]
    fn validated_strategies_agree_on_digest() {
        let sc = RealScenario::immediate(2, 2, 96, 2, 3);
        // The canonical digest: every iteration folds all partitions in
        // ascending order, each filled with the deterministic pattern.
        let mut expect = FNV_OFFSET;
        let mut buf = vec![0u8; sc.part_bytes];
        for _ in 0..sc.iterations {
            for p in 0..sc.n_parts() {
                fill_pattern(&mut buf, p);
                expect = fnv1a(expect, &buf);
            }
        }
        for a in RealApproach::ALL {
            let (times, digest) = measure_validated(a, &sc);
            assert_eq!(times.len(), sc.iterations, "{a:?}");
            assert_eq!(digest, expect, "{a:?} delivered corrupted bytes");
        }
    }

    #[test]
    fn labels_cover_all() {
        let labels: std::collections::HashSet<&str> =
            RealApproach::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
