//! `pcomm-core` — a real multithreaded in-process message-passing runtime
//! with MPI-4 partitioned-communication semantics.
//!
//! Where `pcomm-simmpi` reproduces the paper's *timing* in a simulator,
//! this crate reproduces its *mechanics* with actual OS threads, locks and
//! atomics, so the phenomena the paper measures — lock contention between
//! sending threads, per-partition atomic counter updates, the early-bird
//! effect of sending a partition the moment its last `pready` lands — are
//! physically real and measurable with `cargo bench`.
//!
//! # Model
//!
//! * A [`Universe`] hosts `n` ranks, each an OS thread, connected by a
//!   shared-memory fabric with tag matching.
//! * A [`Comm`] is a communicator: isolated matching context plus a *match
//!   shard* (the VCI analogue — a lane with its own lock). `dup()` maps
//!   the new communicator to the next shard round-robin, exactly the
//!   MPICH VCI trick the paper leans on (Figs. 5–6).
//! * Small messages travel eagerly (copy in, copy out — the bcopy path);
//!   large messages rendezvous (the sender parks until a receiver copies
//!   directly from its buffer — the zcopy path).
//! * [`part`] implements partitioned send/recv with real per-message
//!   atomic counters, gcd message-count negotiation, aggregation and
//!   shard round-robin (paper §3.2), plus the legacy single-message mode.
//! * [`rma`] implements windows over shared memory with active and
//!   passive synchronization.
//!
//! # Quickstart
//!
//! ```
//! use pcomm_core::{Universe, part::PartOptions};
//!
//! // Two ranks; rank 0 sends a 4-partition buffer to rank 1.
//! Universe::new(2).with_shards(4).run(|comm| {
//!     if comm.rank() == 0 {
//!         let psend = comm.psend_init(1, 7, 4, 1024, PartOptions::default());
//!         psend.start();
//!         for p in 0..4 {
//!             psend.write_partition(p, |buf| buf.fill(p as u8));
//!             psend.pready(p);
//!         }
//!         psend.wait();
//!     } else {
//!         let precv = comm.precv_init(0, 7, 4, 1024, PartOptions::default());
//!         precv.start();
//!         precv.wait();
//!         assert_eq!(precv.partition(2)[0], 2);
//!     }
//! }).unwrap();
//! ```
//!
//! Failure is data: [`Universe::run`] returns `Result<Vec<T>,
//! PcommError>`, and with a seeded [`FaultPlan`] (or `PCOMM_FAULTS` in
//! the environment) the fabric injects reproducible message drops,
//! delays, duplicates and reorders while a watchdog turns any hang into
//! a structured [`StallReport`].

#![warn(missing_docs)]

mod comm;
pub mod datatype;
mod error;
mod fabric;
pub mod hotpath;
pub mod p2p;
pub mod part;
pub mod rma;
pub mod strategies;
pub mod sync;
mod transport;
mod transport_ipc;
mod universe;

pub use comm::Comm;
pub use datatype::Datatype;
pub use error::{BlockedWait, PcommError, PeerSocketState, QueueEntry, StallReport};
pub use fabric::MsgInfo;
pub use universe::{Universe, DEFAULT_CHAOS_WATCHDOG_MS};

// Chaos configuration is shared with the simulator via `pcomm-trace`;
// re-export it so runtime users need only this crate.
pub use pcomm_trace::{FaultKind, FaultPlan};

// The verification layer's report type, returned by
// [`Universe::run_verified`]; re-exported so runtime users need only
// this crate.
pub use pcomm_verify::VerifyReport;
