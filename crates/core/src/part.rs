//! MPI-4 partitioned communication with real atomics (paper §3).
//!
//! The improved path (default) mirrors the paper's MPICH changes: the
//! partition buffer is split into internal messages — `gcd(N_send,
//! N_recv)` base messages, aggregated under
//! [`PartOptions::aggr_size`] — each guarded by an `AtomicI64` counter of
//! outstanding partitions. `pready(p)` decrements its message's counter;
//! the thread that brings it to zero injects the message *itself*, on a
//! match shard chosen round-robin by message index — a physically real
//! early-bird send. The legacy mode sends the whole buffer as a single
//! message only in `wait`, after a per-iteration CTS round-trip, exactly
//! the behaviour whose cost Fig. 4 exposes.

use std::cell::UnsafeCell;
use std::panic::panic_any;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use pcomm_trace::{EventKind, FaultKind};

use crate::sync::Mutex;

use crate::comm::Comm;
use crate::error::{PcommError, RankAborted};
use crate::fabric::{MsgInfo, PostedRecv};
use crate::sync::Completion;

/// Tag of the legacy clear-to-send control message.
const TAG_CTS: i64 = -1;
/// Tag of the legacy single data message.
const TAG_DATA: i64 = -2;

/// Options for a partitioned request.
#[derive(Debug, Clone, Default)]
pub struct PartOptions {
    /// Aggregation upper bound in bytes (`MPIR_CVAR_PART_AGGR_SIZE`
    /// analogue); `None` disables aggregation.
    pub aggr_size: Option<usize>,
    /// Use the legacy single-message path (CTS every iteration, no
    /// early-bird) instead of the improved multi-message path.
    pub legacy_single_message: bool,
    /// MPIX_Stream-style hint: `hint[p]` is the thread owning partition
    /// `p`; messages are injected on the owning thread's match shard
    /// instead of round-robin by message index (the paper's future-work
    /// fix for the inflexible θ > 1 attribution, §5).
    pub thread_hint: Option<Arc<Vec<usize>>>,
    /// Ablation: defer all sends to `wait()` (disables early-bird).
    pub defer_sends: bool,
}

/// One internal message of the improved path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgSpec {
    /// First sender partition contributing.
    pub first_spart: usize,
    /// Sender partitions contributing.
    pub n_sparts: usize,
    /// First receiver partition covered.
    pub first_rpart: usize,
    /// Receiver partitions covered.
    pub n_rparts: usize,
    /// Payload bytes.
    pub bytes: usize,
}

/// The negotiated partition→message mapping (paper §3.2.1).
///
/// Alongside the message list it carries dense partition→message index
/// tables, so the per-`pready` / per-`parrived` lookup is one bounds
/// check and one array read instead of a linear scan over messages —
/// `pready` sits on the application's inner loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgLayout {
    /// Messages in buffer order.
    pub msgs: Vec<MsgSpec>,
    /// `spart_msg[p]` = index of the message sender partition `p` feeds.
    spart_msg: Vec<u32>,
    /// `rpart_msg[p]` = index of the message covering receiver partition `p`.
    rpart_msg: Vec<u32>,
}

impl MsgLayout {
    fn from_msgs(msgs: Vec<MsgSpec>) -> MsgLayout {
        let n_sparts: usize = msgs.iter().map(|m| m.n_sparts).sum();
        let n_rparts: usize = msgs.iter().map(|m| m.n_rparts).sum();
        let mut spart_msg = vec![0u32; n_sparts];
        let mut rpart_msg = vec![0u32; n_rparts];
        for (i, m) in msgs.iter().enumerate() {
            for s in &mut spart_msg[m.first_spart..m.first_spart + m.n_sparts] {
                *s = i as u32;
            }
            for r in &mut rpart_msg[m.first_rpart..m.first_rpart + m.n_rparts] {
                *r = i as u32;
            }
        }
        MsgLayout {
            msgs,
            spart_msg,
            rpart_msg,
        }
    }

    /// Message index a sender partition contributes to (O(1)).
    pub fn msg_of_spart(&self, p: usize) -> usize {
        self.spart_msg
            .get(p)
            .copied()
            .expect("sender partition out of range") as usize
    }

    /// Message index covering a receiver partition (O(1)).
    pub fn msg_of_rpart(&self, p: usize) -> usize {
        self.rpart_msg
            .get(p)
            .copied()
            .expect("receiver partition out of range") as usize
    }

    /// Number of messages.
    pub fn n_msgs(&self) -> usize {
        self.msgs.len()
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Receiver-decided layout: `gcd` base count, then greedy aggregation of
/// consecutive messages under the `aggr_size` bound.
pub fn negotiate_layout(
    n_send: usize,
    n_recv: usize,
    send_part_bytes: usize,
    aggr_size: Option<usize>,
) -> MsgLayout {
    assert!(n_send >= 1 && n_recv >= 1, "partition counts must be >= 1");
    let g = gcd(n_send, n_recv);
    let sparts = n_send / g;
    let rparts = n_recv / g;
    let bytes = sparts * send_part_bytes;
    let mut msgs: Vec<MsgSpec> = Vec::with_capacity(g);
    for i in 0..g {
        let spec = MsgSpec {
            first_spart: i * sparts,
            n_sparts: sparts,
            first_rpart: i * rparts,
            n_rparts: rparts,
            bytes,
        };
        match (aggr_size, msgs.last_mut()) {
            (Some(limit), Some(prev)) if prev.bytes + spec.bytes <= limit => {
                prev.n_sparts += spec.n_sparts;
                prev.n_rparts += spec.n_rparts;
                prev.bytes += spec.bytes;
            }
            _ => msgs.push(spec),
        }
    }
    MsgLayout::from_msgs(msgs)
}

/// Per-partition buffer state machine.
const PART_WRITABLE: u8 = 0;
const PART_WRITING: u8 = 1;
const PART_READY: u8 = 2;

/// Shared-arena backing for a receive-side partition buffer: the
/// transport granted `len` bytes at `ptr` (grant `token`) inside the
/// ipc segment's partition arena for the pair with `src`, so the
/// sender's `pready` commits bytes straight into this buffer — no copy
/// on either side. Released back to the transport when the request
/// drops.
struct SegBacking {
    ptr: *mut u8,
    len: usize,
    token: u64,
    src: usize,
}

/// The partitioned buffer: contiguous storage with per-partition access
/// states that make the raw-pointer sharing sound. Backed by owned heap
/// memory, or — receive side on the ipc fabric — by a granted range of
/// the shared partition arena.
struct PartStorage {
    /// Owned storage; empty (and unused) when `seg` backs the buffer.
    data: UnsafeCell<Box<[u8]>>,
    seg: Option<SegBacking>,
    states: Vec<AtomicU8>,
    part_bytes: usize,
}

// SAFETY: all access to `data` is mediated by the per-partition state
// machine (WRITABLE→WRITING→WRITABLE→READY): writers hold WRITING
// exclusively; readers (message injection) only touch READY partitions,
// which can no longer be written this iteration.
unsafe impl Sync for PartStorage {}
unsafe impl Send for PartStorage {}

impl PartStorage {
    fn new(n_parts: usize, part_bytes: usize) -> PartStorage {
        PartStorage {
            data: UnsafeCell::new(vec![0u8; n_parts * part_bytes].into_boxed_slice()),
            seg: None,
            states: (0..n_parts).map(|_| AtomicU8::new(PART_WRITABLE)).collect(),
            part_bytes,
        }
    }

    /// Storage over a transport-granted shared-arena range (see
    /// [`SegBacking`]). Zeroed for parity with the heap constructor.
    fn new_in_segment(
        ptr: *mut u8,
        token: u64,
        src: usize,
        n_parts: usize,
        part_bytes: usize,
    ) -> PartStorage {
        let len = n_parts * part_bytes;
        // SAFETY: the transport granted `ptr..ptr+len` exclusively to
        // this storage until the grant is released on drop.
        unsafe {
            std::ptr::write_bytes(ptr, 0, len);
        }
        PartStorage {
            data: UnsafeCell::new(Vec::new().into_boxed_slice()),
            seg: Some(SegBacking {
                ptr,
                len,
                token,
                src,
            }),
            states: (0..n_parts).map(|_| AtomicU8::new(PART_WRITABLE)).collect(),
            part_bytes,
        }
    }

    /// The arena grant to return on drop, if segment-backed:
    /// `(src, token, len)`.
    fn seg_grant(&self) -> Option<(usize, u64, usize)> {
        self.seg.as_ref().map(|s| (s.src, s.token, s.len))
    }

    /// Base of the buffer, wherever it lives.
    fn base(&self) -> *mut u8 {
        match &self.seg {
            Some(s) => s.ptr,
            // SAFETY: taking a raw base pointer aliases nothing by
            // itself; all dereferences go through the state machine.
            None => unsafe { (*self.data.get()).as_mut_ptr() },
        }
    }

    fn reset(&self) {
        for s in &self.states {
            s.store(PART_WRITABLE, Ordering::Release);
        }
    }

    fn write_partition(&self, p: usize, f: impl FnOnce(&mut [u8])) {
        let s = &self.states[p];
        s.compare_exchange(
            PART_WRITABLE,
            PART_WRITING,
            Ordering::Acquire,
            Ordering::Relaxed,
        )
        .unwrap_or_else(|cur| {
            panic!("partition {p} not writable (state {cur}): already ready or being written")
        });
        let off = p * self.part_bytes;
        let slice =
            // SAFETY: WRITING grants exclusive access to this disjoint range.
            unsafe { std::slice::from_raw_parts_mut(self.base().add(off), self.part_bytes) };
        f(slice);
        s.store(PART_WRITABLE, Ordering::Release);
    }

    /// Transition a partition WRITABLE→READY. `Err(state)` when the
    /// partition is already READY (readied twice) or mid-write — the
    /// storage is left untouched either way, so the caller can surface
    /// the misuse without corrupting the iteration.
    fn try_mark_ready(&self, p: usize) -> Result<(), u8> {
        self.states[p]
            .compare_exchange(
                PART_WRITABLE,
                PART_READY,
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .map(|_| ())
    }

    /// A read-only view of a byte range whose partitions are all READY.
    ///
    /// # Safety
    /// Caller must ensure every partition in the range is READY (no
    /// writers) and remains READY while the slice is used.
    unsafe fn ready_slice(&self, byte_off: usize, len: usize) -> &[u8] {
        // SAFETY: bounds and aliasing forwarded from the caller's
        // contract (every covered partition READY for the lifetime).
        unsafe { std::slice::from_raw_parts(self.base().add(byte_off), len) }
    }

    /// Mutable view for the receive side (fabric writes while in flight).
    ///
    /// # Safety
    /// Caller must guarantee no concurrent access until completion.
    #[allow(clippy::mut_from_ref)]
    unsafe fn raw_range(&self, byte_off: usize, len: usize) -> &mut [u8] {
        // SAFETY: exclusivity forwarded from the caller's contract (the
        // fabric owns the range until its completion fires).
        unsafe { std::slice::from_raw_parts_mut(self.base().add(byte_off), len) }
    }

    fn read_partition(&self, p: usize) -> &[u8] {
        let off = p * self.part_bytes;
        // SAFETY: reads are only exposed by PrecvRequest after wait()
        // (iteration inactive — no writer exists) or, mid-iteration, via
        // the checked `read_partition` path after the covering message's
        // arrival signal was observed set. The fabric sets that signal
        // with Release *after* its last write into the range and the
        // probe loads it with Acquire, so the fabric's writes
        // happened-before this read and no writer touches the range
        // again until the next start().
        unsafe { std::slice::from_raw_parts(self.base().add(off), self.part_bytes) }
    }
}

struct PsendShared {
    comm: Comm,
    /// Interned verify request id (see [`Trace::verify_req_id`]); 0 when
    /// verification is off.
    vreq: u16,
    dst: usize,
    n_parts: usize,
    part_bytes: usize,
    layout: MsgLayout,
    legacy: bool,
    thread_hint: Option<Arc<Vec<usize>>>,
    defer_sends: bool,
    /// Wire streaming: the destination rank lives in another process and
    /// the request is on the improved path, so issued messages travel as
    /// `PartData` ranges on a per-iteration partitioned stream instead
    /// of per-message eager/rendezvous envelopes.
    stream: bool,
    /// The current iteration's stream id (valid while `started`).
    stream_id: AtomicU64,
    storage: PartStorage,
    counters: Vec<AtomicI64>,
    /// Persistent per-message send signals: `sent[m]` is set once message
    /// `m` is injected *and* its bytes are safely out of the partition
    /// buffer (eagerly at injection; for rendezvous, when the receiver's
    /// copy lands; for wire streaming, when the writer threads finish
    /// putting the message's span on the wire). Reset — never
    /// reallocated — by each `start()`, so the `pready`→`issue` hot path
    /// touches no lock and allocates nothing.
    sent: Vec<Arc<Completion>>,
    /// `issued[m]` is set once message `m` was handed to the fabric this
    /// iteration (the fabric may then hold a pointer into `storage`), so
    /// teardown knows exactly which `sent` signals it must drain.
    issued: Vec<AtomicBool>,
    started: AtomicBool,
    /// Iterations started so far; `iters - 1` is the current (or most
    /// recently completed) iteration, the `iter` of the verify events.
    iters: AtomicU64,
    /// Round counter for chaos `pready` jitter permutations.
    jitter_round: AtomicU64,
    /// Legacy: persistent CTS completion + envelope slot, re-armed and
    /// re-posted by each `start()`.
    cts_done: Arc<Completion>,
    cts_info: Arc<Mutex<Option<MsgInfo>>>,
}

impl Drop for PsendShared {
    fn drop(&mut self) {
        // Dropped mid-iteration (a rank unwinding on abort or a panic):
        // any issued rendezvous message pins a pointer into `storage` —
        // drain those signals (abort-aware) before the buffer is freed.
        if self.started.load(Ordering::Acquire) {
            for (m, sent) in self.sent.iter().enumerate() {
                if self.issued[m].load(Ordering::Acquire) {
                    self.comm.fabric().drain_completion(sent);
                }
            }
        }
    }
}

/// Sender-side partitioned request. Clone freely across the rank's
/// threads; `pready` is thread-safe.
#[derive(Clone)]
pub struct PsendRequest {
    inner: Arc<PsendShared>,
}

/// Emit the analysis-grade init events for one side of a partitioned
/// request: the request's shape plus one layout event per wire message,
/// so the verifier can map partitions to transfer accesses. Both sides
/// emit — a layout disagreement between them is itself a lint finding.
/// No-op unless the trace was built with verification on.
#[allow(clippy::too_many_arguments)] // one-shot plumbing of the init shape
fn emit_verify_init(
    comm: &Comm,
    req: u16,
    sender: bool,
    n_parts: usize,
    n_peer_parts: usize,
    legacy: bool,
    layout: &MsgLayout,
    total_bytes: usize,
) {
    let trace = comm.fabric().trace();
    if !trace.is_verify() {
        return;
    }
    let rank = comm.rank() as u16;
    let n_msgs = if legacy { 1 } else { layout.n_msgs() };
    trace.emit_verify(rank, || EventKind::VerifyPartInit {
        req,
        sender,
        parts: n_parts as u32,
        msgs: n_msgs as u32,
    });
    if legacy {
        // One message covering the whole buffer, sent in wait().
        let (n_sparts, n_rparts) = if sender {
            (n_parts, n_peer_parts)
        } else {
            (n_peer_parts, n_parts)
        };
        trace.emit_verify(rank, || EventKind::VerifyLayoutMsg {
            req,
            msg: 0,
            first_spart: 0,
            n_sparts: n_sparts as u16,
            first_rpart: 0,
            n_rparts: n_rparts as u16,
            bytes: total_bytes as u64,
        });
    } else {
        for (m, spec) in layout.msgs.iter().enumerate() {
            trace.emit_verify(rank, || EventKind::VerifyLayoutMsg {
                req,
                msg: m as u16,
                first_spart: spec.first_spart as u16,
                n_sparts: spec.n_sparts as u16,
                first_rpart: spec.first_rpart as u16,
                n_rparts: spec.n_rparts as u16,
                bytes: spec.bytes as u64,
            });
        }
    }
}

impl Comm {
    /// `MPI_Psend_init`: create a partitioned send of `n_parts` partitions
    /// of `part_bytes` each towards `dst`. The receiver must create the
    /// matching `precv_init` with the same tag and compatible options.
    pub fn psend_init(
        &self,
        dst: usize,
        tag: i64,
        n_parts: usize,
        part_bytes: usize,
        opts: PartOptions,
    ) -> PsendRequest {
        self.psend_init_general(dst, tag, n_parts, part_bytes, n_parts, opts)
    }

    /// `MPI_Psend_init` with a different partition count on the receiver
    /// side: the internal message count becomes `gcd(n_parts,
    /// n_recv_parts)` (paper §3.2.1). The total buffer sizes must match:
    /// `n_parts · part_bytes == n_recv_parts · recv_part_bytes`.
    pub fn psend_init_general(
        &self,
        dst: usize,
        tag: i64,
        n_parts: usize,
        part_bytes: usize,
        n_recv_parts: usize,
        opts: PartOptions,
    ) -> PsendRequest {
        assert!(n_parts >= 1 && part_bytes >= 1 && n_recv_parts >= 1);
        assert_eq!(
            (n_parts * part_bytes) % n_recv_parts,
            0,
            "total size must divide into receiver partitions"
        );
        if let Some(hint) = &opts.thread_hint {
            assert_eq!(
                hint.len(),
                n_parts,
                "thread hint must cover every partition"
            );
        }
        let layout = negotiate_layout(n_parts, n_recv_parts, part_bytes, opts.aggr_size);
        let part_comm = Comm::part_comm(self, tag);
        let n_msgs = layout.n_msgs();
        self.fabric()
            .trace()
            .emit(self.rank() as u16, || EventKind::AggrLayout {
                base_msgs: gcd(n_parts, n_recv_parts) as u16,
                msgs: n_msgs as u16,
                bytes_per_msg: layout.msgs[0].bytes as u64,
            });
        // The sender's rank disambiguates pairs sharing a (ctx, tag) —
        // e.g. a ring whose links all use one tag.
        let vreq = self
            .fabric()
            .trace()
            .verify_req_id(part_comm.ctx(), self.rank() as u16);
        emit_verify_init(
            &part_comm,
            vreq,
            true,
            n_parts,
            n_recv_parts,
            opts.legacy_single_message,
            &layout,
            n_parts * part_bytes,
        );
        PsendRequest {
            inner: Arc::new(PsendShared {
                comm: part_comm,
                vreq,
                dst,
                n_parts,
                part_bytes,
                layout,
                legacy: opts.legacy_single_message,
                thread_hint: opts.thread_hint.clone(),
                defer_sends: opts.defer_sends,
                stream: !opts.legacy_single_message && !self.fabric().is_local(dst),
                stream_id: AtomicU64::new(0),
                storage: PartStorage::new(n_parts, part_bytes),
                counters: (0..n_msgs).map(|_| AtomicI64::new(0)).collect(),
                sent: (0..n_msgs).map(|_| Completion::new()).collect(),
                issued: (0..n_msgs).map(|_| AtomicBool::new(false)).collect(),
                started: AtomicBool::new(false),
                iters: AtomicU64::new(0),
                jitter_round: AtomicU64::new(0),
                cts_done: Completion::new(),
                cts_info: Arc::new(Mutex::new(None)),
            }),
        }
    }

    /// `MPI_Precv_init`: the matching receive side.
    pub fn precv_init(
        &self,
        src: usize,
        tag: i64,
        n_parts: usize,
        part_bytes: usize,
        opts: PartOptions,
    ) -> PrecvRequest {
        self.precv_init_general(
            src,
            tag,
            n_parts,
            part_bytes,
            n_parts,
            n_parts * part_bytes / n_parts,
            opts,
        )
    }

    /// `MPI_Precv_init` with a different partition count on the sender
    /// side; `n_send_parts`/`send_part_bytes` describe the incoming
    /// layout (agreed during init, as in the improved MPICH protocol).
    #[allow(clippy::too_many_arguments)] // mirrors MPI_Precv_init's arity
    pub fn precv_init_general(
        &self,
        src: usize,
        tag: i64,
        n_parts: usize,
        part_bytes: usize,
        n_send_parts: usize,
        send_part_bytes: usize,
        opts: PartOptions,
    ) -> PrecvRequest {
        assert!(n_parts >= 1 && part_bytes >= 1);
        assert_eq!(
            n_parts * part_bytes,
            n_send_parts * send_part_bytes,
            "sender and receiver buffer sizes must agree"
        );
        let layout = negotiate_layout(n_send_parts, n_parts, send_part_bytes, opts.aggr_size);
        let part_comm = Comm::part_comm(self, tag);
        let n_msgs = layout.n_msgs();
        // Same id the sender interned: both sides key by the sender's rank.
        let vreq = self
            .fabric()
            .trace()
            .verify_req_id(part_comm.ctx(), src as u16);
        emit_verify_init(
            &part_comm,
            vreq,
            false,
            n_parts,
            n_send_parts,
            opts.legacy_single_message,
            &layout,
            n_parts * part_bytes,
        );
        let stream = !opts.legacy_single_message && !self.fabric().is_local(src);
        // On the ipc fabric, pin the destination inside the shared
        // partition arena when it fits: the sender then commits every
        // `pready` range directly into this buffer (true zero-copy).
        // Heap storage is the fallback everywhere else.
        let storage = if stream {
            match self.fabric().alloc_part_dest(src, n_parts * part_bytes) {
                Some((token, ptr)) => {
                    PartStorage::new_in_segment(ptr, token, src, n_parts, part_bytes)
                }
                None => PartStorage::new(n_parts, part_bytes),
            }
        } else {
            PartStorage::new(n_parts, part_bytes)
        };
        PrecvRequest {
            inner: Arc::new(PrecvShared {
                comm: part_comm,
                vreq,
                src,
                n_parts,
                part_bytes,
                layout,
                legacy: opts.legacy_single_message,
                stream,
                thread_hint: opts.thread_hint.clone(),
                storage,
                arrived: (0..n_msgs).map(|_| Completion::new_set()).collect(),
                infos: (0..n_msgs).map(|_| Arc::new(Mutex::new(None))).collect(),
                started: AtomicBool::new(false),
                iters: AtomicU64::new(0),
            }),
        }
    }

    fn part_comm(parent: &Comm, tag: i64) -> Comm {
        let ctx = parent.part_ctx(tag);
        let shard = parent.fabric().shard_of_ctx(ctx);
        parent.with_ctx(ctx, shard)
    }
}

impl PsendRequest {
    /// Number of internal messages.
    pub fn n_msgs(&self) -> usize {
        if self.inner.legacy {
            1
        } else {
            self.inner.layout.n_msgs()
        }
    }

    /// The negotiated layout.
    pub fn layout(&self) -> &MsgLayout {
        &self.inner.layout
    }

    /// Current iteration index for verify provenance (0 before the
    /// first `start`).
    fn cur_iter(&self) -> u32 {
        self.inner.iters.load(Ordering::Relaxed).saturating_sub(1) as u32
    }

    /// `MPI_Start`: arm the iteration.
    pub fn start(&self) {
        let s = &self.inner;
        assert!(
            !s.started.swap(true, Ordering::AcqRel),
            "partitioned send started twice"
        );
        let iter = s.iters.fetch_add(1, Ordering::Relaxed) as u32;
        s.comm
            .fabric()
            .trace()
            .emit_verify(s.comm.rank() as u16, || EventKind::VerifyStart {
                req: s.vreq,
                sender: true,
                iter,
                tid: pcomm_trace::current_tid(),
            });
        s.storage.reset();
        for issued in &s.issued {
            issued.store(false, Ordering::Release);
        }
        if s.legacy {
            // Re-arm the persistent CTS slots (quiescent: the previous
            // iteration's wait() returned) and post the receive; the data
            // send happens in wait().
            s.cts_done.reset();
            *s.cts_info.lock() = None;
            s.sent[0].reset();
            s.comm.fabric().post_recv(
                s.comm.rank(),
                s.comm.shard(),
                PostedRecv {
                    ctx: s.comm.ctx(),
                    src: Some(s.dst),
                    tag: Some(TAG_CTS),
                    dest_ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    dest_cap: 0,
                    info: Arc::clone(&s.cts_info),
                    completion: Arc::clone(&s.cts_done),
                    verify_msg: None,
                },
            );
            s.counters[0].store(s.n_parts as i64, Ordering::Release);
        } else {
            for (m, spec) in s.layout.msgs.iter().enumerate() {
                s.sent[m].reset();
                s.counters[m].store(spec.n_sparts as i64, Ordering::Release);
            }
            if s.stream {
                // Announce the whole buffer now so the receiver's CTS
                // can race the first pready — ranges stream the moment
                // both are in. Each message's byte span carries its
                // `sent` completion: the writer threads flip it when
                // the span is fully on the wire.
                let spans = s
                    .layout
                    .msgs
                    .iter()
                    .enumerate()
                    .map(|(m, spec)| crate::transport::SendSpan {
                        offset: spec.first_spart * s.part_bytes,
                        len: spec.bytes,
                        remaining: AtomicUsize::new(spec.bytes),
                        done: Arc::clone(&s.sent[m]),
                    })
                    .collect();
                let id = s.comm.fabric().part_stream_begin(
                    s.dst,
                    s.comm.ctx(),
                    s.n_parts * s.part_bytes,
                    spans,
                );
                s.stream_id.store(id, Ordering::Release);
                let trace = s.comm.fabric().trace();
                if trace.is_verify() {
                    let rank = s.comm.rank() as u16;
                    let (p16, stream) = (s.dst as u16, id as u32);
                    let total = (s.n_parts * s.part_bytes) as u64;
                    trace.emit_verify(rank, || EventKind::VerifyStreamRts {
                        peer: p16,
                        tx: true,
                        stream,
                        total_len: total,
                    });
                    // Tie this process's interned request id to the wire
                    // stream id, per message: the offline auditor joins
                    // both ranks' id spaces through these events.
                    for (m, spec) in s.layout.msgs.iter().enumerate() {
                        let (m16, off, len32) = (
                            m as u16,
                            (spec.first_spart * s.part_bytes) as u64,
                            spec.bytes as u32,
                        );
                        trace.emit_verify(rank, || EventKind::VerifyStreamMsg {
                            stream,
                            req: s.vreq,
                            msg: m16,
                            tx: true,
                            offset: off,
                            len: len32,
                        });
                    }
                }
            }
        }
    }

    /// Record `err` as the universe's failure and unwind this rank.
    ///
    /// Failure is recorded *before* the unwind starts, so every
    /// abort-aware drain that runs while locals drop is time-bounded.
    fn part_fail(&self, err: PcommError) -> ! {
        self.inner.comm.fabric().fail(err);
        panic_any(RankAborted);
    }

    /// Fill partition `p`'s bytes. Misuse (out of range, already
    /// readied) aborts the universe with [`PcommError::Misuse`].
    pub fn write_partition(&self, p: usize, f: impl FnOnce(&mut [u8])) {
        let s = &self.inner;
        if p >= s.n_parts {
            self.part_fail(PcommError::misuse(
                s.comm.rank(),
                format!(
                    "write_partition({p}) out of range: request has {} partitions",
                    s.n_parts
                ),
            ));
        }
        if s.storage.states[p].load(Ordering::Acquire) == PART_READY {
            self.part_fail(PcommError::misuse(
                s.comm.rank(),
                format!("write_partition({p}) after pready({p}): partition already readied"),
            ));
        }
        let trace = s.comm.fabric().trace();
        let t0 = trace.verify_now_ns();
        s.storage.write_partition(p, f);
        if let Some(start) = t0 {
            let dur = trace
                .verify_now_ns()
                .map_or(0, |now| now.saturating_sub(start));
            let iter = self.cur_iter();
            trace.emit_verify(s.comm.rank() as u16, || EventKind::VerifyWrite {
                req: s.vreq,
                part: p as u32,
                iter,
                tid: pcomm_trace::current_tid(),
                dur_ns: dur,
            });
        }
    }

    /// `MPI_Pready`: mark partition `p` ready. If this completes an
    /// internal message, the calling thread injects it (early-bird).
    ///
    /// Misuse aborts the universe with [`PcommError::Misuse`]; use
    /// [`PsendRequest::try_pready`] to detect it without aborting.
    pub fn pready(&self, p: usize) {
        if let Err(err) = self.try_pready(p) {
            self.part_fail(err);
        }
    }

    /// Fallible [`PsendRequest::pready`]: returns [`PcommError::Misuse`]
    /// for an inactive request, an out-of-range partition, or a
    /// partition readied twice — always *before* touching the message
    /// counters, so a rejected call leaves the iteration fully intact
    /// and the request usable.
    pub fn try_pready(&self, p: usize) -> Result<(), PcommError> {
        let s = &self.inner;
        if !s.started.load(Ordering::Acquire) {
            return Err(PcommError::misuse(
                s.comm.rank(),
                format!("pready({p}) on an inactive request (before start or after wait)"),
            ));
        }
        if p >= s.n_parts {
            return Err(PcommError::misuse(
                s.comm.rank(),
                format!(
                    "pready({p}) out of range: request has {} partitions",
                    s.n_parts
                ),
            ));
        }
        let trace = s.comm.fabric().trace();
        let pready_ns = trace.now_ns();
        trace.emit(s.comm.rank() as u16, || EventKind::Pready {
            part: p as u64,
        });
        // Before the state gate on purpose: a double pready leaves two
        // VerifyPready events for the lint pass to find.
        trace.emit_verify(s.comm.rank() as u16, || EventKind::VerifyPready {
            req: s.vreq,
            part: p as u32,
            iter: self.cur_iter(),
            tid: pcomm_trace::current_tid(),
        });
        if let Err(state) = s.storage.try_mark_ready(p) {
            let why = if state == PART_WRITING {
                "still being written"
            } else {
                "readied twice"
            };
            return Err(PcommError::misuse(
                s.comm.rank(),
                format!("pready({p}): partition {why}"),
            ));
        }
        // The CAS above is the sole gate to the counters: a duplicate or
        // out-of-range pready can no longer skew them.
        if s.legacy {
            let left = s.counters[0].fetch_sub(1, Ordering::AcqRel) - 1;
            debug_assert!(left >= 0, "counter underflow despite state gate");
            return Ok(());
        }
        let m = s.layout.msg_of_spart(p);
        let left = s.counters[m].fetch_sub(1, Ordering::AcqRel) - 1;
        debug_assert!(left >= 0, "counter underflow despite state gate");
        if left == 0 && !s.defer_sends {
            self.issue(m, pready_ns);
        }
        Ok(())
    }

    /// `MPI_Pready_range`: mark partitions `lo..=hi` ready, in order
    /// (under chaos `pready` jitter, in a seeded permuted order).
    pub fn pready_range(&self, lo: usize, hi: usize) {
        if let Err(err) = self.try_pready_range(lo, hi) {
            self.part_fail(err);
        }
    }

    /// Fallible [`PsendRequest::pready_range`]. Stops at the first
    /// misuse; partitions already readied by the call stay readied.
    pub fn try_pready_range(&self, lo: usize, hi: usize) -> Result<(), PcommError> {
        if lo > hi {
            return Err(PcommError::misuse(
                self.inner.comm.rank(),
                format!("pready_range({lo}, {hi}): empty or inverted range"),
            ));
        }
        let parts: Vec<usize> = (lo..=hi).collect();
        self.pready_permuted(&parts)
    }

    /// `MPI_Pready_list`: mark the listed partitions ready, in order
    /// (under chaos `pready` jitter, in a seeded permuted order).
    pub fn pready_list(&self, parts: &[usize]) {
        if let Err(err) = self.try_pready_list(parts) {
            self.part_fail(err);
        }
    }

    /// Fallible [`PsendRequest::pready_list`]. Stops at the first
    /// misuse; partitions already readied by the call stay readied.
    pub fn try_pready_list(&self, parts: &[usize]) -> Result<(), PcommError> {
        self.pready_permuted(parts)
    }

    /// Ready `parts`, permuting the issue order when the fault plan's
    /// `pready` jitter is on — the reordering stress the paper's
    /// early-bird path must tolerate (any pready may complete a message).
    fn pready_permuted(&self, parts: &[usize]) -> Result<(), PcommError> {
        let s = &self.inner;
        if let Some(plan) = s.comm.fabric().fault_plan() {
            if plan.jitter_pready && parts.len() > 1 {
                let round = s.jitter_round.fetch_add(1, Ordering::Relaxed);
                let order = plan.jitter_order(s.comm.rank(), round, parts.len());
                s.comm
                    .fabric()
                    .trace()
                    .emit(s.comm.rank() as u16, || EventKind::FaultInjected {
                        fault: FaultKind::PreadyJitter,
                        dst: s.dst as u16,
                        tag: 0,
                        arg: round,
                    });
                for &i in &order {
                    self.try_pready(parts[i])?;
                }
                return Ok(());
            }
        }
        for &p in parts {
            self.try_pready(p)?;
        }
        Ok(())
    }

    /// Inject internal message `m`. `pready_ns` is the trace timestamp of
    /// the completing `pready` (None on the deferred-send path, which is
    /// not an early-bird send).
    fn issue(&self, m: usize, pready_ns: Option<u64>) {
        let s = &self.inner;
        let spec = s.layout.msgs[m];
        let byte_off = spec.first_spart * s.part_bytes;
        let shard = match &s.thread_hint {
            // Round-robin message→shard attribution (paper §3.2.2).
            None => m % s.comm.n_shards(),
            // Stream hint: the owning thread's shard.
            Some(hint) => hint[spec.first_spart] % s.comm.n_shards(),
        };
        // SAFETY: every partition of message m is READY (its counter hit
        // zero) and stays READY until wait() resets the iteration; the
        // rendezvous pin is released only by `sent[m]`, which the next
        // start() observes before resetting the storage.
        let data = unsafe { s.storage.ready_slice(byte_off, spec.bytes) };
        // The transfer's read of the send partitions, for the analyzer.
        s.comm
            .fabric()
            .trace()
            .emit_verify(s.comm.rank() as u16, || EventKind::VerifyMsgSend {
                req: s.vreq,
                msg: m as u16,
                iter: self.cur_iter(),
                tid: pcomm_trace::current_tid(),
            });
        // Marked before the fabric sees the pointer: teardown must drain
        // `sent[m]` whenever the fabric might hold a reference.
        s.issued[m].store(true, Ordering::Release);
        if s.stream {
            // Wire streaming: the range is pinned into the stream's
            // aggregation window — no copy, no per-message envelope, no
            // CTS wait on this path. The writer thread flips `sent[m]`
            // once the message's whole span is on the wire.
            s.comm.fabric().part_stream_send(
                s.dst,
                s.comm.rank(),
                s.comm.ctx(),
                m as i64,
                s.stream_id.load(Ordering::Acquire),
                byte_off as u64,
                data,
                spec.n_sparts as u16,
            );
        } else {
            s.comm.fabric().send_raw_signal(
                s.dst,
                shard,
                s.comm.ctx(),
                s.comm.rank(),
                m as i64,
                data,
                &s.sent[m],
            );
        }
        if let Some(t0) = pready_ns {
            let trace = s.comm.fabric().trace();
            let gap_ns = trace.now_ns().map_or(0, |now| now.saturating_sub(t0));
            trace.emit(s.comm.rank() as u16, || EventKind::EarlyBird {
                msg: m as u16,
                shard: shard as u16,
                bytes: spec.bytes as u64,
                gap_ns,
            });
        }
    }

    /// `MPI_Wait`: complete the iteration. In legacy mode this waits for
    /// the CTS, then sends the whole buffer as one message.
    pub fn wait(&self) {
        let s = &self.inner;
        assert!(s.started.load(Ordering::Acquire), "wait before start");
        let trace = s.comm.fabric().trace();
        let rank = s.comm.rank() as u16;
        let t_wait = trace.now_ns();
        if s.legacy {
            assert_eq!(
                s.counters[0].load(Ordering::Acquire),
                0,
                "legacy wait requires all partitions ready"
            );
            let t_cts = trace.now_ns();
            s.comm.fabric().wait_on(&s.cts_done, s.comm.rank(), || {
                (
                    format!("partitioned send CTS wait(dst={})", s.dst),
                    Some(TAG_CTS),
                    Some(s.dst),
                )
            });
            trace.emit_span(t_cts, rank, |start, dur| {
                EventKind::CtsWait {
                    peer: s.dst as u16,
                    wait_ns: dur,
                }
                .at(start)
            });
            let total = s.n_parts * s.part_bytes;
            // SAFETY: all partitions READY; exclusive until reset.
            let data = unsafe { s.storage.ready_slice(0, total) };
            trace.emit_verify(rank, || EventKind::VerifyMsgSend {
                req: s.vreq,
                msg: 0,
                iter: self.cur_iter(),
                tid: pcomm_trace::current_tid(),
            });
            s.issued[0].store(true, Ordering::Release);
            s.comm.fabric().send_raw_signal(
                s.dst,
                s.comm.shard(),
                s.comm.ctx(),
                s.comm.rank(),
                TAG_DATA,
                data,
                &s.sent[0],
            );
            s.comm.fabric().wait_on(&s.sent[0], s.comm.rank(), || {
                (
                    format!("partitioned send data wait(dst={})", s.dst),
                    Some(TAG_DATA),
                    Some(s.dst),
                )
            });
        } else {
            if s.defer_sends {
                for m in 0..s.layout.n_msgs() {
                    assert_eq!(
                        s.counters[m].load(Ordering::Acquire),
                        0,
                        "deferred wait requires all partitions ready"
                    );
                    self.issue(m, None);
                }
            }
            // `sent[m]` covers both "issued" and "buffer reusable":
            // eager and stream sends set it at injection, rendezvous on
            // remote copy.
            for (m, sent) in s.sent.iter().enumerate() {
                s.comm.fabric().wait_on(sent, s.comm.rank(), || {
                    (
                        format!("partitioned send wait(dst={}, msg={m})", s.dst),
                        Some(m as i64),
                        Some(s.dst),
                    )
                });
            }
        }
        trace.emit_span(t_wait, rank, |start, dur| {
            EventKind::PartWait {
                msgs: self.n_msgs() as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        trace.emit_verify(rank, || EventKind::VerifyWaitDone {
            req: s.vreq,
            sender: true,
            iter: self.cur_iter(),
            tid: pcomm_trace::current_tid(),
        });
        s.started.store(false, Ordering::Release);
    }
}

struct PrecvShared {
    comm: Comm,
    /// Interned verify request id, agreed with the sender side.
    vreq: u16,
    src: usize,
    n_parts: usize,
    part_bytes: usize,
    layout: MsgLayout,
    legacy: bool,
    /// Wire streaming: remote peer on the improved path. `start()` then
    /// hands the whole pinned buffer to the transport instead of posting
    /// per-message receives.
    stream: bool,
    thread_hint: Option<Arc<Vec<usize>>>,
    storage: PartStorage,
    /// Persistent per-message arrival signals: created pre-set so probing
    /// an *inactive* request reports completion (MPI's convention for
    /// inactive persistent requests), reset by `start()` and set by the
    /// fabric when message `m` lands. `parrived` is thus a table lookup
    /// plus a single atomic load — no lock, ever.
    arrived: Vec<Arc<Completion>>,
    /// Persistent envelope slots handed to the fabric with each post.
    infos: Vec<Arc<Mutex<Option<MsgInfo>>>>,
    started: AtomicBool,
    /// Iterations started so far (verify provenance, as on the send side).
    iters: AtomicU64,
}

impl Drop for PrecvShared {
    fn drop(&mut self) {
        // Dropped mid-iteration: every posted receive holds a raw
        // pointer into `storage` — drain the arrival signals
        // (abort-aware) before the buffer is freed. Signals the
        // iteration never re-armed are still set and drain instantly.
        if self.started.load(Ordering::Acquire) {
            for arrived in &self.arrived {
                self.comm.fabric().drain_completion(arrived);
            }
        }
        // Hand a shared-arena destination back to the transport (no-op
        // for heap storage). After the drains above, no commit can still
        // target the range.
        if let Some((src, token, len)) = self.storage.seg_grant() {
            self.comm.fabric().release_part_dest(src, token, len);
        }
    }
}

/// Receiver-side partitioned request.
#[derive(Clone)]
pub struct PrecvRequest {
    inner: Arc<PrecvShared>,
}

impl PrecvRequest {
    /// Number of internal messages.
    pub fn n_msgs(&self) -> usize {
        if self.inner.legacy {
            1
        } else {
            self.inner.layout.n_msgs()
        }
    }

    /// Current iteration index for verify provenance (0 before the
    /// first `start`).
    fn cur_iter(&self) -> u32 {
        self.inner.iters.load(Ordering::Relaxed).saturating_sub(1) as u32
    }

    /// `MPI_Start`: post the internal receives (improved) or send the CTS
    /// and post the single data receive (legacy).
    pub fn start(&self) {
        let s = &self.inner;
        assert!(
            !s.started.swap(true, Ordering::AcqRel),
            "partitioned recv started twice"
        );
        let iter = s.iters.fetch_add(1, Ordering::Relaxed) as u32;
        s.comm
            .fabric()
            .trace()
            .emit_verify(s.comm.rank() as u16, || EventKind::VerifyStart {
                req: s.vreq,
                sender: false,
                iter,
                tid: pcomm_trace::current_tid(),
            });
        if s.legacy {
            // Re-arm the persistent slots *before* posting: a fulfilled
            // post sets `arrived[0]` immediately when the data message is
            // already parked in the unexpected queue.
            s.arrived[0].reset();
            *s.infos[0].lock() = None;
            s.comm.fabric().send_raw(
                s.src,
                s.comm.shard(),
                s.comm.ctx(),
                s.comm.rank(),
                TAG_CTS,
                &[],
            );
            let total = s.n_parts * s.part_bytes;
            // SAFETY: buffer exclusively owned by the fabric until wait().
            let buf = unsafe { s.storage.raw_range(0, total) };
            s.comm.fabric().post_recv(
                s.comm.rank(),
                s.comm.shard(),
                PostedRecv {
                    ctx: s.comm.ctx(),
                    src: Some(s.src),
                    tag: Some(TAG_DATA),
                    dest_ptr: buf.as_mut_ptr(),
                    dest_cap: buf.len(),
                    info: Arc::clone(&s.infos[0]),
                    completion: Arc::clone(&s.arrived[0]),
                    verify_msg: Some((s.vreq, 0)),
                },
            );
        } else if s.stream {
            // Streaming path: hand the whole pinned buffer to the
            // transport once; PartData ranges commit straight into it and
            // flip each message's `arrived` as its bytes land.
            let mut msgs = Vec::with_capacity(s.layout.msgs.len());
            for (m, spec) in s.layout.msgs.iter().enumerate() {
                s.arrived[m].reset();
                *s.infos[m].lock() = None;
                msgs.push(crate::transport::PartStreamMsg {
                    offset: spec.first_rpart * s.part_bytes,
                    len: spec.bytes,
                    remaining: AtomicUsize::new(spec.bytes),
                    completion: Arc::clone(&s.arrived[m]),
                    info: Arc::clone(&s.infos[m]),
                    verify_msg: Some((s.vreq, m as u16)),
                    tag: m as i64,
                });
            }
            let total = s.n_parts * s.part_bytes;
            // SAFETY: buffer exclusively owned by the fabric until wait().
            let buf = unsafe { s.storage.raw_range(0, total) };
            s.comm.fabric().part_stream_post(
                s.src,
                s.comm.ctx(),
                crate::transport::PartStreamRecv {
                    base: buf.as_mut_ptr(),
                    total_len: total,
                    msgs,
                },
            );
        } else {
            for (m, spec) in s.layout.msgs.iter().enumerate() {
                let byte_off = spec.first_rpart * s.part_bytes;
                let shard = match &s.thread_hint {
                    None => m % s.comm.n_shards(),
                    Some(hint) => hint[spec.first_spart] % s.comm.n_shards(),
                };
                s.arrived[m].reset();
                *s.infos[m].lock() = None;
                // SAFETY: disjoint ranges, fabric-exclusive until wait().
                let buf = unsafe { s.storage.raw_range(byte_off, spec.bytes) };
                s.comm.fabric().post_recv(
                    s.comm.rank(),
                    shard,
                    PostedRecv {
                        ctx: s.comm.ctx(),
                        src: Some(s.src),
                        tag: Some(m as i64),
                        dest_ptr: buf.as_mut_ptr(),
                        dest_cap: buf.len(),
                        info: Arc::clone(&s.infos[m]),
                        completion: Arc::clone(&s.arrived[m]),
                        verify_msg: Some((s.vreq, m as u16)),
                    },
                );
            }
        }
    }

    /// `MPI_Parrived`: has receiver partition `p` landed?
    ///
    /// Hot path: an O(1) partition→message table lookup plus one atomic
    /// load on the message's persistent arrival signal — no lock is taken
    /// whether the answer is yes or no. Probing an inactive request
    /// (before the first `start()` or after `wait()`) reports `true`, the
    /// MPI convention for inactive persistent requests.
    pub fn parrived(&self, p: usize) -> bool {
        match self.try_parrived(p) {
            Ok(arrived) => arrived,
            Err(err) => {
                self.inner.comm.fabric().fail(err);
                panic_any(RankAborted);
            }
        }
    }

    /// Fallible [`PrecvRequest::parrived`]: an out-of-range partition
    /// returns [`PcommError::Misuse`] instead of aborting, and the
    /// request stays usable. The success path is identical to
    /// `parrived` — one bounds check, one table lookup, one atomic load.
    pub fn try_parrived(&self, p: usize) -> Result<bool, PcommError> {
        let s = &self.inner;
        if p >= s.n_parts {
            return Err(PcommError::misuse(
                s.comm.rank(),
                format!(
                    "parrived({p}) out of range: request has {} partitions",
                    s.n_parts
                ),
            ));
        }
        let m = if s.legacy {
            0
        } else {
            s.layout.msg_of_rpart(p)
        };
        let arrived = s.arrived[m].is_set();
        s.comm
            .fabric()
            .trace()
            .emit_verify(s.comm.rank() as u16, || EventKind::VerifyParrived {
                req: s.vreq,
                part: p as u32,
                iter: self.cur_iter(),
                tid: pcomm_trace::current_tid(),
                arrived,
            });
        Ok(arrived)
    }

    /// `MPI_Wait`: block until every internal message landed.
    pub fn wait(&self) {
        let s = &self.inner;
        assert!(s.started.load(Ordering::Acquire), "wait before start");
        let trace = s.comm.fabric().trace();
        let t_wait = trace.now_ns();
        let n = if s.legacy { 1 } else { s.layout.n_msgs() };
        for m in 0..n {
            s.comm.fabric().wait_on(&s.arrived[m], s.comm.rank(), || {
                (
                    format!("partitioned recv wait(src={}, msg={m})", s.src),
                    Some(m as i64),
                    Some(s.src),
                )
            });
        }
        trace.emit_span(t_wait, s.comm.rank() as u16, |start, dur| {
            EventKind::PartWait {
                msgs: n as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        trace.emit_verify(s.comm.rank() as u16, || EventKind::VerifyWaitDone {
            req: s.vreq,
            sender: false,
            iter: self.cur_iter(),
            tid: pcomm_trace::current_tid(),
        });
        s.started.store(false, Ordering::Release);
    }

    /// Read partition `p`'s bytes (after `wait`).
    pub fn partition(&self, p: usize) -> &[u8] {
        let s = &self.inner;
        assert!(
            !s.started.load(Ordering::Acquire),
            "cannot read partitions while an iteration is active"
        );
        assert!(p < s.n_parts, "partition out of range");
        s.comm
            .fabric()
            .trace()
            .emit_verify(s.comm.rank() as u16, || EventKind::VerifyRead {
                req: s.vreq,
                part: p as u32,
                iter: self.cur_iter(),
                tid: pcomm_trace::current_tid(),
                dur_ns: 0,
            });
        s.storage.read_partition(p)
    }

    /// Checked read of partition `p`: the consumer-overlap access path.
    ///
    /// Unlike [`partition`](PrecvRequest::partition) this is legal *while
    /// the iteration is active*, provided the covering message has landed
    /// (`parrived(p)` observed `true` establishes the ordering; this
    /// method re-checks the arrival signal itself, so a call without the
    /// prior probe is still memory-safe). Reading a partition whose
    /// message has not arrived aborts the universe with
    /// [`PcommError::Misuse`] — that access would race the fabric's copy.
    pub fn read_partition(&self, p: usize, f: impl FnOnce(&[u8])) {
        let s = &self.inner;
        if p >= s.n_parts {
            s.comm.fabric().fail(PcommError::misuse(
                s.comm.rank(),
                format!(
                    "read_partition({p}) out of range: request has {} partitions",
                    s.n_parts
                ),
            ));
            panic_any(RankAborted);
        }
        let m = if s.legacy {
            0
        } else {
            s.layout.msg_of_rpart(p)
        };
        if s.started.load(Ordering::Acquire) {
            if !s.arrived[m].is_set() {
                s.comm.fabric().fail(PcommError::misuse(
                    s.comm.rank(),
                    format!("read_partition({p}) before parrived: message {m} still in flight"),
                ));
                panic_any(RankAborted);
            }
            // The arrival check that just passed *is* the synchronization
            // with the delivering message; record it as a readiness edge
            // so the analyzer orders this read without a prior
            // `parrived` probe on the same thread.
            s.comm
                .fabric()
                .trace()
                .emit_verify(s.comm.rank() as u16, || EventKind::VerifyParrived {
                    req: s.vreq,
                    part: p as u32,
                    iter: self.cur_iter(),
                    tid: pcomm_trace::current_tid(),
                    arrived: true,
                });
        }
        let trace = s.comm.fabric().trace();
        let t0 = trace.verify_now_ns();
        f(s.storage.read_partition(p));
        trace.emit_verify(s.comm.rank() as u16, || EventKind::VerifyRead {
            req: s.vreq,
            part: p as u32,
            iter: self.cur_iter(),
            tid: pcomm_trace::current_tid(),
            dur_ns: t0.map_or(0, |start| {
                trace
                    .verify_now_ns()
                    .map_or(0, |now| now.saturating_sub(start))
            }),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    fn opts() -> PartOptions {
        PartOptions::default()
    }

    #[test]
    fn layout_gcd_and_aggregation() {
        let l = negotiate_layout(12, 8, 100, None);
        assert_eq!(l.n_msgs(), 4);
        let l = negotiate_layout(16, 16, 512, Some(2048));
        assert_eq!(l.n_msgs(), 4);
        assert!(l.msgs.iter().all(|m| m.bytes == 2048));
        // Mapping is total on both sides.
        for p in 0..16 {
            let _ = l.msg_of_spart(p);
            let _ = l.msg_of_rpart(p);
        }
    }

    #[test]
    fn roundtrip_with_data_integrity() {
        Universe::new(2)
            .with_shards(4)
            .run(|comm| {
                let n = 8;
                let bytes = 256;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n, bytes, opts());
                    ps.start();
                    for p in 0..n {
                        ps.write_partition(p, |b| b.fill(p as u8 + 1));
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, n, bytes, opts());
                    pr.start();
                    pr.wait();
                    for p in 0..n {
                        assert!(pr.partition(p).iter().all(|&x| x == p as u8 + 1));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn multithreaded_preadys_from_worker_threads() {
        Universe::new(2)
            .with_shards(4)
            .run(|comm| {
                let n_threads = 4;
                let theta = 4;
                let n = n_threads * theta;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n, 64, opts());
                    for _iter in 0..5 {
                        ps.start();
                        std::thread::scope(|s| {
                            for t in 0..n_threads {
                                let ps = ps.clone();
                                s.spawn(move || {
                                    for j in 0..theta {
                                        let p = t + j * n_threads;
                                        ps.write_partition(p, |b| b.fill(p as u8));
                                        ps.pready(p);
                                    }
                                });
                            }
                        });
                        ps.wait();
                    }
                } else {
                    let pr = comm.precv_init(0, 0, n, 64, opts());
                    for _iter in 0..5 {
                        pr.start();
                        pr.wait();
                        for p in 0..n {
                            assert!(pr.partition(p).iter().all(|&x| x == p as u8));
                        }
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn aggregation_reduces_message_count() {
        Universe::new(2)
            .run(|comm| {
                let o = PartOptions {
                    aggr_size: Some(4096),
                    ..PartOptions::default()
                };
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 32, 512, o);
                    assert_eq!(ps.n_msgs(), 4);
                    ps.start();
                    for p in 0..32 {
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 32, 512, o);
                    assert_eq!(pr.n_msgs(), 4);
                    pr.start();
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn early_bird_parrived_before_last_pready() {
        use std::sync::atomic::AtomicBool;
        static SAW_EARLY: AtomicBool = AtomicBool::new(false);
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 128, opts());
                    ps.start();
                    ps.pready(0);
                    // Give the receiver time to observe partition 0.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    ps.pready(1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 2, 128, opts());
                    pr.start();
                    // Poll for the early partition while the last is delayed.
                    let t0 = std::time::Instant::now();
                    while !pr.parrived(0) && t0.elapsed().as_millis() < 25 {
                        std::hint::spin_loop();
                    }
                    if pr.parrived(0) && !pr.parrived(1) {
                        SAW_EARLY.store(true, Ordering::SeqCst);
                    }
                    pr.wait();
                }
            })
            .unwrap();
        assert!(
            SAW_EARLY.load(Ordering::SeqCst),
            "partition 0 should arrive while partition 1 is still delayed"
        );
    }

    #[test]
    fn legacy_single_message_roundtrip() {
        Universe::new(2)
            .run(|comm| {
                let o = PartOptions {
                    legacy_single_message: true,
                    ..PartOptions::default()
                };
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 4, 128, o);
                    for _ in 0..3 {
                        ps.start();
                        for p in 0..4 {
                            ps.write_partition(p, |b| b.fill(9));
                            ps.pready(p);
                        }
                        ps.wait();
                    }
                } else {
                    let pr = comm.precv_init(0, 0, 4, 128, o);
                    for _ in 0..3 {
                        pr.start();
                        pr.wait();
                        assert!(pr.partition(3).iter().all(|&x| x == 9));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn rendezvous_sized_partitions() {
        Universe::new(2)
            .with_eager_max(1024)
            .run(|comm| {
                let bytes = 16 * 1024; // above eager_max → zcopy path
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 4, bytes, opts());
                    ps.start();
                    for p in 0..4 {
                        ps.write_partition(p, |b| b.fill(p as u8 + 10));
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 4, bytes, opts());
                    pr.start();
                    pr.wait();
                    for p in 0..4 {
                        assert!(pr.partition(p).iter().all(|&x| x == p as u8 + 10));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn write_after_ready_is_misuse() {
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 64, opts());
                    ps.start();
                    ps.pready(0);
                    ps.write_partition(0, |b| b.fill(1));
                } else {
                    // Keep rank 1 passive; messages park unexpected.
                }
            })
            .unwrap_err();
        match err {
            crate::PcommError::Misuse { rank, detail } => {
                assert_eq!(rank, Some(0));
                assert!(detail.contains("already readied"), "{detail}");
            }
            other => panic!("expected Misuse, got {other:?}"),
        }
    }

    #[test]
    fn double_pready_is_misuse_and_leaves_request_usable() {
        // try_pready reports the duplicate without touching the message
        // counters: the iteration still completes and the data is intact.
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 64, opts());
                    ps.start();
                    ps.write_partition(0, |b| b.fill(7));
                    ps.pready(0);
                    let err = ps.try_pready(0).unwrap_err();
                    assert!(
                        matches!(&err, crate::PcommError::Misuse { rank: Some(0), detail }
                            if detail.contains("readied twice")),
                        "{err:?}"
                    );
                    ps.write_partition(1, |b| b.fill(8));
                    ps.pready(1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 2, 64, opts());
                    pr.start();
                    pr.wait();
                    assert!(pr.partition(0).iter().all(|&x| x == 7));
                    assert!(pr.partition(1).iter().all(|&x| x == 8));
                }
            })
            .unwrap();
    }

    #[test]
    fn inactive_pready_is_misuse() {
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 64, opts());
                    // Not started: MPI forbids pready on an inactive
                    // request.
                    ps.pready(0);
                }
            })
            .unwrap_err();
        match err {
            crate::PcommError::Misuse { rank, detail } => {
                assert_eq!(rank, Some(0));
                assert!(detail.contains("inactive"), "{detail}");
            }
            other => panic!("expected Misuse, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_pready_range_is_misuse_and_recoverable() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 4, 64, opts());
                    ps.start();
                    // 2..=5 walks off the end: partitions 2 and 3 are
                    // readied, 4 is rejected before any counter moves.
                    let err = ps.try_pready_range(2, 5).unwrap_err();
                    assert!(
                        matches!(&err, crate::PcommError::Misuse { rank: Some(0), detail }
                            if detail.contains("out of range")),
                        "{err:?}"
                    );
                    assert!(ps
                        .try_pready_range(5, 2)
                        .unwrap_err()
                        .to_string()
                        .contains("inverted"));
                    // The iteration is intact: finish the valid ones.
                    ps.pready_range(0, 1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 4, 64, opts());
                    pr.start();
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn out_of_range_parrived_is_misuse_and_recoverable() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 64, opts());
                    ps.start();
                    ps.pready_range(0, 1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 2, 64, opts());
                    pr.start();
                    let err = pr.try_parrived(99).unwrap_err();
                    assert!(
                        matches!(&err, crate::PcommError::Misuse { rank: Some(1), detail }
                            if detail.contains("out of range")),
                        "{err:?}"
                    );
                    // Probing misuse does not disturb the iteration.
                    pr.wait();
                    assert!(pr.try_parrived(1).unwrap());
                }
            })
            .unwrap();
    }

    #[test]
    fn pready_jitter_permutes_issue_order_and_data_survives() {
        use pcomm_trace::FaultKind;
        let plan = crate::FaultPlan::seeded(11).jitter(true);
        let (out, data) = Universe::new(2).with_fault_plan(plan).run_traced(|comm| {
            let n = 16;
            if comm.rank() == 0 {
                let ps = comm.psend_init(1, 0, n, 64, opts());
                for it in 0..3u8 {
                    ps.start();
                    for p in 0..n {
                        ps.write_partition(p, |b| b.fill(it ^ p as u8));
                    }
                    ps.pready_range(0, n - 1);
                    ps.wait();
                }
            } else {
                let pr = comm.precv_init(0, 0, n, 64, opts());
                for it in 0..3u8 {
                    pr.start();
                    pr.wait();
                    for p in 0..n {
                        assert!(pr.partition(p).iter().all(|&x| x == it ^ p as u8));
                    }
                }
            }
        });
        out.unwrap();
        let jitters = data
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    pcomm_trace::EventKind::FaultInjected {
                        fault: FaultKind::PreadyJitter,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(jitters, 3, "one jitter permutation per pready_range");
    }

    #[test]
    fn pready_range_and_list() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 8, 64, PartOptions::default());
                    ps.start();
                    ps.pready_range(0, 3);
                    ps.pready_list(&[6, 4, 7, 5]);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 8, 64, PartOptions::default());
                    pr.start();
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn mismatched_partition_counts_use_gcd() {
        // 12 sender partitions of 100 B vs 8 receiver partitions of 150 B:
        // gcd = 4 messages of 300 B; data lands bit-exact.
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init_general(1, 0, 12, 100, 8, PartOptions::default());
                    assert_eq!(ps.n_msgs(), 4);
                    ps.start();
                    for p in 0..12 {
                        ps.write_partition(p, |b| {
                            for (i, x) in b.iter_mut().enumerate() {
                                *x = ((p * 100 + i) % 251) as u8;
                            }
                        });
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init_general(0, 0, 8, 150, 12, 100, PartOptions::default());
                    assert_eq!(pr.n_msgs(), 4);
                    pr.start();
                    pr.wait();
                    // Receiver partition r covers global bytes [150r, 150r+150).
                    for r in 0..8 {
                        let data = pr.partition(r);
                        for (i, &x) in data.iter().enumerate() {
                            let g = r * 150 + i; // global byte index
                            assert_eq!(x as usize, g % 251, "recv part {r} byte {i}");
                        }
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn mismatched_counts_with_aggregation() {
        Universe::new(2)
            .run(|comm| {
                let opts = PartOptions {
                    aggr_size: Some(600),
                    ..PartOptions::default()
                };
                if comm.rank() == 0 {
                    let ps = comm.psend_init_general(1, 0, 12, 100, 8, opts.clone());
                    // 4 base messages of 300 B aggregate pairwise under 600 B.
                    assert_eq!(ps.n_msgs(), 2);
                    ps.start();
                    for p in 0..12 {
                        ps.write_partition(p, |b| b.fill(p as u8));
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init_general(0, 0, 8, 150, 12, 100, opts);
                    assert_eq!(pr.n_msgs(), 2);
                    pr.start();
                    pr.wait();
                    // Global byte g belongs to sender partition g / 100.
                    for r in 0..8 {
                        for (i, &x) in pr.partition(r).iter().enumerate() {
                            let g = r * 150 + i;
                            assert_eq!(x as usize, g / 100, "recv part {r} byte {i}");
                        }
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn thread_hint_roundtrip_with_block_assignment() {
        // Block partition→thread ownership (the θ>1 layout §3.2.2 warns
        // about): the stream hint keeps each thread on its own shard.
        let n_threads = 2;
        let theta = 4;
        let n = n_threads * theta;
        let hint: Arc<Vec<usize>> = Arc::new((0..n).map(|p| p / theta).collect());
        Universe::new(2)
            .with_shards(2)
            .run(|comm| {
                let opts = PartOptions {
                    thread_hint: Some(Arc::clone(&hint)),
                    ..PartOptions::default()
                };
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n, 128, opts);
                    ps.start();
                    std::thread::scope(|s| {
                        for t in 0..n_threads {
                            let ps = ps.clone();
                            s.spawn(move || {
                                for j in 0..theta {
                                    let p = t * theta + j; // block ownership
                                    ps.write_partition(p, |b| b.fill(p as u8 + 1));
                                    ps.pready(p);
                                }
                            });
                        }
                    });
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, n, 128, opts);
                    pr.start();
                    pr.wait();
                    for p in 0..n {
                        assert!(pr.partition(p).iter().all(|&x| x == p as u8 + 1));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn deferred_sends_arrive_only_at_wait() {
        Universe::new(2)
            .run(|comm| {
                let opts = PartOptions {
                    defer_sends: true,
                    ..PartOptions::default()
                };
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 64, opts);
                    ps.start();
                    ps.pready(0);
                    // Give the receiver time to (not) observe partition 0.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    ps.pready(1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 2, 64, opts);
                    pr.start();
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    assert!(
                        !pr.parrived(0),
                        "deferred mode must not deliver before wait"
                    );
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn parrived_probe_takes_no_locks() {
        // Acceptance check for the atomics-first hot path: once a
        // partition has arrived, probing it is a table lookup plus one
        // atomic load — zero runtime-mutex acquisitions on the probing
        // thread, and every probe lands on the completion fast path.
        Universe::new(2)
            .run(|comm| {
                const N: usize = 4;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, N, 64, opts());
                    ps.start();
                    for p in 0..N {
                        ps.pready(p);
                    }
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, N, 64, opts());
                    pr.start();
                    while !(0..N).all(|p| pr.parrived(p)) {
                        std::hint::spin_loop();
                    }
                    let before = crate::hotpath::thread_stats();
                    for i in 0..1000 {
                        assert!(pr.parrived(i % N));
                    }
                    let after = crate::hotpath::thread_stats();
                    assert_eq!(
                        after.mutex_locks, before.mutex_locks,
                        "parrived hit path must take no runtime mutex"
                    );
                    assert_eq!(
                        after.completion_fast_probes - before.completion_fast_probes,
                        1000,
                        "every probe must use the single-load fast path"
                    );
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn parrived_true_on_inactive_request() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 32, opts());
                    ps.start();
                    ps.pready_range(0, 1);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 2, 32, opts());
                    // Inactive (never started): MPI reports complete.
                    assert!(pr.parrived(0) && pr.parrived(1));
                    pr.start();
                    pr.wait();
                    // Inactive again after wait().
                    assert!(pr.parrived(0) && pr.parrived(1));
                }
            })
            .unwrap();
    }

    #[test]
    fn pready_range_single_partition_and_empty_list() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 4, 32, opts());
                    ps.start();
                    ps.pready_list(&[]); // no-op, must not complete anything
                    ps.pready_range(2, 2); // lo == hi: exactly one partition
                    ps.pready_range(0, 1);
                    ps.pready(3);
                    ps.wait();
                } else {
                    let pr = comm.precv_init(0, 0, 4, 32, opts());
                    pr.start();
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn pready_range_all_partitions_one_call() {
        Universe::new(2)
            .run(|comm| {
                let n = 16;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n, 64, opts());
                    for it in 0..3u8 {
                        ps.start();
                        for p in 0..n {
                            ps.write_partition(p, |b| b.fill(it ^ p as u8));
                        }
                        ps.pready_range(0, n - 1);
                        ps.wait();
                    }
                } else {
                    let pr = comm.precv_init(0, 0, n, 64, opts());
                    for it in 0..3u8 {
                        pr.start();
                        pr.wait();
                        for p in 0..n {
                            assert!(pr.partition(p).iter().all(|&x| x == it ^ p as u8));
                        }
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn multithreaded_pready_ranges() {
        // Worker threads each ready their own block via pready_range;
        // ranges race on the shared per-message counters.
        Universe::new(2)
            .with_shards(4)
            .run(|comm| {
                let n_threads = 4;
                let theta = 8;
                let n = n_threads * theta;
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, n, 32, opts());
                    for _it in 0..5 {
                        ps.start();
                        std::thread::scope(|s| {
                            for t in 0..n_threads {
                                let ps = ps.clone();
                                s.spawn(move || {
                                    let lo = t * theta;
                                    for p in lo..lo + theta {
                                        ps.write_partition(p, |b| b.fill(p as u8));
                                    }
                                    ps.pready_range(lo, lo + theta - 1);
                                });
                            }
                        });
                        ps.wait();
                    }
                } else {
                    let pr = comm.precv_init(0, 0, n, 32, opts());
                    for _it in 0..5 {
                        pr.start();
                        pr.wait();
                        for p in 0..n {
                            assert!(pr.partition(p).iter().all(|&x| x == p as u8));
                        }
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn reuse_many_iterations_data_fresh() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.psend_init(1, 0, 2, 32, opts());
                    for it in 0..10u8 {
                        ps.start();
                        for p in 0..2 {
                            ps.write_partition(p, |b| b.fill(it * 2 + p as u8));
                            ps.pready(p);
                        }
                        ps.wait();
                    }
                } else {
                    let pr = comm.precv_init(0, 0, 2, 32, opts());
                    for it in 0..10u8 {
                        pr.start();
                        pr.wait();
                        for p in 0..2 {
                            assert!(pr.partition(p).iter().all(|&x| x == it * 2 + p as u8));
                        }
                    }
                }
            })
            .unwrap();
    }
}
