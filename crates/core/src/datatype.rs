//! Derived datatypes: noncontiguous message layouts.
//!
//! The paper's §3.2.1 notes that letting the *sender* decide the message
//! count "adds complexity when the sender and/or the receiver uses
//! noncontiguous datatypes: the receiver might receive a partial
//! datatype". This module provides the two layouts that discussion is
//! about — contiguous runs and strided vectors (the classic
//! `MPI_Type_vector`) — with pack/unpack through the eager path.

use crate::comm::Comm;
use crate::fabric::MsgInfo;

/// A byte-granularity datatype describing which bytes of a buffer
/// participate in a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Datatype {
    /// `len` contiguous bytes.
    Contiguous {
        /// Number of bytes.
        len: usize,
    },
    /// `count` blocks of `blocklen` bytes, the start of consecutive
    /// blocks separated by `stride` bytes (`stride >= blocklen`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Bytes per block.
        blocklen: usize,
        /// Distance between block starts.
        stride: usize,
    },
}

impl Datatype {
    /// Total bytes transferred (the packed size).
    pub fn packed_len(&self) -> usize {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count, blocklen, ..
            } => count * blocklen,
        }
    }

    /// The span the datatype covers in the origin buffer.
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Contiguous { len } => *len,
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                if *count == 0 {
                    0
                } else {
                    (count - 1) * stride + blocklen
                }
            }
        }
    }

    /// Validate the shape.
    pub fn validate(&self) {
        if let Datatype::Vector {
            blocklen, stride, ..
        } = self
        {
            assert!(
                stride >= blocklen,
                "vector stride {stride} must be >= blocklen {blocklen}"
            );
        }
    }

    /// Gather the selected bytes of `src` into a packed vector.
    pub fn pack(&self, src: &[u8]) -> Vec<u8> {
        self.validate();
        assert!(src.len() >= self.extent(), "source smaller than extent");
        match self {
            Datatype::Contiguous { len } => src[..*len].to_vec(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                let mut out = Vec::with_capacity(count * blocklen);
                for i in 0..*count {
                    let off = i * stride;
                    out.extend_from_slice(&src[off..off + blocklen]);
                }
                out
            }
        }
    }

    /// Scatter `packed` into the selected bytes of `dst`.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) {
        self.validate();
        assert_eq!(packed.len(), self.packed_len(), "packed length mismatch");
        assert!(
            dst.len() >= self.extent(),
            "destination smaller than extent"
        );
        match self {
            Datatype::Contiguous { len } => dst[..*len].copy_from_slice(packed),
            Datatype::Vector {
                count,
                blocklen,
                stride,
            } => {
                for i in 0..*count {
                    let off = i * stride;
                    dst[off..off + blocklen]
                        .copy_from_slice(&packed[i * blocklen..(i + 1) * blocklen]);
                }
            }
        }
    }
}

impl Comm {
    /// Blocking typed send: packs the datatype's bytes out of `buf`,
    /// then sends the packed representation.
    pub fn send_typed(&self, dst: usize, tag: i64, buf: &[u8], ty: &Datatype) {
        let packed = ty.pack(buf);
        self.send(dst, tag, &packed);
    }

    /// Blocking typed receive: receives the packed bytes and scatters
    /// them into `buf` according to the datatype.
    pub fn recv_typed(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        buf: &mut [u8],
        ty: &Datatype,
    ) -> MsgInfo {
        let mut packed = vec![0u8; ty.packed_len()];
        let info = self.recv_into(src, tag, &mut packed);
        assert_eq!(
            info.len,
            ty.packed_len(),
            "typed receive got {} bytes, datatype expects {}",
            info.len,
            ty.packed_len()
        );
        ty.unpack(&packed, buf);
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn contiguous_pack_is_prefix() {
        let ty = Datatype::Contiguous { len: 4 };
        assert_eq!(ty.packed_len(), 4);
        assert_eq!(ty.extent(), 4);
        assert_eq!(ty.pack(&[1, 2, 3, 4, 5]), vec![1, 2, 3, 4]);
    }

    #[test]
    fn vector_pack_unpack_roundtrip() {
        // 3 blocks of 2 bytes every 4 bytes: |ab..cd..ef|
        let ty = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
        };
        assert_eq!(ty.packed_len(), 6);
        assert_eq!(ty.extent(), 10);
        let src: Vec<u8> = (10..20).collect();
        let packed = ty.pack(&src);
        assert_eq!(packed, vec![10, 11, 14, 15, 18, 19]);
        let mut dst = vec![0u8; 10];
        ty.unpack(&packed, &mut dst);
        assert_eq!(dst, vec![10, 11, 0, 0, 14, 15, 0, 0, 18, 19]);
    }

    #[test]
    fn empty_vector_is_legal() {
        let ty = Datatype::Vector {
            count: 0,
            blocklen: 4,
            stride: 8,
        };
        assert_eq!(ty.packed_len(), 0);
        assert_eq!(ty.extent(), 0);
        assert_eq!(ty.pack(&[]), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn overlapping_vector_rejected() {
        let ty = Datatype::Vector {
            count: 2,
            blocklen: 8,
            stride: 4,
        };
        ty.validate();
    }

    #[test]
    fn typed_transfer_between_ranks() {
        // A strided column of a row-major matrix travels as a vector and
        // lands in the same strided layout on the receiver.
        let ty = Datatype::Vector {
            count: 8,
            blocklen: 4,
            stride: 32, // one f32 column of an 8x8 f32 matrix
        };
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let matrix: Vec<u8> = (0..=255).collect();
                    comm.send_typed(1, 0, &matrix, &ty);
                } else {
                    let mut out = vec![0u8; 256];
                    let info = comm.recv_typed(Some(0), Some(0), &mut out, &ty);
                    assert_eq!(info.len, 32);
                    for i in 0..8 {
                        let off = i * 32;
                        for j in 0..4 {
                            assert_eq!(out[off + j], (off + j) as u8, "block {i} byte {j}");
                        }
                        // Bytes outside the column untouched.
                        assert_eq!(out[off + 4], 0);
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn typed_rendezvous_transfer() {
        let ty = Datatype::Vector {
            count: 64,
            blocklen: 1024,
            stride: 2048,
        };
        Universe::new(2)
            .with_eager_max(4096)
            .run(|comm| {
                if comm.rank() == 0 {
                    let src = vec![0xCDu8; ty.extent()];
                    comm.send_typed(1, 0, &src, &ty);
                } else {
                    let mut dst = vec![0u8; ty.extent()];
                    comm.recv_typed(Some(0), Some(0), &mut dst, &ty);
                    for i in 0..64 {
                        let off = i * 2048;
                        assert!(dst[off..off + 1024].iter().all(|&b| b == 0xCD));
                        if i < 63 {
                            assert!(dst[off + 1024..off + 2048].iter().all(|&b| b == 0));
                        }
                    }
                }
            })
            .unwrap();
    }
}
