//! Small synchronization helpers for the real runtime.
//!
//! [`Mutex`] and [`Condvar`] are thin std-only shims with the ergonomic
//! (`parking_lot`-style) API the runtime uses: `lock()` returns the guard
//! directly and `Condvar::wait` takes the guard by `&mut`. Poisoning is
//! deliberately ignored — a rank thread that panics propagates its panic
//! through `Universe::run` anyway, so poison adds no safety and would
//! only turn clean panics into double panics. Keeping the shim here means
//! the workspace builds offline with no external crates.

use std::sync::Arc;

/// A mutex whose `lock()` returns the guard directly (poison-ignoring).
#[derive(Default, Debug)]
pub(crate) struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can take it by
/// value (as std requires) while callers keep borrowing the wrapper.
pub(crate) struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poison.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub(crate) fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not in a condvar wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not in a condvar wait")
    }
}

/// Condition variable working on [`MutexGuard`] by `&mut`.
#[derive(Default, Debug)]
pub(crate) struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub(crate) fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically release the lock and wait for a notification.
    pub(crate) fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        guard.inner = Some(self.inner.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake all waiters.
    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A one-shot completion flag with blocking wait (Mutex + Condvar).
///
/// Used for request completion: the completing thread calls [`set`],
/// waiters block in [`wait`]. Cheap `is_set` polling supports
/// `MPI_Test`-style probes.
///
/// [`set`]: Completion::set
/// [`wait`]: Completion::wait
#[derive(Default)]
pub(crate) struct Completion {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Arc<Completion> {
        Arc::new(Completion::default())
    }

    /// Mark complete and wake all waiters. Idempotent.
    pub(crate) fn set(&self) {
        let mut d = self.done.lock();
        if !*d {
            *d = true;
            self.cv.notify_all();
        }
    }

    /// Block until complete.
    pub(crate) fn wait(&self) {
        let mut d = self.done.lock();
        while !*d {
            self.cv.wait(&mut d);
        }
    }

    /// Non-blocking probe.
    pub(crate) fn is_set(&self) -> bool {
        *self.done.lock()
    }
}

/// Spin for `micros` microseconds of wall time.
///
/// `std::thread::sleep` has ~50 µs granularity on Linux, far too coarse
/// for injecting the µs-scale compute delays the benchmarks need; a
/// calibrated busy-wait keeps the thread hot, like real compute would.
pub fn spin_for_micros(micros: f64) {
    if micros <= 0.0 {
        return;
    }
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos((micros * 1000.0) as u64);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn completion_set_then_wait() {
        let c = Completion::new();
        assert!(!c.is_set());
        c.set();
        assert!(c.is_set());
        c.wait(); // returns immediately
    }

    #[test]
    fn completion_wakes_blocked_waiter() {
        let c = Completion::new();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            c2.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        c.set();
        assert!(t.join().unwrap());
    }

    #[test]
    fn completion_set_is_idempotent() {
        let c = Completion::new();
        c.set();
        c.set();
        assert!(c.is_set());
    }

    #[test]
    fn spin_waits_roughly_right() {
        let t0 = Instant::now();
        spin_for_micros(200.0);
        let e = t0.elapsed();
        assert!(e >= Duration::from_micros(200), "spun only {e:?}");
        assert!(e < Duration::from_millis(50), "spun way too long {e:?}");
    }

    #[test]
    fn spin_zero_is_noop() {
        spin_for_micros(0.0);
        spin_for_micros(-5.0);
    }
}
