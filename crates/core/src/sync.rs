//! Small synchronization helpers for the real runtime.
//!
//! [`Mutex`] and [`Condvar`] are thin std-only shims with the ergonomic
//! (`parking_lot`-style) API the runtime uses: `lock()` returns the guard
//! directly and `Condvar::wait_timeout` takes the guard by `&mut`.
//! Poisoning is
//! deliberately ignored — a rank thread that panics propagates its panic
//! through `Universe::run` anyway, so poison adds no safety and would
//! only turn clean panics into double panics. Keeping the shim here means
//! the workspace builds offline with no external crates. Every `lock()`
//! bumps a per-thread counter ([`crate::hotpath`]) so tests can assert
//! that probe paths acquire zero locks.
//!
//! [`Completion`] is the runtime's one-shot completion flag, rebuilt as a
//! futex-style atomic state machine: the probe path is a single atomic
//! load, setters take no lock unless a waiter actually parked, and
//! waiters spin briefly before registering for `thread::park`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

use crate::hotpath;

/// A mutex whose `lock()` returns the guard directly (poison-ignoring).
#[derive(Default, Debug)]
pub(crate) struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait_timeout`] can
/// take it by value (as std requires) while callers keep borrowing the
/// wrapper.
pub(crate) struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub(crate) fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poison.
    pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
        hotpath::count_mutex_lock();
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Acquire the lock only if it is free right now (poison-ignoring).
    /// `None` when any thread — this one included — already holds it,
    /// which is exactly what reentrant progress paths need: a nested
    /// drain skips the channel its caller is already draining.
    pub(crate) fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => {
                hotpath::count_mutex_lock();
                Some(MutexGuard { inner: Some(g) })
            }
            Err(std::sync::TryLockError::Poisoned(e)) => {
                hotpath::count_mutex_lock();
                Some(MutexGuard {
                    inner: Some(e.into_inner()),
                })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not in a condvar wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not in a condvar wait")
    }
}

/// Condition variable working on [`MutexGuard`] by `&mut`.
#[derive(Default, Debug)]
pub(crate) struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub(crate) fn new() -> Condvar {
        Condvar::default()
    }

    /// Atomically release the lock and wait for a notification, giving
    /// up after `timeout`. Spurious wakeups are allowed either way, so
    /// callers re-check their predicate in a loop; the timeout exists so
    /// the loop can also poll an abort flag instead of blocking forever.
    pub(crate) fn wait_timeout<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, _timed_out) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wake all waiters.
    pub(crate) fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Completion states.
const UNSET: u32 = 0;
const SET: u32 = 1;
/// Unset, with at least one waiter registered for unpark.
const PARKED: u32 = 2;

/// Probe-path spins before a waiter registers itself and parks. Eager
/// completions land within a few hundred ns; spinning that long keeps the
/// common wait entirely lock-free.
const SPIN_LIMIT: u32 = 1024;

/// Effective spin budget. Spinning only pays off when the setter can run
/// on *another* core during the spin; on a single-CPU machine the spin
/// just steals the setter's timeslice, so waiters park (yielding the
/// core) immediately — the pre-atomics condvar behavior.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN_LIMIT,
        _ => 0,
    })
}

/// A one-shot completion flag: futex-style atomic state machine.
///
/// The state is a single `AtomicU32` (`UNSET → SET`, or
/// `UNSET → PARKED → SET` when a waiter blocks):
///
/// * [`is_set`] — one atomic load, no lock, ever (the `MPI_Test` path).
/// * [`set`] — one atomic swap; it touches the waiter list only if a
///   waiter actually parked (then it unparks them all).
/// * [`wait`] — loads, then spins up to [`SPIN_LIMIT`], then registers
///   its thread handle under the (slow-path-only) waiter mutex and
///   `thread::park`s until the setter unparks it.
/// * [`reset`] — re-arms the flag for the next iteration, so persistent
///   requests reuse one allocation across their whole lifetime.
///
/// [`is_set`]: Completion::is_set
/// [`set`]: Completion::set
/// [`wait`]: Completion::wait
/// [`reset`]: Completion::reset
#[derive(Default)]
pub(crate) struct Completion {
    state: AtomicU32,
    /// Threads parked in [`wait`](Completion::wait); touched only on the
    /// slow path (state `PARKED`), never by probes.
    waiters: std::sync::Mutex<Vec<Thread>>,
}

impl Completion {
    pub(crate) fn new() -> Arc<Completion> {
        Arc::new(Completion::default())
    }

    /// A completion that starts in the set state (used by persistent
    /// requests so "not yet started" probes answer `true`, matching the
    /// MPI inactive-request convention).
    pub(crate) fn new_set() -> Arc<Completion> {
        let c = Completion::default();
        c.state.store(SET, Ordering::Release);
        Arc::new(c)
    }

    /// Mark complete and wake all waiters. Idempotent. Lock-free unless a
    /// waiter parked.
    pub(crate) fn set(&self) {
        if self.state.swap(SET, Ordering::AcqRel) == PARKED {
            let woken =
                std::mem::take(&mut *self.waiters.lock().unwrap_or_else(|e| e.into_inner()));
            for t in woken {
                t.unpark();
            }
        }
    }

    /// Re-arm for the next iteration.
    ///
    /// Caller must guarantee quiescence: no concurrent `wait`/`set` and
    /// no fabric thread still holding this completion for the previous
    /// iteration. The persistent-request state machines provide this —
    /// `reset` is only called from `start()`, which the API contract
    /// orders after the previous `wait()`.
    pub(crate) fn reset(&self) {
        debug_assert!(
            self.waiters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .is_empty(),
            "reset with parked waiters"
        );
        self.state.store(UNSET, Ordering::Release);
    }

    /// Block until complete: spin-then-park. Production waits go through
    /// `Fabric::wait_on` (abort-aware, built on [`Completion::wait_timeout`]);
    /// the unbounded form remains for tests of the parking machinery.
    #[cfg(test)]
    pub(crate) fn wait(&self) {
        if self.state.load(Ordering::Acquire) == SET {
            hotpath::count_fast_probe();
            return;
        }
        for _ in 0..spin_limit() {
            std::hint::spin_loop();
            if self.state.load(Ordering::Acquire) == SET {
                return;
            }
        }
        hotpath::count_slow_wait();
        // Register under the waiter lock, then park. Ordering argument:
        // `set` swaps the state to SET *before* draining the waiter list,
        // and we push our handle *before* releasing the lock; so either
        // our CAS below observes SET (return), or `set` observes PARKED
        // and blocks on the waiter lock until our handle is visible.
        {
            let mut ws = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            match self
                .state
                .compare_exchange(UNSET, PARKED, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) | Err(PARKED) => ws.push(std::thread::current()),
                Err(_) => return, // SET won the race
            }
        }
        loop {
            std::thread::park();
            if self.state.load(Ordering::Acquire) == SET {
                return;
            }
            // Spurious wakeup (or stale permit): our handle is still
            // registered, just park again.
        }
    }

    /// Non-blocking probe: a single atomic load.
    #[inline]
    pub(crate) fn is_set(&self) -> bool {
        hotpath::count_fast_probe();
        self.state.load(Ordering::Acquire) == SET
    }

    /// Block until complete or until `timeout` elapses; `true` if the
    /// completion is set. Same registration discipline as
    /// [`wait`](Completion::wait) but parks with a deadline
    /// (`park_timeout`) and deregisters its thread handle on timeout, so
    /// an abandoned timed wait leaves no stale entry for `set` to unpark.
    ///
    /// This is the primitive behind the abort-aware blocking paths: the
    /// fabric waits in short slices and checks its abort flag between
    /// them, and the watchdog supervisor sleeps on its shutdown flag
    /// with this instead of a bare `sleep`.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> bool {
        if self.state.load(Ordering::Acquire) == SET {
            hotpath::count_fast_probe();
            return true;
        }
        let deadline = Instant::now() + timeout;
        for _ in 0..spin_limit() {
            std::hint::spin_loop();
            if self.state.load(Ordering::Acquire) == SET {
                return true;
            }
        }
        hotpath::count_slow_wait();
        {
            let mut ws = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
            match self
                .state
                .compare_exchange(UNSET, PARKED, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) | Err(PARKED) => ws.push(std::thread::current()),
                Err(_) => return true, // SET won the race
            }
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                // Deregister under the waiter lock. `set` drains the list
                // *after* swapping the state, so with the lock held either
                // the state is already SET (we won after all) or our
                // removal is visible to any later `set`.
                let mut ws = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
                if self.state.load(Ordering::Acquire) == SET {
                    return true;
                }
                let me = std::thread::current().id();
                ws.retain(|t| t.id() != me);
                return false;
            }
            std::thread::park_timeout(deadline - now);
            if self.state.load(Ordering::Acquire) == SET {
                return true;
            }
        }
    }
}

/// The spin target for [`spin_for_micros`], sanitized: `None` for
/// non-positive or NaN inputs (nothing to spin), otherwise a duration
/// whose nanosecond count saturates instead of overflowing.
pub(crate) fn spin_target(micros: f64) -> Option<std::time::Duration> {
    if micros.is_nan() || micros <= 0.0 {
        return None;
    }
    let ns = micros * 1000.0;
    // `as` saturates on overflow and would map NaN to 0, but be explicit:
    // anything beyond u64::MAX ns (~584 years) pins to the maximum.
    let ns = if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    };
    Some(std::time::Duration::from_nanos(ns))
}

/// Spin for `micros` microseconds of wall time.
///
/// `std::thread::sleep` has ~50 µs granularity on Linux, far too coarse
/// for injecting the µs-scale compute delays the benchmarks need; a
/// calibrated busy-wait keeps the thread hot, like real compute would.
/// Non-positive, NaN and overflowing inputs are sanitized by
/// [`spin_target`] rather than cast blindly.
pub fn spin_for_micros(micros: f64) {
    let Some(target) = spin_target(micros) else {
        return;
    };
    let start = std::time::Instant::now();
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn completion_set_then_wait() {
        let c = Completion::new();
        assert!(!c.is_set());
        c.set();
        assert!(c.is_set());
        c.wait(); // returns immediately
    }

    #[test]
    fn completion_wakes_blocked_waiter() {
        let c = Completion::new();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            c2.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        c.set();
        assert!(t.join().unwrap());
    }

    #[test]
    fn completion_wakes_many_parked_waiters() {
        let c = Completion::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || c.wait()));
        }
        // Long enough that every waiter exhausts its spin budget and
        // actually parks.
        std::thread::sleep(Duration::from_millis(30));
        c.set();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn completion_set_is_idempotent() {
        let c = Completion::new();
        c.set();
        c.set();
        assert!(c.is_set());
    }

    #[test]
    fn completion_reset_rearms() {
        let c = Completion::new();
        for _ in 0..3 {
            assert!(!c.is_set());
            c.set();
            c.wait();
            c.reset();
        }
        assert!(!c.is_set());
    }

    #[test]
    fn completion_new_set_starts_set() {
        let c = Completion::new_set();
        assert!(c.is_set());
        c.reset();
        assert!(!c.is_set());
    }

    #[test]
    fn completion_probe_takes_no_mutex() {
        let c = Completion::new();
        c.set();
        let before = crate::hotpath::thread_stats();
        for _ in 0..1000 {
            assert!(c.is_set());
        }
        let after = crate::hotpath::thread_stats();
        assert_eq!(after.mutex_locks, before.mutex_locks, "is_set locked");
        assert_eq!(
            after.completion_fast_probes - before.completion_fast_probes,
            1000
        );
    }

    #[test]
    fn completion_hammered_from_many_threads() {
        // Waiters racing the setter through the spin/park boundary.
        for _ in 0..50 {
            let c = Completion::new();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.wait());
                }
                c.set();
            });
        }
    }

    #[test]
    fn wait_timeout_times_out_then_recovers() {
        let c = Completion::new();
        let t0 = Instant::now();
        assert!(!c.wait_timeout(Duration::from_millis(5)));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        // The timed-out waiter deregistered; set still works and a
        // subsequent timed wait returns immediately.
        c.set();
        assert!(c.wait_timeout(Duration::from_millis(5)));
        c.wait(); // immediate
    }

    #[test]
    fn wait_timeout_wakes_on_set() {
        let c = Completion::new();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || c2.wait_timeout(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(10));
        let t0 = Instant::now();
        c.set();
        assert!(t.join().unwrap(), "waiter must observe the set");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "set must wake the parked timed waiter promptly"
        );
    }

    #[test]
    fn wait_timeout_mixes_with_plain_waiters() {
        let c = Completion::new();
        std::thread::scope(|s| {
            let c1 = Arc::clone(&c);
            s.spawn(move || c1.wait());
            let c2 = Arc::clone(&c);
            s.spawn(move || {
                // Time out once, then block until set.
                c2.wait_timeout(Duration::from_millis(2));
                c2.wait();
            });
            std::thread::sleep(Duration::from_millis(20));
            c.set();
        });
    }

    #[test]
    fn spin_waits_roughly_right() {
        let t0 = Instant::now();
        spin_for_micros(200.0);
        let e = t0.elapsed();
        assert!(e >= Duration::from_micros(200), "spun only {e:?}");
        assert!(e < Duration::from_millis(50), "spun way too long {e:?}");
    }

    #[test]
    fn spin_zero_is_noop() {
        spin_for_micros(0.0);
        spin_for_micros(-5.0);
    }

    #[test]
    fn spin_target_rejects_nan_and_nonpositive() {
        assert_eq!(spin_target(f64::NAN), None);
        assert_eq!(spin_target(0.0), None);
        assert_eq!(spin_target(-1.0), None);
        assert_eq!(spin_target(f64::NEG_INFINITY), None);
    }

    #[test]
    fn spin_target_saturates_on_huge_inputs() {
        // 1e30 µs = 1e33 ns overflows u64; must clamp, not wrap.
        assert_eq!(spin_target(1e30), Some(Duration::from_nanos(u64::MAX)));
        assert_eq!(
            spin_target(f64::INFINITY),
            Some(Duration::from_nanos(u64::MAX))
        );
        // Ordinary values convert exactly.
        assert_eq!(spin_target(2.5), Some(Duration::from_nanos(2500)));
    }

    #[test]
    fn spin_nan_returns_immediately() {
        let t0 = Instant::now();
        spin_for_micros(f64::NAN);
        assert!(t0.elapsed() < Duration::from_millis(10));
    }
}
