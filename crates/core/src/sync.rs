//! Small synchronization helpers for the real runtime.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// A one-shot completion flag with blocking wait (Mutex + Condvar).
///
/// Used for request completion: the completing thread calls [`set`],
/// waiters block in [`wait`]. Cheap `is_set` polling supports
/// `MPI_Test`-style probes.
///
/// [`set`]: Completion::set
/// [`wait`]: Completion::wait
#[derive(Default)]
pub(crate) struct Completion {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Completion {
    pub(crate) fn new() -> Arc<Completion> {
        Arc::new(Completion::default())
    }

    /// Mark complete and wake all waiters. Idempotent.
    pub(crate) fn set(&self) {
        let mut d = self.done.lock();
        if !*d {
            *d = true;
            self.cv.notify_all();
        }
    }

    /// Block until complete.
    pub(crate) fn wait(&self) {
        let mut d = self.done.lock();
        while !*d {
            self.cv.wait(&mut d);
        }
    }

    /// Non-blocking probe.
    pub(crate) fn is_set(&self) -> bool {
        *self.done.lock()
    }
}

/// Spin for `micros` microseconds of wall time.
///
/// `std::thread::sleep` has ~50 µs granularity on Linux, far too coarse
/// for injecting the µs-scale compute delays the benchmarks need; a
/// calibrated busy-wait keeps the thread hot, like real compute would.
pub fn spin_for_micros(micros: f64) {
    if micros <= 0.0 {
        return;
    }
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos((micros * 1000.0) as u64);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn completion_set_then_wait() {
        let c = Completion::new();
        assert!(!c.is_set());
        c.set();
        assert!(c.is_set());
        c.wait(); // returns immediately
    }

    #[test]
    fn completion_wakes_blocked_waiter() {
        let c = Completion::new();
        let c2 = Arc::clone(&c);
        let t = std::thread::spawn(move || {
            c2.wait();
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        c.set();
        assert!(t.join().unwrap());
    }

    #[test]
    fn completion_set_is_idempotent() {
        let c = Completion::new();
        c.set();
        c.set();
        assert!(c.is_set());
    }

    #[test]
    fn spin_waits_roughly_right() {
        let t0 = Instant::now();
        spin_for_micros(200.0);
        let e = t0.elapsed();
        assert!(e >= Duration::from_micros(200), "spun only {e:?}");
        assert!(e < Duration::from_millis(50), "spun way too long {e:?}");
    }

    #[test]
    fn spin_zero_is_noop() {
        spin_for_micros(0.0);
        spin_for_micros(-5.0);
    }
}
