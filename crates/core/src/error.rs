//! Structured runtime errors.
//!
//! Before this module existed the runtime had exactly two failure
//! behaviors: panic (misuse asserts, oversized messages) and hang
//! (any lost or unmatched message parked its waiter forever). Both are
//! hostile to chaos testing — a deliberately injected fault must come
//! back as *data*. [`PcommError`] is the taxonomy
//! [`Universe::run`](crate::Universe::run) now returns:
//!
//! * [`PcommError::Stall`] — the watchdog declared the universe hung and
//!   attached a [`StallReport`] describing who waits on what.
//! * [`PcommError::PeerPanicked`] — a rank thread panicked; survivors
//!   were unblocked instead of deadlocking on its missing sends.
//! * [`PcommError::MessageLost`] — chaos dropped a message more times
//!   than the retry budget allows.
//! * [`PcommError::Misuse`] — an API-contract violation (oversized
//!   message, double `pready`, ...) detected without corrupting state.
//!
//! Internally the blocking paths raise these by unwinding the rank
//! thread with `panic_any` (either a typed [`PcommError`] or the
//! [`RankAborted`] sentinel once some other rank already failed); the
//! rank wrapper in `universe.rs` catches the unwind and records the
//! first failure on the fabric.

use std::fmt;

/// Sentinel payload for the unwind used to abort a rank that is blocked
/// while another rank already recorded the failure of record. Carries no
/// information on purpose: the real error is in the fabric's failure
/// slot.
pub(crate) struct RankAborted;

/// What a blocked thread was waiting for when the stall was declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedWait {
    /// Rank of the blocked thread.
    pub rank: usize,
    /// Human-readable description of the wait, e.g.
    /// `recv(src=0, tag=7, ctx=0)` or `part-send msg 2 -> rank 1`.
    pub what: String,
    /// The message tag involved, when the wait has one.
    pub tag: Option<i64>,
    /// Peer rank the wait depends on, when known — the edge the
    /// wait-for-graph deadlock analyzer builds from.
    pub peer: Option<usize>,
}

/// One unmatched entry in a rank's match queues at stall time: either a
/// posted receive nothing arrived for, or an arrived message nothing was
/// posted for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueEntry {
    /// Rank whose queue holds the entry.
    pub rank: usize,
    /// Shard index within that rank.
    pub shard: usize,
    /// Communication context the entry belongs to.
    pub ctx: u64,
    /// Source rank (`None` = wildcard, posted receives only).
    pub src: Option<usize>,
    /// Tag (`None` = wildcard, posted receives only).
    pub tag: Option<i64>,
    /// Payload length (unexpected messages) or receive capacity (posted).
    pub bytes: usize,
}

/// Per-peer socket health at stall time (multiprocess runs only; empty
/// for in-process universes). The frame counters come straight from the
/// progress engine's reader/writer threads, so a stalled wire shows up
/// as a peer whose `frames_received` stopped moving — or whose
/// connection is already gone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerSocketState {
    /// Peer rank this socket leads to.
    pub peer: usize,
    /// Whether the connection was still up when the report was taken.
    pub connected: bool,
    /// Frames written to this peer so far.
    pub frames_sent: u64,
    /// Frames read from this peer so far.
    pub frames_received: u64,
    /// Rendezvous sends to this peer still waiting for their CTS.
    pub pending_rdv: usize,
    /// Writer messages queued toward this peer across all lanes (the
    /// channels are unbounded, so backlog depth — not blocking — is the
    /// congestion signal).
    pub queued: u64,
    /// Data lanes to this peer that died and were failed over.
    pub lanes_down: u16,
    /// Milliseconds since the last frame arrived from this peer (the
    /// liveness signal the heartbeat monitor escalates on).
    pub quiet_ms: u64,
}

/// Structured diagnosis the watchdog produces instead of hanging.
///
/// `Display` renders the whole report, so `{}`-printing the
/// [`PcommError::Stall`] variant gives CI logs the full picture: which
/// rank waits on which request/tag, what sits unmatched in the tag
/// queues, and the global progress counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StallReport {
    /// Configured watchdog deadline, ms.
    pub watchdog_ms: u64,
    /// Observed quiet period with no fabric activity, ms.
    pub quiet_ms: u64,
    /// Ranks whose closures already returned.
    pub finished_ranks: Vec<usize>,
    /// Every registered blocked wait, sorted by rank.
    pub blocked: Vec<BlockedWait>,
    /// Posted receives that never matched.
    pub unmatched_posted: Vec<QueueEntry>,
    /// Arrived messages that never matched a posted receive.
    pub unmatched_unexpected: Vec<QueueEntry>,
    /// Messages matched fabric-wide before the stall.
    pub matched: u64,
    /// Socket state per peer (multiprocess runs; empty in-process).
    pub peers: Vec<PeerSocketState>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "stalled: no fabric activity for {} ms (watchdog {} ms), {} matched messages",
            self.quiet_ms, self.watchdog_ms, self.matched
        )?;
        writeln!(f, "finished ranks: {:?}", self.finished_ranks)?;
        if self.blocked.is_empty() {
            writeln!(f, "blocked waits: (none registered)")?;
        }
        for b in &self.blocked {
            writeln!(f, "  rank {} blocked in {}", b.rank, b.what)?;
        }
        let fmt_opt = |v: Option<i64>| v.map_or("*".to_string(), |x| x.to_string());
        for q in &self.unmatched_posted {
            writeln!(
                f,
                "  unmatched posted recv: rank {} shard {} ctx {} src {} tag {} ({} B cap)",
                q.rank,
                q.shard,
                q.ctx,
                q.src.map_or("*".to_string(), |s| s.to_string()),
                fmt_opt(q.tag),
                q.bytes
            )?;
        }
        for q in &self.unmatched_unexpected {
            writeln!(
                f,
                "  unmatched arrived msg: rank {} shard {} ctx {} src {} tag {} ({} B)",
                q.rank,
                q.shard,
                q.ctx,
                q.src.map_or("*".to_string(), |s| s.to_string()),
                fmt_opt(q.tag),
                q.bytes
            )?;
        }
        for p in &self.peers {
            writeln!(
                f,
                "  peer rank {}: {}, {} frames sent / {} received, {} rendezvous pending, \
                 {} queued, {} lane(s) down, quiet {} ms",
                p.peer,
                if p.connected {
                    "connected"
                } else {
                    "connection lost"
                },
                p.frames_sent,
                p.frames_received,
                p.pending_rdv,
                p.queued,
                p.lanes_down,
                p.quiet_ms
            )?;
        }
        Ok(())
    }
}

/// The error taxonomy of [`Universe::run`](crate::Universe::run).
#[derive(Debug, Clone, PartialEq)]
pub enum PcommError {
    /// The watchdog found the universe making no progress past its
    /// deadline; the report says who waits on what.
    Stall(Box<StallReport>),
    /// A rank thread panicked. Surviving ranks were aborted (they would
    /// otherwise deadlock waiting for the dead rank's sends).
    PeerPanicked {
        /// The rank whose closure panicked.
        rank: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A message was dropped more times than the configured retry budget
    /// (chaos plans only; the fault-free runtime never loses messages).
    MessageLost {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: i64,
        /// Send attempts made (1 original + retries).
        attempts: u32,
    },
    /// An API contract violation detected before it could corrupt
    /// runtime state.
    Misuse {
        /// Rank that made the offending call, when attributable.
        rank: Option<usize>,
        /// What was violated.
        detail: String,
    },
}

impl PcommError {
    /// Convenience constructor for misuse at a known rank.
    pub(crate) fn misuse(rank: usize, detail: impl Into<String>) -> PcommError {
        PcommError::Misuse {
            rank: Some(rank),
            detail: detail.into(),
        }
    }

    /// The stall report, if this is a [`PcommError::Stall`].
    pub fn stall_report(&self) -> Option<&StallReport> {
        match self {
            PcommError::Stall(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for PcommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcommError::Stall(report) => write!(f, "stall detected\n{report}"),
            PcommError::PeerPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            PcommError::MessageLost {
                src,
                dst,
                tag,
                attempts,
            } => write!(
                f,
                "message lost: rank {src} -> rank {dst} tag {tag} dropped on all {attempts} attempts"
            ),
            PcommError::Misuse { rank, detail } => match rank {
                Some(r) => write!(f, "misuse at rank {r}: {detail}"),
                None => write!(f, "misuse: {detail}"),
            },
        }
    }
}

impl std::error::Error for PcommError {}

/// Stringify a caught panic payload (the usual `&str` / `String` cases,
/// with a fallback for exotic payloads).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_blocked_tag() {
        let report = StallReport {
            watchdog_ms: 250,
            quiet_ms: 300,
            finished_ranks: vec![0],
            blocked: vec![BlockedWait {
                rank: 1,
                what: "recv(src=0, tag=42, ctx=0)".into(),
                tag: Some(42),
                peer: Some(0),
            }],
            unmatched_posted: vec![QueueEntry {
                rank: 1,
                shard: 0,
                ctx: 0,
                src: Some(0),
                tag: Some(42),
                bytes: 8,
            }],
            unmatched_unexpected: vec![],
            matched: 17,
            peers: vec![],
        };
        let err = PcommError::Stall(Box::new(report));
        let text = format!("{err}");
        assert!(text.contains("tag=42"), "{text}");
        assert!(text.contains("rank 1 blocked"), "{text}");
        assert!(text.contains("unmatched posted recv"), "{text}");
        assert!(text.contains("17 matched"), "{text}");
    }

    #[test]
    fn errors_are_cloneable_and_display() {
        let e = PcommError::MessageLost {
            src: 0,
            dst: 1,
            tag: 5,
            attempts: 4,
        };
        assert_eq!(e.clone(), e);
        assert!(format!("{e}").contains("all 4 attempts"));
        let m = PcommError::misuse(2, "pready(9) out of range");
        assert!(format!("{m}").contains("misuse at rank 2"));
        assert!(m.stall_report().is_none());
    }

    #[test]
    fn panic_message_handles_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("kapow"));
        assert_eq!(panic_message(s.as_ref()), "kapow");
        let s: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(s.as_ref()), "<non-string panic payload>");
    }
}
