//! Point-to-point operations: blocking sends/receives and persistent
//! requests, over the eager/rendezvous fabric.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

use crate::comm::Comm;
use crate::fabric::{MsgInfo, PostedRecv};
use crate::sync::Completion;

impl Comm {
    /// Blocking send. Eager messages return as soon as the payload is
    /// buffered; rendezvous messages block until a receiver has copied
    /// the data out (which is what keeps the borrow of `data` sound).
    pub fn send(&self, dst: usize, tag: i64, data: &[u8]) {
        let ticket = self
            .fabric()
            .send_raw(dst, self.shard(), self.ctx(), self.rank(), tag, data);
        if let Some(done) = ticket.done() {
            let ctx = self.ctx();
            self.fabric().wait_on(done, self.rank(), || {
                (
                    format!("send(dst={dst}, tag={tag}, ctx={ctx})"),
                    Some(tag),
                    Some(dst),
                )
            });
        }
    }

    /// Blocking receive into `buf`; returns the envelope. `None` matches
    /// any source / any tag.
    pub fn recv_into(&self, src: Option<usize>, tag: Option<i64>, buf: &mut [u8]) -> MsgInfo {
        let completion = Completion::new();
        let info = Arc::new(Mutex::new(None));
        let ticket = self.fabric().post_recv(
            self.rank(),
            self.shard(),
            PostedRecv {
                ctx: self.ctx(),
                src,
                tag,
                dest_ptr: buf.as_mut_ptr(),
                dest_cap: buf.len(),
                info,
                completion,
                verify_msg: None,
            },
        );
        // Block until fulfilled: `buf` stays exclusively borrowed.
        let ctx = self.ctx();
        self.fabric().wait_on(&ticket.completion, self.rank(), || {
            let src_s = src.map_or("*".to_string(), |s| s.to_string());
            let tag_s = tag.map_or("*".to_string(), |t| t.to_string());
            (
                format!("recv(src={src_s}, tag={tag_s}, ctx={ctx})"),
                tag,
                src,
            )
        });
        let info = ticket
            .info
            .lock()
            .take()
            .expect("completed receive carries info");
        info
    }

    /// Convenience: receive up to `max_len` bytes into a fresh vector.
    pub fn recv_vec(
        &self,
        src: Option<usize>,
        tag: Option<i64>,
        max_len: usize,
    ) -> (Vec<u8>, MsgInfo) {
        let mut buf = vec![0u8; max_len];
        let info = self.recv_into(src, tag, &mut buf);
        buf.truncate(info.len);
        (buf, info)
    }

    /// Create a persistent send request over an owned buffer of `len`
    /// bytes (`MPI_Send_init`). Fill it with
    /// [`PersistentSend::write`] before each `start`.
    pub fn send_init(&self, dst: usize, tag: i64, len: usize) -> PersistentSend {
        PersistentSend {
            comm: self.clone(),
            dst,
            tag,
            buf: UnsafeCell::new(vec![0u8; len].into_boxed_slice()),
            // Pre-set: probing an inactive request reports complete.
            done: Completion::new_set(),
            in_flight: AtomicBool::new(false),
        }
    }

    /// Create a persistent receive request with an owned buffer of `len`
    /// bytes (`MPI_Recv_init`).
    pub fn recv_init(&self, src: usize, tag: i64, len: usize) -> PersistentRecv {
        PersistentRecv {
            comm: self.clone(),
            src,
            tag,
            buf: UnsafeCell::new(vec![0u8; len].into_boxed_slice()),
            done: Completion::new_set(),
            info: Arc::new(Mutex::new(None)),
            in_flight: AtomicBool::new(false),
            last_info: Mutex::new(None),
        }
    }
}

/// Persistent send request owning its buffer.
///
/// Usable from multiple threads of a rank (`Sync`); the start/wait cycle
/// is enforced at runtime.
pub struct PersistentSend {
    comm: Comm,
    dst: usize,
    tag: i64,
    buf: UnsafeCell<Box<[u8]>>,
    /// Persistent completion, reset by `start()` and set when the buffer
    /// is reusable; `test()` is a single atomic load on it.
    done: Arc<Completion>,
    in_flight: AtomicBool,
}

// SAFETY: buffer access is gated by `in_flight` (no writes while a ticket
// is outstanding); the fabric only reads the buffer until the ticket
// completes.
unsafe impl Sync for PersistentSend {}
unsafe impl Send for PersistentSend {}

impl PersistentSend {
    /// Buffer length.
    pub fn len(&self) -> usize {
        // SAFETY: the length is fixed at construction; reading it never
        // aliases the buffer contents the fabric may be reading.
        unsafe { (&*self.buf.get()).len() }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutate the send buffer. Panics while a send is in flight.
    pub fn write(&self, f: impl FnOnce(&mut [u8])) {
        assert!(
            !self.in_flight.load(Ordering::Acquire),
            "cannot write send buffer while the request is active"
        );
        // SAFETY: not in flight → the fabric holds no pointer to the
        // buffer; `&self` plus the runtime flag gate exclusive access
        // (concurrent `write` calls are a usage error the benchmark
        // structure never produces; MPI gives the same contract).
        f(unsafe { &mut *self.buf.get() });
    }

    /// `MPI_Start`: inject the message.
    pub fn start(&self) {
        assert!(
            !self.in_flight.swap(true, Ordering::AcqRel),
            "persistent send started twice without wait"
        );
        self.done.reset();
        // SAFETY: in_flight now true → no writer can touch the buffer
        // until wait(); the slice stays valid for the fabric.
        let data: &[u8] = unsafe { &*self.buf.get() };
        self.comm.fabric().send_raw_signal(
            self.dst,
            self.comm.shard(),
            self.comm.ctx(),
            self.comm.rank(),
            self.tag,
            data,
            &self.done,
        );
    }

    /// `MPI_Wait`: block until the buffer is reusable.
    pub fn wait(&self) {
        assert!(
            self.in_flight.load(Ordering::Acquire),
            "persistent send not started"
        );
        let (dst, tag) = (self.dst, self.tag);
        self.comm
            .fabric()
            .wait_on(&self.done, self.comm.rank(), || {
                (
                    format!("persistent send wait(dst={dst}, tag={tag})"),
                    Some(tag),
                    Some(dst),
                )
            });
        self.in_flight.store(false, Ordering::Release);
    }

    /// Non-blocking completion probe (`MPI_Test`): one atomic load, no
    /// lock. `true` when inactive (MPI convention).
    pub fn test(&self) -> bool {
        self.done.is_set()
    }
}

impl Drop for PersistentSend {
    fn drop(&mut self) {
        // An in-flight rendezvous pins a pointer into our buffer: drain
        // (abort-aware, so an aborted universe cannot hang teardown).
        if self.in_flight.load(Ordering::Acquire) {
            self.comm.fabric().drain_completion(&self.done);
        }
    }
}

/// Persistent receive request owning its buffer.
pub struct PersistentRecv {
    comm: Comm,
    src: usize,
    tag: i64,
    buf: UnsafeCell<Box<[u8]>>,
    /// Persistent arrival signal, reset by `start()`, set by the fabric.
    done: Arc<Completion>,
    /// Persistent envelope slot handed to the fabric with each post.
    info: Arc<Mutex<Option<MsgInfo>>>,
    in_flight: AtomicBool,
    last_info: Mutex<Option<MsgInfo>>,
}

// SAFETY: as for PersistentSend; the fabric writes the buffer only while
// in_flight, and readers are gated on completion.
unsafe impl Sync for PersistentRecv {}
unsafe impl Send for PersistentRecv {}

impl PersistentRecv {
    /// Buffer length.
    pub fn len(&self) -> usize {
        // SAFETY: the length is fixed at construction; reading it never
        // aliases the buffer contents the fabric may be writing.
        unsafe { (&*self.buf.get()).len() }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `MPI_Start`: post the receive.
    pub fn start(&self) {
        assert!(
            !self.in_flight.swap(true, Ordering::AcqRel),
            "persistent recv started twice without wait"
        );
        // Re-arm the persistent slots before posting: a fulfilled post
        // sets `done` immediately when the message was unexpected.
        self.done.reset();
        *self.info.lock() = None;
        // SAFETY: in_flight gates all other access until wait().
        let buf: &mut [u8] = unsafe { &mut *self.buf.get() };
        self.comm.fabric().post_recv(
            self.comm.rank(),
            self.comm.shard(),
            PostedRecv {
                ctx: self.comm.ctx(),
                src: Some(self.src),
                tag: Some(self.tag),
                dest_ptr: buf.as_mut_ptr(),
                dest_cap: buf.len(),
                info: Arc::clone(&self.info),
                completion: Arc::clone(&self.done),
                verify_msg: None,
            },
        );
    }

    /// `MPI_Wait`: block until the message landed; returns the envelope.
    pub fn wait(&self) -> MsgInfo {
        assert!(
            self.in_flight.load(Ordering::Acquire),
            "persistent recv not started"
        );
        let (src, tag) = (self.src, self.tag);
        self.comm
            .fabric()
            .wait_on(&self.done, self.comm.rank(), || {
                (
                    format!("persistent recv wait(src={src}, tag={tag})"),
                    Some(tag),
                    Some(src),
                )
            });
        let info = self.info.lock().expect("completed receive carries info");
        *self.last_info.lock() = Some(info);
        self.in_flight.store(false, Ordering::Release);
        info
    }

    /// Non-blocking arrival probe: one atomic load, no lock. `true` when
    /// inactive (MPI convention).
    pub fn test(&self) -> bool {
        self.done.is_set()
    }

    /// Envelope of the most recently completed receive, if any.
    pub fn last_info(&self) -> Option<MsgInfo> {
        *self.last_info.lock()
    }

    /// Read the received data. Panics while a receive is in flight.
    pub fn read(&self, f: impl FnOnce(&[u8])) {
        assert!(
            !self.in_flight.load(Ordering::Acquire),
            "cannot read recv buffer while the request is active"
        );
        // SAFETY: not in flight → fabric holds no pointer to the buffer.
        f(unsafe { &*self.buf.get() });
    }
}

impl Drop for PersistentRecv {
    fn drop(&mut self) {
        // The fabric may still hold a pointer into our buffer: drain
        // (abort-aware, so an aborted universe cannot hang teardown).
        if self.in_flight.load(Ordering::Acquire) {
            self.comm.fabric().drain_completion(&self.done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn blocking_send_recv_roundtrip() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 5, b"hello fabric");
                } else {
                    let (data, info) = comm.recv_vec(Some(0), Some(5), 64);
                    assert_eq!(&data, b"hello fabric");
                    assert_eq!(info.src, 0);
                    assert_eq!(info.tag, 5);
                }
            })
            .unwrap();
    }

    #[test]
    fn rendezvous_roundtrip_through_universe() {
        Universe::new(2)
            .with_eager_max(128)
            .run(|comm| {
                let big: Vec<u8> = (0..10_000).map(|i| (i * 7 % 256) as u8).collect();
                if comm.rank() == 0 {
                    comm.send(1, 0, &big);
                } else {
                    let mut buf = vec![0u8; 10_000];
                    let info = comm.recv_into(Some(0), Some(0), &mut buf);
                    assert_eq!(info.len, 10_000);
                    assert_eq!(buf, big);
                }
            })
            .unwrap();
    }

    #[test]
    fn wildcard_receive() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 77, &[9]);
                } else {
                    let (data, info) = comm.recv_vec(None, None, 8);
                    assert_eq!(data, vec![9]);
                    assert_eq!(info.tag, 77);
                }
            })
            .unwrap();
    }

    #[test]
    fn many_messages_in_order_same_channel() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    for i in 0..200u8 {
                        comm.send(1, 1, &[i]);
                    }
                } else {
                    // Same (src, tag, ctx): FIFO matching guarantees order.
                    for i in 0..200u8 {
                        let mut b = [0u8; 1];
                        comm.recv_into(Some(0), Some(1), &mut b);
                        assert_eq!(b[0], i);
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn persistent_send_recv_cycles() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.send_init(1, 3, 8);
                    for it in 0..20u8 {
                        ps.write(|b| b.fill(it));
                        ps.start();
                        ps.wait();
                    }
                } else {
                    let pr = comm.recv_init(0, 3, 8);
                    for it in 0..20u8 {
                        pr.start();
                        let info = pr.wait();
                        assert_eq!(info.len, 8);
                        pr.read(|b| assert!(b.iter().all(|&x| x == it)));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn persistent_rendezvous_cycles() {
        Universe::new(2)
            .with_eager_max(64)
            .run(|comm| {
                let n = 4096;
                if comm.rank() == 0 {
                    let ps = comm.send_init(1, 0, n);
                    for it in 0..5u8 {
                        ps.write(|b| b.fill(it));
                        ps.start();
                        ps.wait();
                    }
                } else {
                    let pr = comm.recv_init(0, 0, n);
                    for it in 0..5u8 {
                        pr.start();
                        pr.wait();
                        pr.read(|b| assert!(b.iter().all(|&x| x == it)));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn dup_isolates_traffic() {
        Universe::new(2)
            .with_shards(2)
            .run(|comm| {
                let d = comm.dup();
                if comm.rank() == 0 {
                    // Same tag on two communicators: no crosstalk.
                    comm.send(1, 1, &[1]);
                    d.send(1, 1, &[2]);
                } else {
                    let mut b = [0u8; 1];
                    d.recv_into(Some(0), Some(1), &mut b);
                    assert_eq!(b[0], 2);
                    comm.recv_into(Some(0), Some(1), &mut b);
                    assert_eq!(b[0], 1);
                }
            })
            .unwrap();
    }

    #[test]
    fn concurrent_thread_sends_on_dup_comms() {
        // The Pt2Pt-many pattern: per-thread communicators, concurrent
        // sends, all messages arrive intact.
        let n_threads = 8;
        Universe::new(2)
            .with_shards(8)
            .run(|comm| {
                let comms: Vec<Comm> = (0..n_threads).map(|_| comm.dup()).collect();
                if comm.rank() == 0 {
                    std::thread::scope(|s| {
                        for (t, c) in comms.iter().enumerate() {
                            s.spawn(move || {
                                c.send(1, t as i64, &[t as u8; 32]);
                            });
                        }
                    });
                } else {
                    std::thread::scope(|s| {
                        for (t, c) in comms.iter().enumerate() {
                            s.spawn(move || {
                                let mut b = [0u8; 32];
                                c.recv_into(Some(0), Some(t as i64), &mut b);
                                assert!(b.iter().all(|&x| x == t as u8));
                            });
                        }
                    });
                }
            })
            .unwrap();
    }

    #[test]
    fn persistent_test_probe_is_lock_free() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.send_init(1, 0, 8);
                    assert!(ps.test(), "inactive send tests complete");
                    ps.start();
                    ps.wait();
                    assert!(ps.test(), "inactive again after wait");
                } else {
                    let pr = comm.recv_init(0, 0, 8);
                    assert!(pr.test(), "inactive recv tests complete");
                    pr.start();
                    let before = crate::hotpath::thread_stats();
                    while !pr.test() {
                        std::hint::spin_loop();
                    }
                    let after = crate::hotpath::thread_stats();
                    assert_eq!(
                        after.mutex_locks, before.mutex_locks,
                        "test() polling must take no runtime mutex"
                    );
                    pr.wait();
                }
            })
            .unwrap();
    }

    #[test]
    fn double_start_returns_peer_panicked() {
        // Rank 1 stays passive: the eager message parks in its unexpected
        // queue, so no rank blocks while rank 0 panics.
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let ps = comm.send_init(1, 0, 4);
                    ps.start();
                    ps.start();
                }
            })
            .unwrap_err();
        match err {
            crate::PcommError::PeerPanicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("started twice"), "{message}");
            }
            other => panic!("expected PeerPanicked, got {other:?}"),
        }
    }
}
