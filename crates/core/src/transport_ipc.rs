//! `IpcTransport`: the same-host zero-syscall fabric. Ranks map one
//! shared memory segment (memfd + `MAP_SHARED`, see
//! [`pcomm_net::ipc`]) holding, per directed pair, an SPSC descriptor
//! ring plus a FIFO slab and a partition arena. Small frames ride
//! inline in ring slots (bcopy); large rendezvous payloads stream
//! through the slab; partitioned streams whose destination lives in
//! the arena commit with **no copy at all** — every `pready` lands its
//! bytes directly in receiver-visible memory and publishes a
//! payload-less `K_PART` descriptor, so `parrived` flips without a
//! reader-thread hop.
//!
//! Wakeups are futex doorbells ([`pcomm_net::ipc::doorbell`]): the
//! steady state is zero syscalls per transfer (spin-then-futex on both
//! the producer's backpressure path and the consumer's idle path).
//!
//! Progress discipline: there are no reader/writer threads. The app
//! thread makes progress inline from [`Transport::wait_slice`], and a
//! single low-duty "pcomm-ipc" thread per process backstops
//! completions nobody is actively waiting on and runs the heartbeat
//! monitor (peer death becomes a typed [`PcommError::PeerPanicked`]
//! instead of a hang).
//!
//! Verify/audit semantics mirror the socket transport exactly — same
//! `VerifyWire*`/`VerifyStream*` events, with the ipc simplifications
//! `lane == 0` and `epoch == 0` everywhere (the segment never
//! reconnects, so there is a single always-epoch-0 lane per pair).

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pcomm_net::frame::{self, Frame};
use pcomm_net::ipc::ring::{
    Channel, SlotDesc, INLINE_MAX, K_FRAME, K_PART, K_PARTF, K_PART_CTS, K_RDV, K_SLAB,
};
use pcomm_net::ipc::slab::ArenaAlloc;
use pcomm_net::ipc::{self, IpcParams, Segment};
use pcomm_net::{sys, Mesh};
use pcomm_trace::EventKind;

use crate::error::{PcommError, PeerSocketState};
use crate::fabric::{Fabric, PostedRecv, WAIT_SLICE};
use crate::sync::{Completion, Mutex};
use crate::transport::{
    claim_range, complete_spans, decode_abort, encode_abort, PartPair, PartStreamRecv, PinnedSend,
    SendSpan, StreamRecv, Transport, FINALIZE_TIMEOUT, TEARDOWN_SLICE,
};

/// How long `wait_slice` spins making inline progress before parking on
/// the completion. Long enough to cover a same-host round trip (the
/// latency-critical window), short enough not to burn a core when the
/// peer is genuinely slow.
const SPIN_WINDOW: Duration = Duration::from_micros(150);

/// Futex timeout for one backpressure wait on a full ring, ns. Short:
/// a stuck consumer is re-checked often enough that abort flags and
/// deadlines stay responsive.
const PUSH_SLICE_NS: u64 = 200_000;

/// Default heartbeat publish period when `PCOMM_NET_HB_MS` is unset.
/// A peer is declared dead after 7/4 of this with no counter movement.
const DEFAULT_HB_MS: u64 = 500;

/// Hard bound on force-pushes during teardown (abort broadcast, `Bye`):
/// past this the peer is not draining and the record is dropped — the
/// heartbeat monitor or the universe watchdog carries the diagnosis.
const TEARDOWN_PUSH_BUDGET: Duration = Duration::from_secs(1);

/// Per-peer shared-memory channel pair plus this process's send/recv
/// bookkeeping for the peer.
struct IpcPeer {
    /// Producer side of `channel(rank, peer)`. The mutex serialises
    /// producers (app threads and the progress thread both push).
    out: Mutex<Channel>,
    /// Unlocked copy of `out` for lock-free doorbell/arena reads.
    out_ch: Channel,
    /// Consumer side of `channel(peer, rank)`; `try_lock` elects one
    /// drainer at a time (app threads race the progress thread).
    inb: Mutex<Channel>,
    /// Unlocked copy of `inb` for lock-free doorbell/arena reads.
    inb_ch: Channel,
    /// Verify-mode send sequence (serialised by the `out` mutex).
    tx_seq: AtomicU32,
    /// Verify-mode receive sequence (serialised by the `inb` drainer).
    rx_seq: AtomicU32,
    /// Descriptors published toward this peer (diagnostics).
    frames_sent: AtomicU64,
    /// Descriptors drained from this peer (diagnostics).
    frames_received: AtomicU64,
    /// The peer's `Bye` arrived; its heartbeat may legitimately stop.
    saw_bye: AtomicBool,
    /// Last observed heartbeat value and when it last changed.
    hb_seen: Mutex<Option<(u64, Instant)>>,
    /// Allocator over the *inbound* channel's partition arena: grants
    /// receiver-side destinations for streams arriving from this peer.
    arena: Mutex<ArenaAlloc>,
}

/// A parked remote rendezvous receive: the posted destination plus the
/// envelope to publish once every `K_RDV` chunk has landed.
struct RdvIn {
    posted: PostedRecv,
    shard: usize,
    tag: i64,
    rts_ns: Option<u64>,
    /// Bytes landed so far (chunks arrive in order on the SPSC ring).
    received: usize,
}

/// A pinned rendezvous source waiting for its CTS.
struct PendingRdvIpc {
    pinned: PinnedSend,
    dst: usize,
}

/// One pushed range queued while the stream's `K_PART_CTS` is still in
/// flight.
struct QueuedRange {
    offset: u64,
    ptr: *const u8,
    len: usize,
    parts: u16,
}

// SAFETY: the pointed-to source buffer stays alive and unmodified until
// the covering spans' `done` completions fire (fabric invariant (1)),
// and only the thread that ships the range reads through the pointer.
unsafe impl Send for QueuedRange {}

/// Sender-side state of one partitioned stream.
struct IpcStreamSend {
    dst: usize,
    total_len: usize,
    /// Bytes pushed so far; the entry retires at `total_len` once the
    /// CTS has also arrived.
    pushed: usize,
    /// `None` until the `K_PART_CTS` arrives; then the receiver's arena
    /// grant (`Some(offset)`) or `None` for the FIFO-copy fallback.
    cts: Option<Option<u64>>,
    queued: Vec<QueuedRange>,
    spans: Arc<Vec<SendSpan>>,
}

/// Payload placement for one pushed record.
enum Body<'a> {
    /// Copied into the ring slot (`len <= INLINE_MAX`).
    Inline(&'a [u8]),
    /// Copied into the FIFO slab (anything larger, up to `fifo_bytes`).
    Slab(&'a [u8]),
}

/// A drained record whose handler may *push* (CTS answers, barrier
/// releases, get responses). Dispatching those while holding the
/// inbound guard — with the popped slot not yet recycled — can
/// deadlock two ranks symmetrically: both blocked pushing into full
/// rings, both drain passes skipping the channel they hold. So pushy
/// records are deferred until the guard drops and the slot is free;
/// everything else dispatches inline (zero extra copies).
enum Deferred {
    Frame(Frame),
    PartCts { rdv_id: u64, grant: Option<u64> },
}

/// The shared-memory transport for one rank of a same-host run.
pub(crate) struct IpcTransport {
    rank: usize,
    n_ranks: usize,
    segment: Segment,
    /// FIFO slab capacity per channel (caps one frame's body).
    fifo_bytes: u64,
    /// Chunk size for slab-staged bulk transfers (`K_RDV`/`K_PARTF`).
    rdv_chunk: usize,
    peers: Vec<Option<IpcPeer>>,
    /// Back-reference for trait methods that lack a `fabric` parameter
    /// (set by `start`; `Weak` breaks the `Fabric → Transport` cycle).
    fabric_slot: OnceLock<Weak<Fabric>>,
    next_rdv_id: AtomicU64,
    pending_rdv: Mutex<HashMap<u64, PendingRdvIpc>>,
    rdv_in: Mutex<HashMap<(usize, u64), RdvIn>>,
    streams_out: Mutex<HashMap<u64, IpcStreamSend>>,
    part_registry: Mutex<HashMap<(usize, u64), PartPair>>,
    streams_in: Mutex<HashMap<(usize, u64), Arc<StreamRecv>>>,
    barrier_gen: AtomicU64,
    arrivals: Mutex<HashMap<u64, HashSet<usize>>>,
    releases: Mutex<HashMap<u64, Arc<Completion>>>,
    #[allow(clippy::type_complexity)] // announce slot pair, as in the socket transport
    win_slots: Mutex<HashMap<u64, (Arc<Completion>, Option<usize>)>>,
    next_get_token: AtomicU64,
    #[allow(clippy::type_complexity)] // waiter pair, as in the socket transport
    get_waiters: Mutex<HashMap<u64, (Arc<Completion>, Arc<Mutex<Option<Vec<u8>>>>)>>,
    abort_sent: AtomicBool,
    progress: Mutex<Option<JoinHandle<()>>>,
    stop: AtomicBool,
    /// Heartbeat publish period, ms.
    hb_ms: u64,
}

impl IpcTransport {
    pub(crate) fn new(segment: Segment, rank: usize, n_ranks: usize) -> Arc<IpcTransport> {
        let params = *segment.params();
        let mut peers = Vec::with_capacity(n_ranks);
        for r in 0..n_ranks {
            if r == rank {
                peers.push(None);
                continue;
            }
            let out_ch = segment.channel(rank, r);
            let inb_ch = segment.channel(r, rank);
            peers.push(Some(IpcPeer {
                out: Mutex::new(out_ch),
                out_ch,
                inb: Mutex::new(inb_ch),
                inb_ch,
                tx_seq: AtomicU32::new(0),
                rx_seq: AtomicU32::new(0),
                frames_sent: AtomicU64::new(0),
                frames_received: AtomicU64::new(0),
                saw_bye: AtomicBool::new(false),
                hb_seen: Mutex::new(None),
                arena: Mutex::new(ArenaAlloc::new(params.arena_bytes)),
            }));
        }
        let fifo_bytes = params.fifo_bytes;
        Arc::new(IpcTransport {
            rank,
            n_ranks,
            segment,
            fifo_bytes,
            rdv_chunk: ((fifo_bytes / 2).max(1) as usize).min(256 << 10),
            peers,
            fabric_slot: OnceLock::new(),
            next_rdv_id: AtomicU64::new(1),
            pending_rdv: Mutex::new(HashMap::new()),
            rdv_in: Mutex::new(HashMap::new()),
            streams_out: Mutex::new(HashMap::new()),
            part_registry: Mutex::new(HashMap::new()),
            streams_in: Mutex::new(HashMap::new()),
            barrier_gen: AtomicU64::new(0),
            arrivals: Mutex::new(HashMap::new()),
            releases: Mutex::new(HashMap::new()),
            win_slots: Mutex::new(HashMap::new()),
            next_get_token: AtomicU64::new(0),
            get_waiters: Mutex::new(HashMap::new()),
            abort_sent: AtomicBool::new(false),
            progress: Mutex::new(None),
            stop: AtomicBool::new(false),
            hb_ms: pcomm_net::launch::hb_ms_from_env().unwrap_or(DEFAULT_HB_MS),
        })
    }

    /// The fabric this transport serves, if it is still alive (trait
    /// methods without a `fabric` parameter route through here; during
    /// teardown the weak can be gone, and the op is dropped).
    fn fabric(&self) -> Option<Arc<Fabric>> {
        self.fabric_slot.get()?.upgrade()
    }

    /// Spawn the progress/heartbeat thread and publish the fabric
    /// back-reference. Mirrors `SocketTransport::start`.
    pub(crate) fn start(self: &Arc<IpcTransport>, fabric: &Arc<Fabric>) -> Result<(), PcommError> {
        let _ = self.fabric_slot.set(Arc::downgrade(fabric));
        // ORDERING: liveness counter only; peers poll for movement.
        self.segment
            .heartbeat(self.rank)
            .fetch_add(1, Ordering::Relaxed);
        let me = Arc::clone(self);
        let fab = Arc::clone(fabric);
        let handle = std::thread::Builder::new()
            .name("pcomm-ipc".into())
            .spawn(move || me.progress_loop(&fab))
            .map_err(|e| PcommError::Misuse {
                rank: Some(self.rank),
                detail: format!("transport start: spawning ipc progress thread: {e}"),
            })?;
        *self.progress.lock() = Some(handle);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Producer side: publishing records with backpressure.
// ---------------------------------------------------------------------

impl IpcTransport {
    /// Publish one record toward `dst`, blocking on the peer's space
    /// doorbell while the ring (or FIFO) is full. Returns `false` when
    /// the push was abandoned: the run aborted (unless `force`), the
    /// transport is stopping, or `deadline` passed. The doorbell seq is
    /// snapshotted *before* each push attempt, so a consumer pop
    /// between the failed attempt and the wait rings a bell the wait
    /// observes — no lost wakeup.
    #[allow(clippy::too_many_arguments)] // one per wire-record field
    fn push_record(
        &self,
        fabric: &Fabric,
        dst: usize,
        op: u8,
        desc: SlotDesc,
        body: Body<'_>,
        deadline: Option<Instant>,
        force: bool,
    ) -> bool {
        let Some(peer) = &self.peers[dst] else {
            return false;
        };
        let mut waited_since: Option<Instant> = None;
        loop {
            let seen = peer.out_ch.space_doorbell().seq();
            let pushed = {
                let out = peer.out.lock();
                let ok = match body {
                    Body::Inline(p) => out.try_push(desc, p).is_ok(),
                    Body::Slab(p) => out.try_push_slab(desc, &[p]).is_ok(),
                };
                if ok {
                    let trace = fabric.trace();
                    if trace.is_verify() {
                        // ORDERING: Relaxed suffices — the `out` mutex
                        // already serialises every producer on this
                        // counter (same argument as the socket lanes).
                        let seq = peer.tx_seq.fetch_add(1, Ordering::Relaxed);
                        let (p16, op16) = (dst as u16, op as u16);
                        trace.emit_verify(self.rank as u16, || EventKind::VerifyWireSend {
                            peer: p16,
                            lane: 0,
                            op: op16,
                            epoch: 0,
                            seq,
                        });
                    }
                }
                ok
            };
            if pushed {
                // ORDERING: advisory stat for diagnostics snapshots.
                peer.frames_sent.fetch_add(1, Ordering::Relaxed);
                let _ = self.segment.doorbell(dst).ring();
                if let Some(since) = waited_since {
                    let (p16, kind) = (dst as u16, desc.kind);
                    let wait_ns = since.elapsed().as_nanos() as u64;
                    fabric
                        .trace()
                        .emit(self.rank as u16, || EventKind::IpcRingFull {
                            peer: p16,
                            kind,
                            wait_ns,
                        });
                }
                return true;
            }
            // Ring full: pure backpressure. Never drop; keep our own
            // inbound draining (the peer may be blocked pushing to us —
            // symmetric fullness must not deadlock), then park briefly
            // on the space doorbell.
            if !force && (fabric.aborted() || self.stop.load(Ordering::Acquire)) {
                return false;
            }
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return false;
            }
            waited_since.get_or_insert_with(Instant::now);
            if self.progress_pass(fabric) {
                continue;
            }
            let _ = peer.out_ch.space_doorbell().wait(seen, PUSH_SLICE_NS);
        }
    }

    /// Encode and publish one control/data frame: inline when it fits a
    /// ring slot, staged through the FIFO slab otherwise. A body larger
    /// than the slab itself is user error (one unchunkable RMA put/get
    /// larger than the configured slab) and fails the universe.
    fn push_frame(
        &self,
        fabric: &Fabric,
        dst: usize,
        frame: &Frame,
        deadline: Option<Instant>,
        force: bool,
    ) -> bool {
        let mut buf = Vec::with_capacity(64);
        frame.encode_into(&mut buf);
        let body = &buf[4..]; // strip the length prefix: rings are record-framed
        let desc = SlotDesc {
            kind: if body.len() <= INLINE_MAX {
                K_FRAME
            } else {
                K_SLAB
            },
            parts: 0,
            a: 0,
            b: 0,
            c: 0,
        };
        if body.len() as u64 > self.fifo_bytes {
            fabric.fail(PcommError::misuse(
                self.rank,
                format!(
                    "ipc frame body of {} B exceeds the {}-byte FIFO slab; \
                     raise PCOMM_NET_IPC_SLAB",
                    body.len(),
                    self.fifo_bytes
                ),
            ));
            return false;
        }
        let placed = if desc.kind == K_FRAME {
            Body::Inline(body)
        } else {
            Body::Slab(body)
        };
        self.push_record(fabric, dst, frame.op(), desc, placed, deadline, force)
    }

    /// `push_frame` for trait methods that have no `fabric` parameter.
    fn send_frame(&self, dst: usize, frame: Frame) {
        if let Some(fabric) = self.fabric() {
            self.push_frame(&fabric, dst, &frame, None, false);
        }
    }
}

// ---------------------------------------------------------------------
// Consumer side: draining records and dispatching.
// ---------------------------------------------------------------------

impl IpcTransport {
    /// Drain every peer's inbound channel once; returns whether any
    /// record was consumed.
    fn progress_pass(&self, fabric: &Fabric) -> bool {
        let mut any = false;
        for src in 0..self.n_ranks {
            if src != self.rank {
                any |= self.drain_peer(fabric, src);
            }
        }
        any
    }

    /// Drain `src`'s inbound channel until it is empty or another
    /// thread holds it. One record per lock acquisition: pushy records
    /// are dispatched *after* the guard drops and the slot is recycled
    /// (see [`Deferred`]), so a dispatch that blocks on backpressure
    /// can never wedge this channel's drain.
    fn drain_peer(&self, fabric: &Fabric, src: usize) -> bool {
        let Some(peer) = &self.peers[src] else {
            return false;
        };
        let mut any = false;
        loop {
            let mut deferred: Option<Deferred> = None;
            let popped = {
                let Some(inb) = peer.inb.try_lock() else {
                    return any; // another thread is draining this peer
                };
                let r = inb.try_pop(|desc, payload| {
                    let trace = fabric.trace();
                    if trace.is_verify() {
                        // ORDERING: Relaxed — the `inb` drainer election
                        // serialises this counter.
                        let seq = peer.rx_seq.fetch_add(1, Ordering::Relaxed);
                        let op16 = match desc.kind {
                            K_PART | K_PARTF => frame::op::PART_DATA as u16,
                            K_RDV => frame::op::RDV_DATA as u16,
                            K_PART_CTS => frame::op::PART_CTS as u16,
                            // [ver][op][body]: the op byte of the frame.
                            _ => payload.get(1).copied().unwrap_or(0) as u16,
                        };
                        let p16 = src as u16;
                        trace.emit_verify(self.rank as u16, || EventKind::VerifyWireRecv {
                            peer: p16,
                            lane: 0,
                            op: op16,
                            epoch: 0,
                            seq,
                        });
                    }
                    // ORDERING: advisory stat for diagnostics snapshots.
                    peer.frames_received.fetch_add(1, Ordering::Relaxed);
                    match desc.kind {
                        K_PART => self.handle_part_commit(
                            fabric,
                            src,
                            desc.a,
                            desc.b as usize,
                            desc.c as usize,
                        ),
                        K_PARTF => {
                            self.handle_part_fifo(fabric, src, desc.a, desc.b as usize, payload)
                        }
                        K_RDV => self.handle_rdv_chunk(
                            fabric,
                            src,
                            desc.a,
                            desc.b as usize,
                            desc.parts == 1,
                            payload,
                        ),
                        K_PART_CTS => {
                            deferred = Some(Deferred::PartCts {
                                rdv_id: desc.a,
                                grant: (desc.b != u64::MAX).then_some(desc.b),
                            });
                        }
                        K_FRAME | K_SLAB => match Frame::decode(payload) {
                            Ok(f) => match f {
                                // Handlers that answer with a push of
                                // their own: deferred (deadlock rule).
                                Frame::Cts { .. }
                                | Frame::Rts { .. }
                                | Frame::PartRts { .. }
                                | Frame::PartCts { .. }
                                | Frame::GetReq { .. }
                                | Frame::BarrierArrive { .. } => {
                                    deferred = Some(Deferred::Frame(f))
                                }
                                f => self.dispatch_frame(fabric, src, f),
                            },
                            Err(e) => fabric.fail(PcommError::misuse(
                                src,
                                format!("undecodable ipc frame record: {e}"),
                            )),
                        },
                        k => fabric.fail(PcommError::misuse(
                            src,
                            format!("unknown ipc slot kind {k}"),
                        )),
                    }
                });
                match r {
                    Ok(p) => p,
                    Err(e) => {
                        fabric.fail(PcommError::misuse(
                            src,
                            format!("corrupt ipc ring from rank {src}: {e}"),
                        ));
                        return any;
                    }
                }
            };
            if !popped {
                return any;
            }
            any = true;
            match deferred {
                Some(Deferred::Frame(f)) => self.dispatch_frame(fabric, src, f),
                Some(Deferred::PartCts { rdv_id, grant }) => {
                    self.handle_part_cts(fabric, src, rdv_id, grant)
                }
                None => {}
            }
        }
    }

    /// Dispatch one decoded frame (the non-ring-native records; bulk
    /// data uses the `K_*` descriptor kinds instead). Mirrors the
    /// socket transport's `dispatch` arm for arm.
    fn dispatch_frame(&self, fabric: &Fabric, peer: usize, frame: Frame) {
        match frame {
            Frame::Eager {
                shard,
                ctx,
                tag,
                payload,
            } => fabric.deliver_wire_eager(peer, shard as usize, ctx, tag, &payload),
            Frame::Rts {
                shard,
                ctx,
                tag,
                len,
                rdv_id,
            } => fabric.deliver_wire_rts(peer, shard as usize, ctx, tag, len as usize, rdv_id),
            Frame::Cts { rdv_id } => self.handle_cts(fabric, peer, rdv_id),
            // Zero-length rendezvous only: non-empty payloads ride
            // `K_RDV` chunks, which never materialise a `Frame`.
            Frame::RdvData { rdv_id, payload } => {
                let entry = self.rdv_in.lock().remove(&(peer, rdv_id));
                if let Some(r) = entry {
                    fabric.complete_remote_rdv(r.posted, peer, r.tag, r.shard, &payload, r.rts_ns);
                }
            }
            Frame::PartRts {
                ctx,
                total_len,
                rdv_id,
            } => self.handle_part_rts(fabric, peer, ctx, total_len as usize, rdv_id),
            // The ipc CTS is the payload-less `K_PART_CTS` record; a
            // framed one would be a peer protocol bug, but absorbing it
            // as "no grant" keeps the FSM total.
            Frame::PartCts { rdv_id } => self.handle_part_cts(fabric, peer, rdv_id, None),
            Frame::PartData {
                rdv_id,
                offset,
                payload,
            } => self.handle_part_fifo(fabric, peer, rdv_id, offset as usize, &payload),
            Frame::BarrierArrive { gen } => self.note_arrival(fabric, gen, peer),
            Frame::BarrierRelease { gen } => self.release_completion(gen).set(),
            Frame::Heartbeat { .. } => {} // liveness rides the segment counter instead
            Frame::StreamResync { .. } => {} // shared memory never loses ranges
            Frame::Abort {
                kind,
                a,
                b,
                tag,
                attempts,
                detail,
            } => fabric.fail_from_wire(decode_abort(kind, a, b, tag, attempts, detail)),
            Frame::Bye => {
                if let Some(p) = &self.peers[peer] {
                    p.saw_bye.store(true, Ordering::Release);
                }
            }
            Frame::WinAnnounce { win_ctx, len } => {
                let completion = {
                    let mut slots = self.win_slots.lock();
                    let slot = slots
                        .entry(win_ctx)
                        .or_insert_with(|| (Completion::new(), None));
                    slot.1 = Some(len as usize);
                    Arc::clone(&slot.0)
                };
                completion.set();
            }
            Frame::Put {
                win_ctx,
                offset,
                payload,
            } => fabric.apply_remote_put(peer, win_ctx, offset as usize, &payload),
            Frame::GetReq {
                win_ctx,
                offset,
                len,
                token,
            } => match fabric.read_win(win_ctx, offset as usize, len as usize) {
                Some(data) => {
                    self.push_frame(
                        fabric,
                        peer,
                        &Frame::GetResp {
                            token,
                            payload: data,
                        },
                        None,
                        false,
                    );
                }
                None => fabric.fail(PcommError::misuse(
                    peer,
                    format!("get of {len} B at offset {offset} misses window ctx {win_ctx}"),
                )),
            },
            Frame::GetResp { token, payload } => {
                let waiter = {
                    let waiters = self.get_waiters.lock();
                    waiters
                        .get(&token)
                        .map(|(c, s)| (Arc::clone(c), Arc::clone(s)))
                };
                if let Some((completion, slot)) = waiter {
                    *slot.lock() = Some(payload);
                    completion.set();
                }
            }
            Frame::Hello { .. } => {} // mesh rendezvous only; stray copies ignored
        }
    }
}

// ---------------------------------------------------------------------
// Rendezvous: RTS/CTS handshake, then K_RDV chunks through the slab.
// ---------------------------------------------------------------------

impl IpcTransport {
    /// Sender: the CTS arrived — stream the pinned source through the
    /// FIFO slab in `rdv_chunk` pieces and complete the send. The ring
    /// is SPSC and ordered, so chunks land in order and the receiver
    /// can count bytes instead of tracking ranges.
    fn handle_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64) {
        let Some(pending) = self.pending_rdv.lock().remove(&rdv_id) else {
            return; // duplicate or post-abort straggler
        };
        if fabric.aborted() {
            // The sender is unwinding via the abort; its buffer may be
            // on its way out — do not touch it, do not set done.
            return;
        }
        let PendingRdvIpc { pinned, dst } = pending;
        debug_assert_eq!(dst, peer, "CTS must come from the RTS target");
        if pinned.len == 0 {
            // Zero-length rendezvous: no bytes to chunk; a framed
            // RdvData completes the posted receive envelope.
            if self.push_frame(
                fabric,
                dst,
                &Frame::RdvData {
                    rdv_id,
                    payload: Vec::new(),
                },
                None,
                false,
            ) {
                pinned.done.set();
            }
            return;
        }
        let mut off = 0usize;
        while off < pinned.len {
            let n = self.rdv_chunk.min(pinned.len - off);
            // SAFETY: invariant (1) — the pinned source stays alive and
            // unmodified until `done` fires below; `off + n <= len`.
            let chunk = unsafe { std::slice::from_raw_parts(pinned.ptr.add(off), n) };
            let desc = SlotDesc {
                kind: K_RDV,
                parts: u16::from(off + n == pinned.len),
                a: rdv_id,
                b: off as u64,
                c: 0,
            };
            if !self.push_record(
                fabric,
                dst,
                frame::op::RDV_DATA,
                desc,
                Body::Slab(chunk),
                None,
                false,
            ) {
                return; // aborted mid-stream: unwind via the abort flag
            }
            off += n;
        }
        pinned.done.set();
    }

    /// Receiver: one in-order `K_RDV` chunk — copy it straight into the
    /// posted destination and, on the final chunk, publish the envelope.
    fn handle_rdv_chunk(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        is_final: bool,
        payload: &[u8],
    ) {
        let mut rdv_in = self.rdv_in.lock();
        let Some(entry) = rdv_in.get_mut(&(src, rdv_id)) else {
            return; // post-abort straggler
        };
        if fabric.aborted() {
            rdv_in.remove(&(src, rdv_id));
            return;
        }
        let end = offset + payload.len();
        if end > entry.posted.dest_cap {
            rdv_in.remove(&(src, rdv_id));
            drop(rdv_in);
            fabric.fail(PcommError::misuse(
                src,
                format!(
                    "ipc rendezvous chunk {offset}+{} overflows a {}-byte destination",
                    payload.len(),
                    end - payload.len().min(end)
                ),
            ));
            return;
        }
        // SAFETY: invariant (2) — the posted destination is exclusive
        // and stays alive until its completion fires; the bound was
        // checked above, and the SPSC ring serialises chunk writers.
        unsafe {
            std::ptr::copy_nonoverlapping(
                payload.as_ptr(),
                entry.posted.dest_ptr.add(offset),
                payload.len(),
            );
        }
        entry.received += payload.len();
        if is_final {
            let total = entry.received;
            // PANIC: the entry was fetched from this map three lines up
            // under the same guard.
            let entry = rdv_in.remove(&(src, rdv_id)).expect("entry held above");
            drop(rdv_in);
            fabric.complete_remote_rdv_in_place(
                entry.posted,
                src,
                entry.tag,
                entry.shard,
                total,
                entry.rts_ns,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Partitioned streams: arena zero-copy commits, FIFO fallback.
// ---------------------------------------------------------------------

impl IpcTransport {
    /// Receiver: a sender announced a stream. Pair it with a posted
    /// destination if one is waiting, else park the announcement.
    fn handle_part_rts(
        &self,
        fabric: &Fabric,
        src: usize,
        ctx: u64,
        total_len: usize,
        rdv_id: u64,
    ) {
        {
            let (p16, stream, total) = (src as u16, rdv_id as u32, total_len as u64);
            fabric
                .trace()
                .emit_verify(self.rank as u16, || EventKind::VerifyStreamRts {
                    peer: p16,
                    tx: false,
                    stream,
                    total_len: total,
                });
        }
        let recv = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            match pair.waiting.pop_front() {
                Some(recv) => Some(recv),
                None => {
                    pair.pending_rts.push_back((rdv_id, total_len));
                    None
                }
            }
        };
        if let Some(recv) = recv {
            self.activate_stream(fabric, src, rdv_id, total_len, recv);
        }
    }

    /// Receiver: a posted destination met its announcement — register
    /// the active stream and answer with a `K_PART_CTS` carrying the
    /// arena grant (zero-copy) or `u64::MAX` (FIFO fallback: the
    /// destination is ordinary heap memory the sender cannot reach).
    fn activate_stream(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        total_len: usize,
        recv: PartStreamRecv,
    ) {
        if recv.total_len != total_len {
            fabric.fail(PcommError::misuse(
                src,
                format!(
                    "partitioned stream length mismatch: sender announced {total_len} B, \
                     receiver pinned {} B",
                    recv.total_len
                ),
            ));
            return;
        }
        let trace = fabric.trace();
        if trace.is_verify() {
            // Same join events as the socket transport: the receiver is
            // the only side that knows both the wire stream id and the
            // verify-layer (req, msg) identities.
            let stream32 = rdv_id as u32;
            for msg in recv.msgs.iter() {
                let Some((req, m16)) = msg.verify_msg else {
                    continue;
                };
                let (off, len32) = (msg.offset as u64, msg.len as u32);
                trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamMsg {
                    stream: stream32,
                    req,
                    msg: m16,
                    tx: false,
                    offset: off,
                    len: len32,
                });
            }
            let p16 = src as u16;
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamCts {
                peer: p16,
                tx: true,
                stream: stream32,
                epoch: 0,
            });
        }
        // Arena grant: when the pinned destination lies inside the
        // inbound channel's partition arena (it was handed out by
        // `alloc_part_dest`), tell the sender its base offset so every
        // `pready` commits bytes straight into it.
        let grant = self.peers[src].as_ref().and_then(|peer| {
            let arena_bytes = peer.inb_ch.arena_bytes();
            if arena_bytes == 0 {
                return None;
            }
            // SAFETY: offset 0 of a non-empty arena is in bounds; the
            // pointer is only used for address arithmetic.
            let a0 = unsafe { peer.inb_ch.arena_ptr(0) } as usize;
            let base = recv.base as usize;
            (base >= a0 && base + total_len <= a0 + arena_bytes as usize)
                .then(|| (base - a0) as u64)
        });
        let stream = Arc::new(StreamRecv {
            base: recv.base,
            total_len,
            remaining_total: std::sync::atomic::AtomicUsize::new(total_len),
            msgs: recv.msgs,
            committed: Mutex::new(Vec::new()),
        });
        self.streams_in.lock().insert((src, rdv_id), stream);
        let desc = SlotDesc {
            kind: K_PART_CTS,
            parts: 0,
            a: rdv_id,
            b: grant.unwrap_or(u64::MAX),
            c: 0,
        };
        self.push_record(
            fabric,
            src,
            frame::op::PART_CTS,
            desc,
            Body::Inline(&[]),
            None,
            false,
        );
    }

    /// Sender: the receiver pinned its destination — release every
    /// queued range under the arrived grant.
    fn handle_part_cts(&self, fabric: &Fabric, peer: usize, rdv_id: u64, grant: Option<u64>) {
        if fabric.aborted() {
            return;
        }
        {
            let (p16, stream) = (peer as u16, rdv_id as u32);
            fabric
                .trace()
                .emit_verify(self.rank as u16, || EventKind::VerifyStreamCts {
                    peer: p16,
                    tx: false,
                    stream,
                    epoch: 0,
                });
        }
        let (dst, spans, queued) = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&rdv_id) else {
                return; // duplicate or post-abort straggler
            };
            stream.cts = Some(grant);
            let queued = std::mem::take(&mut stream.queued);
            let dst = stream.dst;
            let spans = Arc::clone(&stream.spans);
            if stream.pushed >= stream.total_len {
                out.remove(&rdv_id);
            }
            (dst, spans, queued)
        };
        debug_assert_eq!(dst, peer, "PartCts must come from the stream's receiver");
        for q in queued {
            self.ship_range(
                fabric, dst, rdv_id, grant, &spans, q.offset, q.ptr, q.len, q.parts,
            );
        }
    }

    /// Sender: put one ready range in the receiver's hands. With a
    /// grant: copy once into the shared arena destination and publish a
    /// payload-less `K_PART` — the receiver commits in place, no second
    /// copy, no reader-thread hop. Without: stage `K_PARTF` chunks
    /// through the FIFO slab.
    #[allow(clippy::too_many_arguments)] // one per range field
    fn ship_range(
        &self,
        fabric: &Fabric,
        dst: usize,
        rdv_id: u64,
        grant: Option<u64>,
        spans: &Arc<Vec<SendSpan>>,
        offset: u64,
        ptr: *const u8,
        len: usize,
        parts: u16,
    ) {
        let trace = fabric.trace();
        let stream32 = rdv_id as u32;
        match grant {
            Some(g) => {
                let Some(peer) = &self.peers[dst] else {
                    return;
                };
                // SAFETY: the receiver granted `g .. g + total_len` of
                // the outbound channel's arena to this stream and will
                // not read `offset..offset+len` of it until the K_PART
                // below publishes; the source side is invariant (1).
                unsafe {
                    std::ptr::copy_nonoverlapping(ptr, peer.out_ch.arena_ptr(g + offset), len);
                }
                let (p16, off64, len32) = (dst as u16, offset, len as u32);
                trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamData {
                    peer: p16,
                    lane: 0,
                    tx: true,
                    stream: stream32,
                    offset: off64,
                    len: len32,
                });
                let desc = SlotDesc {
                    kind: K_PART,
                    parts,
                    a: rdv_id,
                    b: offset,
                    c: len as u64,
                };
                if self.push_record(
                    fabric,
                    dst,
                    frame::op::PART_DATA,
                    desc,
                    Body::Inline(&[]),
                    None,
                    false,
                ) {
                    complete_spans(spans, offset as usize, len);
                }
            }
            None => {
                let mut done = 0usize;
                while done < len {
                    let n = self.rdv_chunk.min(len - done);
                    // SAFETY: invariant (1) — the source stays pinned
                    // until the covering spans complete below.
                    let chunk = unsafe { std::slice::from_raw_parts(ptr.add(done), n) };
                    let (p16, off64, len32) = (dst as u16, offset + done as u64, n as u32);
                    trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamData {
                        peer: p16,
                        lane: 0,
                        tx: true,
                        stream: stream32,
                        offset: off64,
                        len: len32,
                    });
                    let desc = SlotDesc {
                        kind: K_PARTF,
                        parts: if done + n == len { parts } else { 0 },
                        a: rdv_id,
                        b: offset + done as u64,
                        c: 0,
                    };
                    if !self.push_record(
                        fabric,
                        dst,
                        frame::op::PART_DATA,
                        desc,
                        Body::Slab(chunk),
                        None,
                        false,
                    ) {
                        return; // aborted mid-stream
                    }
                    complete_spans(spans, (offset + done as u64) as usize, n);
                    done += n;
                }
            }
        }
    }

    /// Receiver: a zero-copy `K_PART` commit — the bytes are already in
    /// the pinned destination (the sender wrote the granted arena range
    /// directly); only the bookkeeping remains.
    fn handle_part_commit(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        len: usize,
    ) {
        let Some(stream) = self.stream_range(fabric, src, rdv_id, offset, len) else {
            return;
        };
        self.commit_stream_range(fabric, src, rdv_id, &stream, offset, len);
    }

    /// Receiver: a FIFO-staged `K_PARTF` range — copy it into the
    /// pinned destination, then commit.
    fn handle_part_fifo(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        payload: &[u8],
    ) {
        let Some(stream) = self.stream_range(fabric, src, rdv_id, offset, payload.len()) else {
            return;
        };
        // SAFETY: the range was validated against `total_len` above,
        // the destination stays pinned until the stream's completions
        // fire (invariant (1)), and every byte belongs to exactly one
        // record on this SPSC ring, so writes never alias.
        unsafe {
            std::ptr::copy_nonoverlapping(payload.as_ptr(), stream.base.add(offset), payload.len());
        }
        self.commit_stream_range(fabric, src, rdv_id, &stream, offset, payload.len());
    }

    /// Receiver: look up the active stream for `(src, rdv_id)` and
    /// validate that `offset..offset+len` fits its destination.
    fn stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        offset: usize,
        len: usize,
    ) -> Option<Arc<StreamRecv>> {
        if fabric.aborted() {
            return None;
        }
        let stream = self.streams_in.lock().get(&(src, rdv_id)).cloned()?;
        match offset.checked_add(len) {
            Some(end) if end <= stream.total_len => Some(stream),
            _ => {
                fabric.fail(PcommError::misuse(
                    src,
                    format!(
                        "partitioned stream range {offset}+{len} overflows a \
                         {}-byte destination",
                        stream.total_len
                    ),
                ));
                None
            }
        }
    }

    /// Receiver: the bytes of `offset..offset+len` are in the pinned
    /// destination — flip every message completion the range finishes
    /// and retire the stream once the whole buffer has landed. Same
    /// dedup ledger as the socket transport (the wire can't replay on
    /// ipc, but the audit FSM proves that rather than assuming it).
    fn commit_stream_range(
        &self,
        fabric: &Fabric,
        src: usize,
        rdv_id: u64,
        stream: &StreamRecv,
        offset: usize,
        len: usize,
    ) {
        let end = offset + len;
        let trace = fabric.trace();
        let stream32 = rdv_id as u32;
        {
            let (p16, off64, len32) = (src as u16, offset as u64, len as u32);
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamData {
                peer: p16,
                lane: 0,
                tx: false,
                stream: stream32,
                offset: off64,
                len: len32,
            });
        }
        let fresh = {
            let mut committed = stream.committed.lock();
            claim_range(&mut committed, offset, end)
        };
        let fresh_bytes: usize = fresh.iter().map(|&(lo, hi)| hi - lo).sum();
        if fresh_bytes == 0 {
            return; // pure duplicate: every byte landed before
        }
        for &(f_lo, f_hi) in &fresh {
            let (p16, lo64, flen) = (src as u16, f_lo as u64, (f_hi - f_lo) as u32);
            trace.emit_verify(self.rank as u16, || EventKind::VerifyStreamCommit {
                peer: p16,
                lane: 0,
                stream: stream32,
                lo: lo64,
                len: flen,
            });
        }
        let mut msgs_done = 0u16;
        for &(f_lo, f_hi) in &fresh {
            for msg in &stream.msgs {
                let lo = msg.offset.max(f_lo);
                let hi = (msg.offset + msg.len).min(f_hi);
                if lo >= hi {
                    continue;
                }
                let overlap = hi - lo;
                // AcqRel: the final decrement acquires every earlier
                // committer's bytes, so the completion flip below
                // publishes a fully written message range. The ledger
                // claim above guarantees each byte is subtracted exactly
                // once, so this never underflows.
                let before = msg.remaining.fetch_sub(overlap, Ordering::AcqRel);
                if before == overlap {
                    fabric.complete_stream_msg(
                        src,
                        msg.tag,
                        msg.len,
                        &msg.info,
                        &msg.completion,
                        msg.verify_msg,
                    );
                    msgs_done += 1;
                }
            }
        }
        let (off64, bytes64) = (offset as u64, fresh_bytes as u64);
        trace.emit(self.rank as u16, || EventKind::StreamCommit {
            lane: 0,
            msgs: msgs_done,
            offset: off64,
            bytes: bytes64,
        });
        // AcqRel: pairs with the other committers' decrements so the
        // map removal below observes a fully committed stream.
        if stream
            .remaining_total
            .fetch_sub(fresh_bytes, Ordering::AcqRel)
            == fresh_bytes
        {
            self.streams_in.lock().remove(&(src, rdv_id));
        }
    }
}

// ---------------------------------------------------------------------
// Barrier, progress loop, heartbeat monitor, teardown.
// ---------------------------------------------------------------------

impl IpcTransport {
    /// Get-or-create the release completion for barrier generation
    /// `gen` (a drain pass and the waiting rank race to create it).
    fn release_completion(&self, gen: u64) -> Arc<Completion> {
        Arc::clone(self.releases.lock().entry(gen).or_default())
    }

    /// Rank 0: record `from`'s arrival for `gen`; on the last distinct
    /// one, broadcast the release and complete the local waiter.
    fn note_arrival(&self, fabric: &Fabric, gen: u64, from: usize) {
        debug_assert_eq!(self.rank, 0, "only rank 0 coordinates barriers");
        let all_in = {
            let mut arrivals = self.arrivals.lock();
            let ranks = arrivals.entry(gen).or_default();
            ranks.insert(from);
            if ranks.len() == self.n_ranks {
                arrivals.remove(&gen);
                true
            } else {
                false
            }
        };
        if all_in {
            for peer in 1..self.n_ranks {
                self.push_frame(fabric, peer, &Frame::BarrierRelease { gen }, None, false);
            }
            self.release_completion(gen).set();
        }
    }

    /// The "pcomm-ipc" thread body: drain inbound channels, publish the
    /// heartbeat, watch peers' heartbeats, and park on this rank's
    /// doorbell while idle. App threads waiting in `wait_slice` do the
    /// latency-critical progress inline; this thread is the backstop
    /// for completions nobody is spinning on.
    fn progress_loop(self: &Arc<IpcTransport>, fabric: &Arc<Fabric>) {
        let tick = Duration::from_millis((self.hb_ms / 4).max(1));
        let tick_ns = tick.as_nanos() as u64;
        let mut last_tick = Instant::now();
        loop {
            if self.stop.load(Ordering::Acquire) {
                return;
            }
            if last_tick.elapsed() >= tick {
                self.heartbeat_tick(fabric);
                last_tick = Instant::now();
            }
            if self.progress_pass(fabric) {
                continue;
            }
            let bell = self.segment.doorbell(self.rank);
            let seen = bell.seq();
            // Re-check after the snapshot: a producer that pushed and
            // rang between the drain above and here bumped the bell, so
            // the wait below would return immediately anyway — this
            // just skips the syscall.
            if self.progress_pass(fabric) {
                continue;
            }
            let woken = bell.wait(seen, tick_ns).unwrap_or(false);
            fabric
                .trace()
                .emit(self.rank as u16, || EventKind::IpcDoorbell {
                    seq: seen,
                    woken,
                });
        }
    }

    /// Publish this rank's liveness and check every attached peer's:
    /// a heartbeat word that has not moved for 7/4 heartbeat periods
    /// while the peer never said `Bye` means its process died mid-run.
    fn heartbeat_tick(&self, fabric: &Fabric) {
        // ORDERING: liveness counter only; peers poll for movement, no
        // memory is published through it.
        self.segment
            .heartbeat(self.rank)
            .fetch_add(1, Ordering::Relaxed);
        let stale_after = Duration::from_millis(self.hb_ms * 7 / 4);
        for (r, peer) in self.peers.iter().enumerate() {
            let Some(peer) = peer else { continue };
            if peer.saw_bye.load(Ordering::Acquire) {
                continue;
            }
            // ORDERING: attach flag is a rendezvous latch; Acquire pairs
            // with the attaching store so a set flag implies the peer's
            // mapping (and first heartbeat) exists.
            if self.segment.attached(r).load(Ordering::Acquire) == 0 {
                continue;
            }
            // ORDERING: liveness counter (see above).
            let val = self.segment.heartbeat(r).load(Ordering::Relaxed);
            let mut seen = peer.hb_seen.lock();
            match *seen {
                Some((prev, since)) if prev == val => {
                    if since.elapsed() >= stale_after
                        && !fabric.aborted()
                        && !self.stop.load(Ordering::Acquire)
                    {
                        fabric.fail(PcommError::PeerPanicked {
                            rank: r,
                            message: format!(
                                "ipc heartbeat from rank {r} stale for {} ms (bound {} ms): \
                                 the peer process likely died; tune PCOMM_NET_HB_MS to adjust \
                                 detection latency",
                                since.elapsed().as_millis(),
                                stale_after.as_millis()
                            ),
                        });
                    }
                }
                _ => *seen = Some((val, Instant::now())),
            }
        }
    }

    /// Shut the fabric down after the rank's closure returned. Clean
    /// runs pass a closing barrier first (nobody quits while a peer
    /// might still need them), then exchange `Bye` records and keep
    /// draining until every peer's `Bye` arrived — both sides drain, so
    /// the `Bye`s always flow. Aborted runs broadcast the abort and
    /// force-push `Bye` under a hard budget. Never unwinds.
    pub(crate) fn finalize(&self, fabric: &Fabric) {
        if !fabric.aborted() {
            // ORDERING: generation allocator — uniqueness only; the
            // value travels to peers inside frames, not via memory.
            let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
            let completion = self.release_completion(gen);
            if self.rank == 0 {
                self.note_arrival(fabric, gen, self.rank);
            } else {
                self.push_frame(fabric, 0, &Frame::BarrierArrive { gen }, None, false);
            }
            let deadline = Instant::now() + FINALIZE_TIMEOUT;
            loop {
                if completion.is_set() || fabric.aborted() {
                    break;
                }
                if Instant::now() >= deadline {
                    fabric.fail(PcommError::Misuse {
                        rank: Some(self.rank),
                        detail: format!(
                            "ipc finalize barrier timed out after {}s: a peer never \
                             reached teardown",
                            FINALIZE_TIMEOUT.as_secs()
                        ),
                    });
                    break;
                }
                if !self.progress_pass(fabric) {
                    completion.wait_timeout(TEARDOWN_SLICE);
                }
            }
            self.releases.lock().remove(&gen);
        }
        if fabric.aborted() {
            if let Some(err) = fabric.failure_snapshot() {
                self.broadcast_abort(&err);
            }
        }
        let bye_deadline = Instant::now() + TEARDOWN_PUSH_BUDGET;
        for peer in 0..self.n_ranks {
            if peer != self.rank {
                self.push_frame(fabric, peer, &Frame::Bye, Some(bye_deadline), true);
            }
        }
        // Clean path: drain until every peer said goodbye, so no peer
        // blocks pushing its own Bye into a full ring we abandoned.
        if !fabric.aborted() {
            let deadline = Instant::now() + FINALIZE_TIMEOUT;
            loop {
                let all_bye = self
                    .peers
                    .iter()
                    .flatten()
                    .all(|p| p.saw_bye.load(Ordering::Acquire));
                if all_bye || fabric.aborted() || Instant::now() >= deadline {
                    break;
                }
                if !self.progress_pass(fabric) {
                    std::thread::sleep(TEARDOWN_SLICE);
                }
            }
        }
        self.stop.store(true, Ordering::Release);
        let _ = self.segment.doorbell(self.rank).ring();
        if let Some(handle) = self.progress.lock().take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// The Transport implementation.
// ---------------------------------------------------------------------

impl Transport for IpcTransport {
    fn local_rank(&self) -> usize {
        self.rank
    }

    fn is_multiproc(&self) -> bool {
        true
    }

    fn ship_eager(&self, dst: usize, shard: usize, ctx: u64, tag: i64, data: &[u8]) {
        self.send_frame(
            dst,
            Frame::Eager {
                shard: shard as u16,
                ctx,
                tag,
                payload: data.to_vec(),
            },
        );
    }

    fn ship_rts(&self, dst: usize, shard: usize, ctx: u64, tag: i64, pinned: PinnedSend) {
        // ORDERING: id allocator — only uniqueness matters; the id
        // reaches the peer inside the Rts frame, not via memory.
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        let len = pinned.len as u64;
        self.pending_rdv
            .lock()
            .insert(rdv_id, PendingRdvIpc { pinned, dst });
        self.send_frame(
            dst,
            Frame::Rts {
                shard: shard as u16,
                ctx,
                tag,
                len,
                rdv_id,
            },
        );
    }

    fn accept_remote_rdv(
        &self,
        src: usize,
        rdv_id: u64,
        posted: PostedRecv,
        shard: usize,
        tag: i64,
        rts_ns: Option<u64>,
    ) {
        self.rdv_in.lock().insert(
            (src, rdv_id),
            RdvIn {
                posted,
                shard,
                tag,
                rts_ns,
                received: 0,
            },
        );
        self.send_frame(src, Frame::Cts { rdv_id });
    }

    fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<SendSpan>,
    ) -> u64 {
        // ORDERING: id allocator (see `ship_rts`) — uniqueness only.
        let rdv_id = self.next_rdv_id.fetch_add(1, Ordering::Relaxed);
        // Register before the RTS leaves so a fast K_PART_CTS finds us.
        self.streams_out.lock().insert(
            rdv_id,
            IpcStreamSend {
                dst,
                total_len,
                pushed: 0,
                cts: None,
                queued: Vec::new(),
                spans: Arc::new(spans),
            },
        );
        self.send_frame(
            dst,
            Frame::PartRts {
                ctx,
                total_len: total_len as u64,
                rdv_id,
            },
        );
        rdv_id
    }

    fn part_stream_push(
        &self,
        fabric: &Fabric,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    ) {
        let shipped = {
            let mut out = self.streams_out.lock();
            let Some(stream) = out.get_mut(&stream_id) else {
                return; // post-abort straggler
            };
            stream.pushed += data.len();
            match stream.cts {
                None => {
                    // The CTS handler drains `queued` and retires the
                    // entry when it arrives.
                    stream.queued.push(QueuedRange {
                        offset,
                        ptr: data.as_ptr(),
                        len: data.len(),
                        parts,
                    });
                    return;
                }
                Some(grant) => {
                    let dst = stream.dst;
                    let spans = Arc::clone(&stream.spans);
                    if stream.pushed >= stream.total_len {
                        // Last byte pushed post-CTS: the entry is done.
                        out.remove(&stream_id);
                    }
                    (dst, grant, spans)
                }
            }
        };
        let (dst, grant, spans) = shipped;
        self.ship_range(
            fabric,
            dst,
            stream_id,
            grant,
            &spans,
            offset,
            data.as_ptr(),
            data.len(),
            parts,
        );
    }

    fn part_stream_post(&self, fabric: &Fabric, src: usize, ctx: u64, recv: PartStreamRecv) {
        let activate = {
            let mut reg = self.part_registry.lock();
            let pair = reg.entry((src, ctx)).or_default();
            if let Some((rdv_id, total_len)) = pair.pending_rts.pop_front() {
                Some((rdv_id, total_len, recv))
            } else {
                pair.waiting.push_back(recv);
                None
            }
        };
        if let Some((rdv_id, total_len, recv)) = activate {
            self.activate_stream(fabric, src, rdv_id, total_len, recv);
        }
    }

    fn barrier(&self, fabric: &Fabric, rank: usize) {
        // ORDERING: generation allocator (see `finalize`) — uniqueness
        // only; barrier ordering comes from the records themselves.
        let gen = self.barrier_gen.fetch_add(1, Ordering::Relaxed);
        let completion = self.release_completion(gen);
        if self.rank == 0 {
            self.note_arrival(fabric, gen, self.rank);
        } else {
            self.push_frame(fabric, 0, &Frame::BarrierArrive { gen }, None, false);
        }
        fabric.wait_on(&completion, rank, || {
            (format!("barrier (generation {gen})"), None, None)
        });
        self.releases.lock().remove(&gen);
    }

    fn announce_win(&self, origin: usize, win_ctx: u64, len: usize) {
        self.send_frame(
            origin,
            Frame::WinAnnounce {
                win_ctx,
                len: len as u64,
            },
        );
    }

    fn wait_win_announce(&self, fabric: &Fabric, rank: usize, win_ctx: u64) -> usize {
        let completion = {
            let mut slots = self.win_slots.lock();
            Arc::clone(
                &slots
                    .entry(win_ctx)
                    .or_insert_with(|| (Completion::new(), None))
                    .0,
            )
        };
        fabric.wait_on(&completion, rank, || {
            (format!("attach_win(ctx={win_ctx})"), None, None)
        });
        self.win_slots
            .lock()
            .get(&win_ctx)
            .and_then(|slot| slot.1)
            // PANIC: the completion waited on above is signalled only
            // by the WinAnnounce handler, which stores the length
            // before signalling.
            .expect("announced window carries a length")
    }

    fn put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        self.send_frame(
            target,
            Frame::Put {
                win_ctx,
                offset: offset as u64,
                payload: data.to_vec(),
            },
        );
    }

    fn get(
        &self,
        fabric: &Fabric,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        // ORDERING: token allocator — uniqueness only, the token rides
        // inside the GetReq frame.
        let token = self.next_get_token.fetch_add(1, Ordering::Relaxed);
        let completion = Completion::new();
        let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        self.get_waiters
            .lock()
            .insert(token, (Arc::clone(&completion), Arc::clone(&slot)));
        self.push_frame(
            fabric,
            target,
            &Frame::GetReq {
                win_ctx,
                offset: offset as u64,
                len: len as u64,
                token,
            },
            None,
            false,
        );
        fabric.wait_on(&completion, rank, || {
            (
                format!("rma get({len} B from rank {target})"),
                None,
                Some(target),
            )
        });
        self.get_waiters.lock().remove(&token);
        let data = slot.lock().take();
        // PANIC: the completion waited on above is signalled only by
        // the GetResp handler, which fills the slot before signalling.
        data.expect("completed get carries its payload")
    }

    fn peer_states(&self) -> Vec<PeerSocketState> {
        let pending = self.pending_rdv.lock();
        let streams = self.streams_out.lock();
        self.peers
            .iter()
            .enumerate()
            .filter_map(|(rank, peer)| {
                let peer = peer.as_ref()?;
                let quiet_ms = peer
                    .hb_seen
                    .lock()
                    .map(|(_, since)| since.elapsed().as_millis() as u64)
                    .unwrap_or(0);
                Some(PeerSocketState {
                    peer: rank,
                    connected: self.segment.attached(rank).load(Ordering::Acquire) != 0
                        && !peer.saw_bye.load(Ordering::Acquire),
                    // ORDERING: advisory stats for the racy snapshot.
                    frames_sent: peer.frames_sent.load(Ordering::Relaxed),
                    // ORDERING: advisory stats for the racy snapshot.
                    frames_received: peer.frames_received.load(Ordering::Relaxed),
                    pending_rdv: pending.values().filter(|p| p.dst == rank).count()
                        + streams.values().filter(|s| s.dst == rank).count(),
                    queued: 0,     // no writer queues: producers push inline
                    lanes_down: 0, // a mapped segment has no lanes to lose
                    quiet_ms,
                })
            })
            .collect()
    }

    fn broadcast_abort(&self, err: &PcommError) {
        if self.abort_sent.swap(true, Ordering::SeqCst) {
            return;
        }
        let Some(fabric) = self.fabric() else {
            return;
        };
        let frame = encode_abort(err);
        let deadline = Instant::now() + TEARDOWN_PUSH_BUDGET;
        for peer in 0..self.n_ranks {
            if peer != self.rank {
                self.push_frame(&fabric, peer, &frame, Some(deadline), true);
            }
        }
    }

    fn wait_slice(&self, fabric: &Fabric, completion: &Completion) -> bool {
        // Spin with inline progress first: the same-host round trip is
        // microseconds, and handing it to the progress thread would add
        // two context switches. Past the window, park — the doorbell
        // wakes the progress thread, which completes us.
        let spin_until = Instant::now() + SPIN_WINDOW;
        loop {
            if completion.is_set() {
                return true;
            }
            if !self.progress_pass(fabric) {
                if Instant::now() >= spin_until {
                    break;
                }
                std::thread::yield_now();
            }
        }
        completion.wait_timeout(WAIT_SLICE)
    }

    fn alloc_part_dest(&self, src: usize, len: usize) -> Option<(u64, *mut u8)> {
        if len == 0 {
            return None;
        }
        let peer = self.peers[src].as_ref()?;
        if (len as u64) > peer.inb_ch.arena_bytes() {
            return None;
        }
        let off = peer.arena.lock().alloc(len as u64)?;
        // SAFETY: `alloc` returned a range inside `0..arena_bytes`; the
        // receiver owns it until `release_part_dest`.
        Some((off, unsafe { peer.inb_ch.arena_ptr(off) }))
    }

    fn release_part_dest(&self, src: usize, token: u64, len: usize) {
        if let Some(peer) = self.peers[src].as_ref() {
            peer.arena.lock().release(token, len as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Bootstrap: segment fd exchange over the already-established mesh.
// ---------------------------------------------------------------------

/// Create (rank 0) or attach (everyone else) the shared segment,
/// passing the memfd over the mesh's lane-0 Unix sockets with
/// `SCM_RIGHTS`. Rank 0 waits for a one-byte ACK from every peer
/// before returning, so no rank starts pushing before every mapping
/// exists (the heartbeat monitor keys off the attach flags the ACKs
/// order). Consumes nothing from the mesh — the sockets stay open (and
/// are dropped by the caller once the transport is built).
pub(crate) fn bootstrap(mesh: &mut Mesh, params: IpcParams) -> Result<Segment, PcommError> {
    let misuse = |rank: usize, what: &str, e: std::io::Error| PcommError::Misuse {
        rank: Some(rank),
        detail: format!("ipc bootstrap: {what}: {e}"),
    };
    let (rank, n_ranks) = (mesh.rank, mesh.n_ranks);
    let lane0 = |mesh: &mut Mesh, r: usize| -> Result<usize, PcommError> {
        match mesh.peers[r].as_ref().and_then(|eps| eps.first()) {
            Some(ep) => ep.raw_fd().ok_or_else(|| PcommError::Misuse {
                rank: Some(rank),
                detail: "ipc bootstrap: fd passing needs a Unix-socket mesh \
                         (PCOMM_NET_BACKEND=uds)"
                    .into(),
            }),
            None => Err(PcommError::Misuse {
                rank: Some(rank),
                detail: format!("ipc bootstrap: no mesh endpoint toward rank {r}"),
            }),
        }
        .map(|fd| fd as usize)
    };
    // Bounded reads: a peer that dies mid-bootstrap becomes a typed
    // error, not a hang.
    for r in 0..n_ranks {
        if let Some(eps) = mesh.peers[r].as_ref() {
            if let Some(ep) = eps.first() {
                let _ = ep.set_read_timeout(Some(pcomm_net::mesh::ESTABLISH_TIMEOUT));
            }
        }
    }
    let segment = if rank == 0 {
        let (segment, fd) =
            Segment::create(params).map_err(|e| misuse(rank, "creating the segment", e))?;
        // ORDERING: attach latch — Release pairs with the monitors'
        // Acquire loads so a set flag implies a live mapping.
        segment.attached(0).store(1, Ordering::Release);
        for r in 1..n_ranks {
            let sock = lane0(mesh, r)? as i32;
            ipc::send_segment_fd(sock, fd, 0)
                .map_err(|e| misuse(rank, "passing the segment fd", e))?;
        }
        // Collect one ACK byte per peer: after this, every rank is
        // mapped and no push can outrun an attach.
        for r in 1..n_ranks {
            let mut byte = [0u8; 1];
            let ep = mesh.peers[r]
                .as_mut()
                .and_then(|eps| eps.first_mut())
                // PANIC: `lane0` above already proved the endpoint exists.
                .expect("endpoint checked above");
            ep.read_exact(&mut byte)
                .map_err(|e| misuse(rank, "waiting for a peer's attach ACK", e))?;
        }
        let _ = sys::close(fd);
        segment
    } else {
        let sock = lane0(mesh, 0)? as i32;
        let (fd, from) =
            ipc::recv_segment_fd(sock).map_err(|e| misuse(rank, "receiving the segment fd", e))?;
        if from != 0 {
            let _ = sys::close(fd);
            return Err(PcommError::Misuse {
                rank: Some(rank),
                detail: format!("ipc bootstrap: segment fd came from rank {from}, expected 0"),
            });
        }
        let segment =
            Segment::attach(fd, params).map_err(|e| misuse(rank, "attaching the segment", e))?;
        let _ = sys::close(fd);
        // ORDERING: attach latch (see above).
        segment.attached(rank).store(1, Ordering::Release);
        let ep = mesh.peers[0]
            .as_mut()
            .and_then(|eps| eps.first_mut())
            // PANIC: `lane0` above already proved the endpoint exists.
            .expect("endpoint checked above");
        ep.write_all(&[1u8])
            .map_err(|e| misuse(rank, "sending the attach ACK", e))?;
        segment
    };
    for r in 0..n_ranks {
        if let Some(eps) = mesh.peers[r].as_ref() {
            if let Some(ep) = eps.first() {
                let _ = ep.set_read_timeout(None);
            }
        }
    }
    Ok(segment)
}
