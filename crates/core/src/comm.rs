//! Communicators for the real runtime.

use std::sync::Arc;

use crate::fabric::{CtxKind, Fabric};

/// A communicator handle as seen from one rank.
///
/// Carries an isolated matching context and a match-shard assignment (the
/// VCI analogue). Clone freely — clones are handles to the same
/// communicator and may be used from multiple threads of the owning rank
/// (that concurrent use contending on one shard is exactly the effect the
/// paper's Fig. 5 measures).
#[derive(Clone)]
pub struct Comm {
    fabric: Arc<Fabric>,
    rank: usize,
    ctx: u64,
    shard: usize,
}

impl Comm {
    pub(crate) fn world(fabric: Arc<Fabric>, rank: usize) -> Comm {
        let shard = fabric.shard_of_ctx(0);
        Comm {
            fabric,
            rank,
            ctx: 0,
            shard,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.fabric.n_ranks()
    }

    /// The matching context id.
    pub fn ctx(&self) -> u64 {
        self.ctx
    }

    /// The match shard (VCI) this communicator's traffic uses.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of match shards configured per rank.
    pub fn n_shards(&self) -> usize {
        self.fabric.n_shards()
    }

    /// The eager/rendezvous threshold of the fabric.
    pub fn eager_max(&self) -> usize {
        self.fabric.eager_max()
    }

    pub(crate) fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Duplicate the communicator (`MPI_Comm_dup`).
    ///
    /// Collective: all ranks must dup in the same order. The child context
    /// maps to the next match shard round-robin, isolating its traffic —
    /// the `Pt2Pt many` contention workaround (paper §2.3.2).
    pub fn dup(&self) -> Comm {
        let ctx = self
            .fabric
            .alloc_child_ctx(self.rank, self.ctx, CtxKind::Dup);
        let shard = self.fabric.shard_of_ctx(ctx);
        Comm {
            fabric: Arc::clone(&self.fabric),
            rank: self.rank,
            ctx,
            shard,
        }
    }

    /// Rank-level barrier over all ranks (one thread per rank).
    pub fn barrier(&self) {
        self.fabric.rank_barrier(self.rank);
    }

    /// Total messages matched on the fabric so far (diagnostics).
    pub fn matched_messages(&self) -> u64 {
        self.fabric.matched_count()
    }

    /// A handle on the same fabric bound to a different context/shard
    /// (internal contexts for partitioned traffic).
    pub(crate) fn with_ctx(&self, ctx: u64, shard: usize) -> Comm {
        Comm {
            fabric: Arc::clone(&self.fabric),
            rank: self.rank,
            ctx,
            shard,
        }
    }

    /// The reserved partitioned-communication context for a user tag
    /// (paper §3.2.1); deterministic on both sides.
    pub(crate) fn part_ctx(&self, tag: i64) -> u64 {
        assert!(
            (0..1 << 16).contains(&tag),
            "partitioned tag out of reserved space"
        );
        self.ctx * (1 << 18) + ((CtxKind::Part as u64) << 16) + tag as u64 + 1
    }

    /// Derive a window context (collective order must agree).
    pub(crate) fn win_ctx(&self) -> u64 {
        self.fabric
            .alloc_child_ctx(self.rank, self.ctx, CtxKind::Win)
    }
}

#[cfg(test)]
mod tests {

    use crate::Universe;

    #[test]
    fn dup_is_symmetric_across_ranks() {
        let ctxs = Universe::new(2)
            .with_shards(4)
            .run(|comm| {
                let d1 = comm.dup();
                let d2 = comm.dup();
                (d1.ctx(), d2.ctx(), d1.shard(), d2.shard())
            })
            .unwrap();
        assert_eq!(ctxs[0], ctxs[1], "both ranks must derive identical ctxs");
        let (c1, c2, s1, s2) = ctxs[0];
        assert_ne!(c1, c2);
        assert_ne!(s1, s2, "consecutive dups spread over shards");
    }

    #[test]
    fn part_ctx_deterministic() {
        let out = Universe::new(2)
            .run(|comm| (comm.part_ctx(3), comm.part_ctx(4)))
            .unwrap();
        assert_eq!(out[0], out[1]);
        assert_ne!(out[0].0, out[0].1);
    }

    #[test]
    fn world_is_shard_zero() {
        Universe::new(1)
            .with_shards(8)
            .run(|comm| {
                assert_eq!(comm.shard(), 0);
                assert_eq!(comm.n_shards(), 8);
            })
            .unwrap();
    }
}
