//! The shared-memory fabric: tag matching, eager and rendezvous transfer.
//!
//! # Structure
//!
//! Each rank owns `n_shards` *match shards* — independently locked
//! matching queues. A shard is the in-process analogue of an MPICH VCI:
//! all traffic of a communicator goes through one shard, so threads
//! sending on the *same* communicator contend on one lock, while threads
//! with `dup()`ed communicators spread over shards and do not (the
//! mechanism behind the paper's Figs. 5–6).
//!
//! # Transfer paths
//!
//! * **Eager** (`len <= eager_max`): the sender copies the payload into a
//!   heap buffer, then either fulfills a posted receive (second copy into
//!   the destination) or parks the buffer in the unexpected queue. The
//!   send completes locally — the bcopy path.
//! * **Rendezvous** (`len > eager_max`): the sender publishes a raw
//!   pointer to its buffer; whoever completes the match (sender if the
//!   receive was pre-posted, receiver otherwise) copies directly from the
//!   source into the destination, then signals the sender — the zcopy
//!   path. The sender's request completes only then.
//!
//! # Safety
//!
//! The raw pointers crossing threads are governed by two invariants,
//! enforced by the safe wrappers in [`crate::p2p`] / [`crate::part`]:
//!
//! 1. A rendezvous source buffer stays immutable and alive until its
//!    `done` completion is set (senders block or hold the ticket).
//! 2. A posted destination buffer stays exclusively borrowed and alive
//!    until its `completion` is set (receivers block or own the buffer).

use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use pcomm_trace::{EventKind, Trace};

use crate::hotpath;
use crate::sync::{Condvar, Mutex};

use crate::sync::Completion;

/// Recycled-buffer slots per source rank in the eager pool. Eight covers
/// the in-flight window of a rank's sender threads in the bench workloads
/// without hoarding memory.
const POOL_SLOTS: usize = 8;

/// Lock-free pool of eager payload buffers, striped by *source* rank.
///
/// Each stripe is a fixed array of `AtomicPtr` slots holding boxed
/// `Vec<u8>`s. `acquire` swaps a slot to null and takes whole ownership of
/// the pointed-to vector; `release` CASes a cleared vector into the first
/// null slot (or drops it when the stripe is full). Because slots exchange
/// *whole owned values* — never links into a shared list — there is no ABA
/// hazard and no lock. A sender therefore pays one allocation per stripe
/// warm-up instead of one per message.
struct BufPool {
    stripes: Vec<[AtomicPtr<Vec<u8>>; POOL_SLOTS]>,
    /// Buffers whose capacity grew past this are dropped, not pooled.
    max_cap: usize,
}

impl BufPool {
    fn new(n_ranks: usize, max_cap: usize) -> BufPool {
        BufPool {
            stripes: (0..n_ranks)
                .map(|_| std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())))
                .collect(),
            max_cap,
        }
    }

    /// Take a cleared buffer from `rank`'s stripe; `true` means recycled.
    fn acquire(&self, rank: usize) -> (Vec<u8>, bool) {
        for slot in &self.stripes[rank] {
            let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: non-null slot values come only from
                // `Box::into_raw` in `release`; the swap transferred sole
                // ownership to us.
                let v = unsafe { *Box::from_raw(p) };
                return (v, true);
            }
        }
        (Vec::new(), false)
    }

    /// Return `buf` to `rank`'s stripe for reuse.
    fn release(&self, rank: usize, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_cap {
            return;
        }
        buf.clear();
        let p = Box::into_raw(Box::new(buf));
        for slot in &self.stripes[rank] {
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    p,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        // Stripe full: free the buffer instead of blocking.
        // SAFETY: `p` came from `Box::into_raw` above and was never
        // published (every CAS failed).
        unsafe { drop(Box::from_raw(p)) };
    }
}

impl Drop for BufPool {
    fn drop(&mut self) {
        for stripe in &self.stripes {
            for slot in stripe {
                let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
                if !p.is_null() {
                    // SAFETY: sole owner at drop time; pointer came from
                    // `Box::into_raw` in `release`.
                    unsafe { drop(Box::from_raw(p)) };
                }
            }
        }
    }
}

/// Envelope information returned by receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    /// Source rank.
    pub src: usize,
    /// Message tag.
    pub tag: i64,
    /// Payload length in bytes.
    pub len: usize,
}

/// Rendezvous handoff: pointer to the sender's buffer plus the completion
/// the copier must set.
pub(crate) struct RdvHandoff {
    pub(crate) src_ptr: *const u8,
    pub(crate) len: usize,
    pub(crate) done: Arc<Completion>,
    /// Trace timestamp of the RTS (None when tracing is disabled).
    pub(crate) rts_ns: Option<u64>,
}

// SAFETY: the pointer is only dereferenced by the matching thread before
// `done.set()`; invariant (1) above guarantees the buffer outlives that.
unsafe impl Send for RdvHandoff {}

pub(crate) enum Payload {
    Eager(Vec<u8>),
    Rdv(RdvHandoff),
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::Eager(v) => v.len(),
            Payload::Rdv(h) => h.len,
        }
    }
}

/// A receive posted into a shard, waiting for its message.
pub(crate) struct PostedRecv {
    pub(crate) ctx: u64,
    pub(crate) src: Option<usize>,
    pub(crate) tag: Option<i64>,
    pub(crate) dest_ptr: *mut u8,
    pub(crate) dest_cap: usize,
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
    pub(crate) completion: Arc<Completion>,
}

// SAFETY: the destination is only written by the fulfilling thread before
// `completion.set()`; invariant (2) above guarantees exclusive access.
unsafe impl Send for PostedRecv {}

impl PostedRecv {
    fn matches(&self, ctx: u64, src: usize, tag: i64) -> bool {
        self.ctx == ctx
            && self.src.map(|s| s == src).unwrap_or(true)
            && self.tag.map(|t| t == tag).unwrap_or(true)
    }
}

struct UnexpectedMsg {
    ctx: u64,
    src: usize,
    tag: i64,
    payload: Payload,
}

#[derive(Default)]
struct MatchQueues {
    posted: Vec<PostedRecv>,
    unexpected: Vec<UnexpectedMsg>,
}

/// Ticket for an in-flight send; `None` completion means it completed
/// locally (eager).
pub(crate) struct SendTicket {
    done: Option<Arc<Completion>>,
}

impl SendTicket {
    /// Block until the send buffer is reusable.
    pub(crate) fn wait(&self) {
        if let Some(d) = &self.done {
            d.wait();
        }
    }

    /// Non-blocking completion probe.
    #[cfg(test)]
    pub(crate) fn test(&self) -> bool {
        self.done.as_ref().map(|d| d.is_set()).unwrap_or(true)
    }
}

/// Ticket for an in-flight receive.
pub(crate) struct RecvTicket {
    pub(crate) completion: Arc<Completion>,
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
}

impl RecvTicket {
    pub(crate) fn wait(&self) -> MsgInfo {
        self.completion.wait();
        self.info.lock().expect("completed receive carries info")
    }

    #[cfg(test)]
    pub(crate) fn test(&self) -> bool {
        self.completion.is_set()
    }
}

/// The shared-memory interconnect between ranks.
pub(crate) struct Fabric {
    n_ranks: usize,
    n_shards: usize,
    eager_max: usize,
    /// `[rank][shard]` matching queues.
    shards: Vec<Vec<Mutex<MatchQueues>>>,
    /// Deterministic child-context derivation (dup/window/partitioned);
    /// collective creation order must agree across ranks, as in MPI.
    ctx_counters: Mutex<HashMap<(usize, u64, u8), u64>>,
    /// Window registry for collective window creation.
    win_registry: Mutex<HashMap<u64, Arc<crate::rma::WinMem>>>,
    win_cv: Condvar,
    /// Rank-level barrier (sense-reversing).
    barrier: std::sync::Barrier,
    /// Messages matched so far (diagnostics).
    matched: AtomicU64,
    /// Recycled eager payload buffers, striped by source rank.
    pool: BufPool,
    /// Trace sink; `Trace::disabled()` costs one branch per event site.
    trace: Trace,
}

/// Child-context kinds (must match across ranks for a given creation).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CtxKind {
    Dup = 1,
    Win = 2,
    Part = 3,
}

impl Fabric {
    #[cfg(test)]
    pub(crate) fn new(n_ranks: usize, n_shards: usize, eager_max: usize) -> Arc<Fabric> {
        Fabric::new_traced(n_ranks, n_shards, eager_max, Trace::disabled())
    }

    pub(crate) fn new_traced(
        n_ranks: usize,
        n_shards: usize,
        eager_max: usize,
        trace: Trace,
    ) -> Arc<Fabric> {
        assert!(n_ranks >= 1 && n_shards >= 1);
        Arc::new(Fabric {
            n_ranks,
            n_shards,
            eager_max,
            shards: (0..n_ranks)
                .map(|_| {
                    (0..n_shards)
                        .map(|_| Mutex::new(MatchQueues::default()))
                        .collect()
                })
                .collect(),
            ctx_counters: Mutex::new(HashMap::new()),
            win_registry: Mutex::new(HashMap::new()),
            win_cv: Condvar::new(),
            barrier: std::sync::Barrier::new(n_ranks),
            matched: AtomicU64::new(0),
            pool: BufPool::new(n_ranks, eager_max.max(64)),
            trace,
        })
    }

    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.n_shards
    }

    pub(crate) fn eager_max(&self) -> usize {
        self.eager_max
    }

    pub(crate) fn matched_count(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }

    /// Rank-level barrier; must be called by exactly one thread per rank.
    pub(crate) fn rank_barrier(&self) {
        self.barrier.wait();
    }

    /// Derive a child context id; creation order must agree across ranks.
    pub(crate) fn alloc_child_ctx(&self, rank: usize, parent: u64, kind: CtxKind) -> u64 {
        let mut c = self.ctx_counters.lock();
        let counter = c.entry((rank, parent, kind as u8)).or_insert(0);
        let idx = *counter;
        *counter += 1;
        assert!(idx < 1 << 16, "too many child contexts");
        parent * (1 << 18) + ((kind as u64) << 16) + idx + 1
    }

    /// The shard a context's traffic uses (round-robin by context id).
    pub(crate) fn shard_of_ctx(&self, ctx: u64) -> usize {
        (ctx % self.n_shards as u64) as usize
    }

    /// Register a window's memory under its context (target side).
    pub(crate) fn register_win(&self, win_ctx: u64, mem: Arc<crate::rma::WinMem>) {
        let mut reg = self.win_registry.lock();
        let prev = reg.insert(win_ctx, mem);
        assert!(prev.is_none(), "window registered twice");
        self.win_cv.notify_all();
    }

    /// Look up a window's memory, blocking until the target registers it.
    pub(crate) fn attach_win(&self, win_ctx: u64) -> Arc<crate::rma::WinMem> {
        let mut reg = self.win_registry.lock();
        loop {
            if let Some(mem) = reg.get(&win_ctx) {
                return Arc::clone(mem);
            }
            self.win_cv.wait(&mut reg);
        }
    }

    /// Send `data` to `dst` on `(ctx, shard, tag)`.
    ///
    /// Eager messages complete locally (the returned ticket is already
    /// done); rendezvous tickets complete when a receiver has copied the
    /// data out.
    ///
    /// # Safety contract (rendezvous)
    /// The caller must keep `data`'s memory alive and unmodified until the
    /// ticket completes. The safe wrappers guarantee this by blocking or
    /// by owning the buffer alongside the ticket.
    pub(crate) fn send_raw(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
    ) -> SendTicket {
        if data.len() <= self.eager_max {
            self.send_eager(dst, shard, ctx, src_rank, tag, data);
            SendTicket { done: None }
        } else {
            let done = Completion::new();
            self.send_rdv(dst, shard, ctx, src_rank, tag, data, &done);
            SendTicket { done: Some(done) }
        }
    }

    /// Like [`send_raw`](Fabric::send_raw), but signals a caller-supplied
    /// persistent completion instead of allocating a ticket: eager sends
    /// set `done` before returning, rendezvous sends hand `done` to the
    /// copier. Persistent requests (`p2p`, `part`) reuse one completion
    /// per message slot across `start()` cycles, so the per-send hot path
    /// allocates nothing.
    ///
    /// # Safety contract (rendezvous)
    /// Same as `send_raw`: `data` must stay alive and unmodified until
    /// `done` is set. `done` must be unset at the call.
    #[allow(clippy::too_many_arguments)] // one per MPI envelope field
    pub(crate) fn send_raw_signal(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
        done: &Arc<Completion>,
    ) {
        if data.len() <= self.eager_max {
            self.send_eager(dst, shard, ctx, src_rank, tag, data);
            done.set();
        } else {
            self.send_rdv(dst, shard, ctx, src_rank, tag, data, done);
        }
    }

    /// Eager path: copy into a pooled buffer, hand it to the destination.
    /// Completes locally — the buffer travels, `data` is free immediately.
    fn send_eager(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
    ) {
        let (mut buf, hit) = self.pool.acquire(src_rank);
        buf.extend_from_slice(data);
        hotpath::count_pool(hit);
        self.trace.emit(src_rank as u16, || EventKind::EagerPool {
            shard: shard as u16,
            hit,
            bytes: data.len() as u64,
        });
        self.trace.emit(src_rank as u16, || EventKind::EagerSend {
            dst: dst as u16,
            shard: shard as u16,
            bytes: data.len() as u64,
        });
        self.deliver(dst, shard, ctx, src_rank, tag, Payload::Eager(buf));
    }

    /// Rendezvous path: publish the source pointer; the matching side
    /// copies and sets `done`.
    #[allow(clippy::too_many_arguments)] // one per MPI envelope field
    fn send_rdv(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
        done: &Arc<Completion>,
    ) {
        let payload = Payload::Rdv(RdvHandoff {
            src_ptr: data.as_ptr(),
            len: data.len(),
            done: Arc::clone(done),
            rts_ns: self.trace.now_ns(),
        });
        self.trace.emit(src_rank as u16, || EventKind::RdvSend {
            dst: dst as u16,
            shard: shard as u16,
            bytes: data.len() as u64,
        });
        self.deliver(dst, shard, ctx, src_rank, tag, payload);
    }

    fn deliver(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        payload: Payload,
    ) {
        assert!(dst < self.n_ranks, "destination rank out of range");
        let t0 = self.trace.now_ns();
        let mut q = self.shards[dst][shard].lock();
        self.trace.emit_span(t0, src_rank as u16, |start, dur| {
            EventKind::LockWait {
                shard: shard as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        if let Some(pos) = q.posted.iter().position(|p| p.matches(ctx, src_rank, tag)) {
            let posted = q.posted.remove(pos);
            drop(q); // copy outside the shard lock
            self.fulfill(posted, payload, src_rank, tag, shard);
        } else {
            q.unexpected.push(UnexpectedMsg {
                ctx,
                src: src_rank,
                tag,
                payload,
            });
        }
    }

    /// Post a receive into `(rank, shard)`; matches the oldest unexpected
    /// message first.
    pub(crate) fn post_recv(&self, rank: usize, shard: usize, posted: PostedRecv) -> RecvTicket {
        let ticket = RecvTicket {
            completion: Arc::clone(&posted.completion),
            info: Arc::clone(&posted.info),
        };
        let t0 = self.trace.now_ns();
        let mut q = self.shards[rank][shard].lock();
        self.trace.emit_span(t0, rank as u16, |start, dur| {
            EventKind::LockWait {
                shard: shard as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        if let Some(pos) = q
            .unexpected
            .iter()
            .position(|u| u.ctx == posted.ctx && posted.matches(u.ctx, u.src, u.tag))
        {
            let u = q.unexpected.remove(pos);
            drop(q);
            self.fulfill(posted, u.payload, u.src, u.tag, shard);
        } else {
            q.posted.push(posted);
        }
        ticket
    }

    /// Complete a matched pair: copy the payload into the destination and
    /// fire the completions.
    fn fulfill(&self, posted: PostedRecv, payload: Payload, src: usize, tag: i64, shard: usize) {
        let len = payload.len();
        assert!(
            len <= posted.dest_cap,
            "message of {len} bytes overflows {}-byte receive buffer",
            posted.dest_cap
        );
        match payload {
            Payload::Eager(v) => {
                if len > 0 {
                    // SAFETY: invariant (2) — exclusive, live destination.
                    unsafe {
                        std::ptr::copy_nonoverlapping(v.as_ptr(), posted.dest_ptr, len);
                    }
                }
                // Recycle the payload buffer for the sender's next eager
                // message.
                self.pool.release(src, v);
            }
            Payload::Rdv(h) => {
                if len > 0 {
                    // SAFETY: invariants (1) and (2); source and
                    // destination are distinct allocations.
                    unsafe {
                        std::ptr::copy_nonoverlapping(h.src_ptr, posted.dest_ptr, len);
                    }
                }
                h.done.set();
                // RTS-to-completion span, attributed to the sender whose
                // buffer stayed pinned for its duration.
                self.trace.emit_span(h.rts_ns, src as u16, |start, dur| {
                    EventKind::RdvCopy {
                        shard: shard as u16,
                        bytes: len as u64,
                        wait_ns: dur,
                    }
                    .at(start)
                });
            }
        }
        *posted.info.lock() = Some(MsgInfo { src, tag, len });
        self.matched.fetch_add(1, Ordering::Relaxed);
        posted.completion.set();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(
        fabric: &Fabric,
        rank: usize,
        shard: usize,
        ctx: u64,
        src: Option<usize>,
        tag: Option<i64>,
        buf: &mut [u8],
    ) -> RecvTicket {
        fabric.post_recv(
            rank,
            shard,
            PostedRecv {
                ctx,
                src,
                tag,
                dest_ptr: buf.as_mut_ptr(),
                dest_cap: buf.len(),
                info: Arc::new(Mutex::new(None)),
                completion: Completion::new(),
            },
        )
    }

    #[test]
    fn eager_send_to_posted_recv() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 16];
        let ticket = post(&f, 1, 0, 0, Some(0), Some(7), &mut buf);
        let st = f.send_raw(1, 0, 0, 0, 7, &[1, 2, 3]);
        assert!(st.test(), "eager completes locally");
        let info = ticket.wait();
        assert_eq!(
            info,
            MsgInfo {
                src: 0,
                tag: 7,
                len: 3
            }
        );
        assert_eq!(&buf[..3], &[1, 2, 3]);
    }

    #[test]
    fn eager_unexpected_then_post() {
        let f = Fabric::new(2, 1, 1024);
        f.send_raw(1, 0, 0, 0, 9, &[42; 8]);
        let mut buf = vec![0u8; 8];
        let ticket = post(&f, 1, 0, 0, None, Some(9), &mut buf);
        assert!(ticket.test());
        assert_eq!(buf, vec![42; 8]);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv() {
        let f = Fabric::new(2, 1, 64);
        let data = vec![7u8; 1000]; // > eager_max
        let ticket = f.send_raw(1, 0, 0, 0, 1, &data);
        assert!(!ticket.test(), "rendezvous must not complete locally");
        let mut buf = vec![0u8; 1000];
        let rt = post(&f, 1, 0, 0, Some(0), Some(1), &mut buf);
        assert!(ticket.test(), "receiver copy completes the send");
        assert_eq!(rt.wait().len, 1000);
        assert_eq!(buf, data);
    }

    #[test]
    fn rendezvous_preposted_recv() {
        let f = Fabric::new(2, 1, 64);
        let mut buf = vec![0u8; 256];
        let rt = post(&f, 1, 0, 0, Some(0), Some(2), &mut buf);
        let data: Vec<u8> = (0..=255).collect();
        let st = f.send_raw(1, 0, 0, 0, 2, &data);
        st.wait();
        rt.wait();
        assert_eq!(buf, data);
    }

    #[test]
    fn context_and_tag_isolation() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 4];
        let rt = post(&f, 1, 0, 5, Some(0), Some(1), &mut buf);
        f.send_raw(1, 0, 6, 0, 1, &[1]); // wrong ctx
        f.send_raw(1, 0, 5, 0, 2, &[2]); // wrong tag
        assert!(!rt.test());
        f.send_raw(1, 0, 5, 0, 1, &[3]);
        assert!(rt.test());
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn cross_thread_eager_roundtrip() {
        let f = Fabric::new(2, 2, 256);
        let f2 = Arc::clone(&f);
        let sender = std::thread::spawn(move || {
            for i in 0..100u8 {
                f2.send_raw(1, 1, 0, 0, i as i64, &[i]).wait();
            }
        });
        let mut got = Vec::new();
        for i in 0..100u8 {
            let mut b = [0u8; 1];
            let rt = post(&f, 1, 1, 0, Some(0), Some(i as i64), &mut b);
            rt.wait();
            got.push(b[0]);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u8>>());
    }

    #[test]
    fn cross_thread_rendezvous_roundtrip() {
        let f = Fabric::new(2, 1, 16);
        let f2 = Arc::clone(&f);
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let sender = std::thread::spawn(move || {
            f2.send_raw(1, 0, 0, 0, 3, &payload).wait();
        });
        let mut buf = vec![0u8; 5000];
        let rt = post(&f, 1, 0, 0, Some(0), Some(3), &mut buf);
        rt.wait();
        sender.join().unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    fn ctx_derivation_symmetric() {
        let f = Fabric::new(2, 4, 64);
        let a = f.alloc_child_ctx(0, 0, CtxKind::Dup);
        let b = f.alloc_child_ctx(1, 0, CtxKind::Dup);
        assert_eq!(a, b);
        let a2 = f.alloc_child_ctx(0, 0, CtxKind::Dup);
        assert_ne!(a, a2);
        // Shards cycle with consecutive contexts.
        let shards: Vec<usize> = (0..8)
            .map(|_| f.shard_of_ctx(f.alloc_child_ctx(0, 0, CtxKind::Dup)))
            .collect();
        let distinct: std::collections::HashSet<_> = shards.iter().collect();
        assert_eq!(distinct.len(), 4, "dup contexts should cover all shards");
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn oversized_message_panics() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 2];
        let _rt = post(&f, 1, 0, 0, None, None, &mut buf);
        f.send_raw(1, 0, 0, 0, 0, &[1, 2, 3]);
    }

    #[test]
    fn eager_pool_recycles_buffers() {
        let f = Fabric::new(2, 1, 1024);
        let before = crate::hotpath::pool_stats();
        // First send allocates; once fulfilled, the buffer returns to
        // rank 0's stripe and the following sends reuse it.
        for i in 0..5u8 {
            let mut buf = [0u8; 4];
            let rt = post(&f, 1, 0, 0, Some(0), Some(i as i64), &mut buf);
            f.send_raw(1, 0, 0, 0, i as i64, &[i; 4]);
            rt.wait();
            assert_eq!(buf, [i; 4]);
        }
        let after = crate::hotpath::pool_stats();
        // Sends 2..5 ran strictly after send 1's buffer was released, so
        // at least 4 of the 5 acquisitions were pool hits (other tests in
        // the process can only add hits, never subtract).
        assert!(
            after.hits >= before.hits + 4,
            "expected >=4 pool hits, got {} -> {}",
            before.hits,
            after.hits
        );
    }

    #[test]
    fn recycled_buffer_carries_no_stale_bytes() {
        let f = Fabric::new(2, 1, 1024);
        // Long message first, then a short one: the short message must
        // arrive with exactly its own bytes even though it likely reuses
        // the long message's (larger-capacity) buffer.
        let mut big = [0u8; 16];
        let rt = post(&f, 1, 0, 0, Some(0), Some(1), &mut big);
        f.send_raw(1, 0, 0, 0, 1, &[0xAA; 16]);
        rt.wait();
        let mut small = [7u8; 16];
        let rt = post(&f, 1, 0, 0, Some(0), Some(2), &mut small);
        f.send_raw(1, 0, 0, 0, 2, &[0xBB; 3]);
        let info = rt.wait();
        assert_eq!(info.len, 3);
        assert_eq!(&small[..3], &[0xBB; 3]);
        assert_eq!(&small[3..], &[7u8; 13], "bytes past len untouched");
    }

    #[test]
    fn send_raw_signal_eager_sets_immediately() {
        let f = Fabric::new(2, 1, 1024);
        let done = Completion::new();
        f.send_raw_signal(1, 0, 0, 0, 4, &[9; 8], &done);
        assert!(done.is_set(), "eager signal-send completes locally");
        let mut buf = [0u8; 8];
        let rt = post(&f, 1, 0, 0, Some(0), Some(4), &mut buf);
        rt.wait();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn send_raw_signal_rdv_sets_on_copy() {
        let f = Fabric::new(2, 1, 16);
        let data = vec![5u8; 500];
        let done = Completion::new();
        f.send_raw_signal(1, 0, 0, 0, 4, &data, &done);
        assert!(!done.is_set(), "rendezvous completes only on copy");
        let mut buf = vec![0u8; 500];
        let rt = post(&f, 1, 0, 0, Some(0), Some(4), &mut buf);
        rt.wait();
        assert!(done.is_set());
        assert_eq!(buf, data);
    }

    #[test]
    fn pool_stripe_overflow_drops_excess() {
        // More unmatched releases than slots: fill the stripe via many
        // matched sends in flight, then keep going — must not leak or
        // crash, and data stays correct.
        let f = Fabric::new(2, 1, 1024);
        let mut bufs = [[0u8; 2]; 2 * POOL_SLOTS];
        let tickets: Vec<RecvTicket> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| post(&f, 1, 0, 0, Some(0), Some(i as i64), b))
            .collect();
        for i in 0..2 * POOL_SLOTS {
            f.send_raw(1, 0, 0, 0, i as i64, &[i as u8; 2]);
        }
        for (i, t) in tickets.iter().enumerate() {
            t.wait();
            assert_eq!(bufs[i], [i as u8; 2]);
        }
    }

    #[test]
    fn matched_counter_increments() {
        let f = Fabric::new(2, 1, 1024);
        assert_eq!(f.matched_count(), 0);
        let mut buf = [0u8; 1];
        let _rt = post(&f, 1, 0, 0, None, None, &mut buf);
        f.send_raw(1, 0, 0, 0, 0, &[1]);
        assert_eq!(f.matched_count(), 1);
    }
}
