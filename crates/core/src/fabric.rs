//! The shared-memory fabric: tag matching, eager and rendezvous transfer.
//!
//! # Structure
//!
//! Each rank owns `n_shards` *match shards* — independently locked
//! matching queues. A shard is the in-process analogue of an MPICH VCI:
//! all traffic of a communicator goes through one shard, so threads
//! sending on the *same* communicator contend on one lock, while threads
//! with `dup()`ed communicators spread over shards and do not (the
//! mechanism behind the paper's Figs. 5–6).
//!
//! # Transfer paths
//!
//! * **Eager** (`len <= eager_max`): the sender copies the payload into a
//!   heap buffer, then either fulfills a posted receive (second copy into
//!   the destination) or parks the buffer in the unexpected queue. The
//!   send completes locally — the bcopy path.
//! * **Rendezvous** (`len > eager_max`): the sender publishes a raw
//!   pointer to its buffer; whoever completes the match (sender if the
//!   receive was pre-posted, receiver otherwise) copies directly from the
//!   source into the destination, then signals the sender — the zcopy
//!   path. The sender's request completes only then.
//!
//! # Safety
//!
//! The raw pointers crossing threads are governed by two invariants,
//! enforced by the safe wrappers in [`crate::p2p`] / [`crate::part`]:
//!
//! 1. A rendezvous source buffer stays immutable and alive until its
//!    `done` completion is set (senders block or hold the ticket).
//! 2. A posted destination buffer stays exclusively borrowed and alive
//!    until its `completion` is set (receivers block or own the buffer).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pcomm_trace::{EventKind, FaultAction, FaultKind, FaultPlan, Trace};

use crate::error::{BlockedWait, PcommError, QueueEntry, RankAborted, StallReport};
use crate::hotpath;
use crate::sync::{Condvar, Mutex};

use crate::sync::Completion;

/// Slice length for abort-aware blocking waits: blocked threads park in
/// slices of this and poll the abort flag between them. Short enough
/// that an abort propagates promptly, long enough that a blocked thread
/// wakes only ~500 times/s.
pub(crate) const WAIT_SLICE: Duration = Duration::from_millis(2);

/// After an abort, how long teardown paths keep waiting for an
/// in-progress fulfill to finish before giving up the buffer. No *new*
/// fulfill can start once the abort flag is set, so this only needs to
/// cover a memcpy already under way.
const ABORT_DRAIN_GRACE: Duration = Duration::from_millis(200);

/// Recycled-buffer slots per source rank in the eager pool. Eight covers
/// the in-flight window of a rank's sender threads in the bench workloads
/// without hoarding memory.
const POOL_SLOTS: usize = 8;

/// Lock-free pool of eager payload buffers, striped by *source* rank.
///
/// Each stripe is a fixed array of `AtomicPtr` slots holding boxed
/// `Vec<u8>`s. `acquire` swaps a slot to null and takes whole ownership of
/// the pointed-to vector; `release` CASes a cleared vector into the first
/// null slot (or drops it when the stripe is full). Because slots exchange
/// *whole owned values* — never links into a shared list — there is no ABA
/// hazard and no lock. A sender therefore pays one allocation per stripe
/// warm-up instead of one per message.
struct BufPool {
    stripes: Vec<[AtomicPtr<Vec<u8>>; POOL_SLOTS]>,
    /// Buffers whose capacity grew past this are dropped, not pooled.
    max_cap: usize,
}

impl BufPool {
    fn new(n_ranks: usize, max_cap: usize) -> BufPool {
        BufPool {
            stripes: (0..n_ranks)
                .map(|_| std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())))
                .collect(),
            max_cap,
        }
    }

    /// Take a cleared buffer from `rank`'s stripe; `true` means recycled.
    fn acquire(&self, rank: usize) -> (Vec<u8>, bool) {
        for slot in &self.stripes[rank] {
            let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: non-null slot values come only from
                // `Box::into_raw` in `release`; the swap transferred sole
                // ownership to us.
                let v = unsafe { *Box::from_raw(p) };
                return (v, true);
            }
        }
        (Vec::new(), false)
    }

    /// Return `buf` to `rank`'s stripe for reuse.
    fn release(&self, rank: usize, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_cap {
            return;
        }
        buf.clear();
        let p = Box::into_raw(Box::new(buf));
        for slot in &self.stripes[rank] {
            if slot
                .compare_exchange(
                    std::ptr::null_mut(),
                    p,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return;
            }
        }
        // Stripe full: free the buffer instead of blocking.
        // SAFETY: `p` came from `Box::into_raw` above and was never
        // published (every CAS failed).
        unsafe { drop(Box::from_raw(p)) };
    }
}

impl Drop for BufPool {
    fn drop(&mut self) {
        for stripe in &self.stripes {
            for slot in stripe {
                let p = slot.swap(std::ptr::null_mut(), Ordering::Acquire);
                if !p.is_null() {
                    // SAFETY: sole owner at drop time; pointer came from
                    // `Box::into_raw` in `release`.
                    unsafe { drop(Box::from_raw(p)) };
                }
            }
        }
    }
}

/// Envelope information returned by receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgInfo {
    /// Source rank.
    pub src: usize,
    /// Message tag.
    pub tag: i64,
    /// Payload length in bytes.
    pub len: usize,
}

/// Rendezvous handoff: pointer to the sender's buffer plus the completion
/// the copier must set.
pub(crate) struct RdvHandoff {
    pub(crate) src_ptr: *const u8,
    pub(crate) len: usize,
    pub(crate) done: Arc<Completion>,
    /// Trace timestamp of the RTS (None when tracing is disabled).
    pub(crate) rts_ns: Option<u64>,
}

// SAFETY: the pointer is only dereferenced by the matching thread before
// `done.set()`; invariant (1) above guarantees the buffer outlives that.
unsafe impl Send for RdvHandoff {}

pub(crate) enum Payload {
    Eager(Vec<u8>),
    Rdv(RdvHandoff),
    /// A rendezvous RTS that arrived over the wire: no local pointer —
    /// matching parks the posted buffer with the transport (which sends
    /// the CTS) and the data lands later via
    /// [`Fabric::complete_remote_rdv`].
    RdvRemote {
        len: usize,
        rdv_id: u64,
        /// Local timestamp of the RTS frame's arrival, for the RdvCopy
        /// span (None when tracing is disabled).
        rts_ns: Option<u64>,
    },
}

impl Payload {
    fn len(&self) -> usize {
        match self {
            Payload::Eager(v) => v.len(),
            Payload::Rdv(h) => h.len,
            Payload::RdvRemote { len, .. } => *len,
        }
    }
}

/// A receive posted into a shard, waiting for its message.
pub(crate) struct PostedRecv {
    pub(crate) ctx: u64,
    pub(crate) src: Option<usize>,
    pub(crate) tag: Option<i64>,
    pub(crate) dest_ptr: *mut u8,
    pub(crate) dest_cap: usize,
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
    pub(crate) completion: Arc<Completion>,
    /// `Some((req, m))` when this is message `m` of partitioned request
    /// `req` (the interned verify id): fulfilling it emits a
    /// `VerifyMsgRecv` analysis event (the transfer's write into the
    /// partition buffer).
    pub(crate) verify_msg: Option<(u16, u16)>,
}

// SAFETY: the destination is only written by the fulfilling thread before
// `completion.set()`; invariant (2) above guarantees exclusive access.
unsafe impl Send for PostedRecv {}

impl PostedRecv {
    fn matches(&self, ctx: u64, src: usize, tag: i64) -> bool {
        self.ctx == ctx
            && self.src.map(|s| s == src).unwrap_or(true)
            && self.tag.map(|t| t == tag).unwrap_or(true)
    }
}

struct UnexpectedMsg {
    ctx: u64,
    src: usize,
    tag: i64,
    payload: Payload,
}

#[derive(Default)]
struct MatchQueues {
    posted: Vec<PostedRecv>,
    unexpected: Vec<UnexpectedMsg>,
}

/// Ticket for an in-flight send; `None` completion means it completed
/// locally (eager).
pub(crate) struct SendTicket {
    done: Option<Arc<Completion>>,
}

impl SendTicket {
    /// Block until the send buffer is reusable (tests only; universe
    /// code waits through the abort-aware [`Fabric::wait_on`]).
    #[cfg(test)]
    pub(crate) fn wait(&self) {
        if let Some(d) = &self.done {
            d.wait();
        }
    }

    /// The pending completion, if the send did not complete locally.
    /// Callers inside a universe wait on it through
    /// [`Fabric::wait_on`] so the wait stays abort-aware.
    pub(crate) fn done(&self) -> Option<&Arc<Completion>> {
        self.done.as_ref()
    }

    /// Non-blocking completion probe.
    #[cfg(test)]
    pub(crate) fn test(&self) -> bool {
        self.done.as_ref().map(|d| d.is_set()).unwrap_or(true)
    }
}

/// Ticket for an in-flight receive.
pub(crate) struct RecvTicket {
    pub(crate) completion: Arc<Completion>,
    pub(crate) info: Arc<Mutex<Option<MsgInfo>>>,
}

impl RecvTicket {
    #[cfg(test)]
    pub(crate) fn wait(&self) -> MsgInfo {
        self.completion.wait();
        self.info.lock().expect("completed receive carries info")
    }

    #[cfg(test)]
    pub(crate) fn test(&self) -> bool {
        self.completion.is_set()
    }
}

/// An eager message held back by the chaos reorder fault, waiting for a
/// later message to overtake it.
struct HeldMsg {
    shard: usize,
    ctx: u64,
    src: usize,
    tag: i64,
    buf: Vec<u8>,
}

/// Chaos-injection state: the plan plus the mutable bookkeeping its
/// determinism and the reorder fault need. Present only when a
/// [`FaultPlan`] is configured — the fault-free hot path pays exactly
/// one `Option` branch per send.
struct FaultState {
    plan: FaultPlan,
    /// Per-channel `(src, dst, ctx, tag)` message sequence numbers. The
    /// plan's decisions are keyed by these (not by arrival order), which
    /// is what makes a seeded run bit-for-bit reproducible regardless of
    /// thread interleaving.
    seqs: Mutex<HashMap<(usize, usize, u64, i64), u64>>,
    /// Held-back (reordered) messages, indexed by destination rank.
    held: Vec<Mutex<Vec<HeldMsg>>>,
}

impl FaultState {
    fn new(plan: FaultPlan, n_ranks: usize) -> FaultState {
        FaultState {
            plan,
            seqs: Mutex::new(HashMap::new()),
            held: (0..n_ranks).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn next_seq(&self, src: usize, dst: usize, ctx: u64, tag: i64) -> u64 {
        let mut seqs = self.seqs.lock();
        let c = seqs.entry((src, dst, ctx, tag)).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }
}

/// Sense-reversing barrier that waits in slices so a blocked rank can
/// notice the abort flag instead of deadlocking on a dead peer
/// (`std::sync::Barrier` has no way out).
struct BarrierState {
    count: usize,
    generation: u64,
}

/// The shared-memory interconnect between ranks.
pub(crate) struct Fabric {
    n_ranks: usize,
    n_shards: usize,
    eager_max: usize,
    /// `[rank][shard]` matching queues.
    shards: Vec<Vec<Mutex<MatchQueues>>>,
    /// Deterministic child-context derivation (dup/window/partitioned);
    /// collective creation order must agree across ranks, as in MPI.
    ctx_counters: Mutex<HashMap<(usize, u64, u8), u64>>,
    /// Window registry for collective window creation.
    win_registry: Mutex<HashMap<u64, Arc<crate::rma::WinMem>>>,
    win_cv: Condvar,
    /// Rank-level barrier (sense-reversing, abort-aware).
    barrier_state: Mutex<BarrierState>,
    barrier_cv: Condvar,
    /// Messages matched so far (diagnostics).
    matched: AtomicU64,
    /// Recycled eager payload buffers, striped by source rank.
    pool: BufPool,
    /// Trace sink; `Trace::disabled()` costs one branch per event site.
    trace: Trace,
    /// Chaos-injection state; `None` outside chaos runs.
    fault: Option<FaultState>,
    /// First failure wins; everything after is a casualty of the abort.
    failure: Mutex<Option<PcommError>>,
    /// Once set, blocking waits unwind with [`RankAborted`] and the
    /// match queues stop fulfilling (so teardown can free buffers).
    aborted: AtomicBool,
    /// Bumped at every progress point; the watchdog declares a stall
    /// only after this stays still for the whole deadline.
    activity: AtomicU64,
    /// Blocked waits by registration id, for the stall report.
    wait_registry: Mutex<HashMap<u64, BlockedWait>>,
    next_wait_id: AtomicU64,
    /// Per-rank "closure returned" flags, for the stall report.
    finished: Vec<AtomicBool>,
    /// How remote-hosted ranks are reached (multiprocess runs); the
    /// shared-memory stub otherwise.
    transport: Arc<dyn crate::transport::Transport>,
    /// Cached `transport.is_multiproc()` — keeps the hot-path locality
    /// check to one branch on a plain bool.
    multiproc: bool,
}

/// Child-context kinds (must match across ranks for a given creation).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CtxKind {
    Dup = 1,
    Win = 2,
    Part = 3,
}

impl Fabric {
    #[cfg(test)]
    pub(crate) fn new(n_ranks: usize, n_shards: usize, eager_max: usize) -> Arc<Fabric> {
        Fabric::new_configured(
            n_ranks,
            n_shards,
            eager_max,
            Trace::disabled(),
            None,
            Arc::new(crate::transport::SharedMemTransport),
        )
    }

    pub(crate) fn new_configured(
        n_ranks: usize,
        n_shards: usize,
        eager_max: usize,
        trace: Trace,
        fault_plan: Option<FaultPlan>,
        transport: Arc<dyn crate::transport::Transport>,
    ) -> Arc<Fabric> {
        assert!(n_ranks >= 1 && n_shards >= 1);
        let multiproc = transport.is_multiproc();
        Arc::new(Fabric {
            n_ranks,
            n_shards,
            eager_max,
            shards: (0..n_ranks)
                .map(|_| {
                    (0..n_shards)
                        .map(|_| Mutex::new(MatchQueues::default()))
                        .collect()
                })
                .collect(),
            ctx_counters: Mutex::new(HashMap::new()),
            win_registry: Mutex::new(HashMap::new()),
            win_cv: Condvar::new(),
            barrier_state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
            }),
            barrier_cv: Condvar::new(),
            matched: AtomicU64::new(0),
            pool: BufPool::new(n_ranks, eager_max.max(64)),
            trace,
            fault: fault_plan.map(|p| FaultState::new(p, n_ranks)),
            failure: Mutex::new(None),
            aborted: AtomicBool::new(false),
            activity: AtomicU64::new(0),
            wait_registry: Mutex::new(HashMap::new()),
            next_wait_id: AtomicU64::new(0),
            finished: (0..n_ranks).map(|_| AtomicBool::new(false)).collect(),
            transport,
            multiproc,
        })
    }

    /// Whether `rank` is hosted by this process. Always true for
    /// in-process universes; in multiprocess runs only the local rank is.
    #[inline]
    pub(crate) fn is_local(&self, rank: usize) -> bool {
        !self.multiproc || rank == self.transport.local_rank()
    }

    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.n_shards
    }

    pub(crate) fn eager_max(&self) -> usize {
        self.eager_max
    }

    pub(crate) fn matched_count(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }

    /// The configured fault plan, if any (chaos runs only).
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Record a failure and abort the universe. The first failure wins;
    /// later ones are casualties of the abort and are discarded. In
    /// multiprocess runs the first local failure is also broadcast to
    /// every peer process.
    pub(crate) fn fail(&self, err: PcommError) {
        self.fail_with(err, true);
    }

    /// Record a failure received *from* the wire: identical to
    /// [`Fabric::fail`] but never re-broadcast, so abort frames cannot
    /// echo between processes forever.
    pub(crate) fn fail_from_wire(&self, err: PcommError) {
        self.fail_with(err, false);
    }

    fn fail_with(&self, err: PcommError, broadcast: bool) {
        let first = {
            let mut f = self.failure.lock();
            if f.is_none() {
                *f = Some(err.clone());
                true
            } else {
                false
            }
        };
        self.aborted.store(true, Ordering::Release);
        // Barrier waiters poll in slices, but wake them now anyway.
        self.barrier_cv.notify_all();
        self.win_cv.notify_all();
        if first && broadcast && self.multiproc {
            self.transport.broadcast_abort(&err);
        }
    }

    /// A clone of the failure of record, if any (leaves it in place for
    /// [`Fabric::take_failure`]).
    pub(crate) fn failure_snapshot(&self) -> Option<PcommError> {
        self.failure.lock().clone()
    }

    /// Whether some rank already failed and the universe is unwinding.
    pub(crate) fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    /// Take the failure of record (once, by the universe after joining).
    pub(crate) fn take_failure(&self) -> Option<PcommError> {
        self.failure.lock().take()
    }

    /// Monotonic progress counter for the watchdog.
    pub(crate) fn activity(&self) -> u64 {
        self.activity.load(Ordering::Relaxed)
    }

    #[inline]
    fn touch(&self) {
        self.activity.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark `rank`'s closure as returned (stall-report bookkeeping).
    pub(crate) fn mark_finished(&self, rank: usize) {
        self.finished[rank].store(true, Ordering::Release);
        self.touch();
    }

    /// Whether any blocked wait is currently registered.
    pub(crate) fn has_blocked_waits(&self) -> bool {
        !self.wait_registry.lock().is_empty()
    }

    fn register_wait(
        &self,
        rank: usize,
        what: String,
        tag: Option<i64>,
        peer: Option<usize>,
    ) -> u64 {
        let id = self.next_wait_id.fetch_add(1, Ordering::Relaxed);
        self.wait_registry.lock().insert(
            id,
            BlockedWait {
                rank,
                what,
                tag,
                peer,
            },
        );
        id
    }

    fn unregister_wait(&self, id: u64) {
        self.wait_registry.lock().remove(&id);
    }

    /// Abort-aware blocking wait: park on `completion` in
    /// [`WAIT_SLICE`]s, polling the abort flag between slices, and
    /// unwind with [`RankAborted`] once some rank failed. After the
    /// first slice times out the wait registers itself (lazily — short
    /// waits never touch the registry) so a stall report can say which
    /// rank is blocked on what. `label` builds that description and is
    /// called at most once.
    ///
    /// The completed fast path is identical to `Completion::wait`: one
    /// atomic load, no locks.
    pub(crate) fn wait_on<F>(&self, completion: &Completion, rank: usize, label: F)
    where
        F: FnOnce() -> (String, Option<i64>, Option<usize>),
    {
        let mut label = Some(label);
        let mut reg_id = None;
        loop {
            // The transport owns the park: the default sleeps one
            // WAIT_SLICE on the completion; the ipc fabric instead runs
            // inline progress (drain + yield-spin + futex) so a waiting
            // app thread is also the progress engine.
            if self.transport.wait_slice(self, completion) {
                break;
            }
            if self.aborted() {
                if let Some(id) = reg_id {
                    self.unregister_wait(id);
                }
                std::panic::panic_any(RankAborted);
            }
            if reg_id.is_none() {
                if let Some(f) = label.take() {
                    let (what, tag, peer) = f();
                    reg_id = Some(self.register_wait(rank, what, tag, peer));
                }
            }
        }
        if let Some(id) = reg_id {
            self.unregister_wait(id);
        }
    }

    /// Teardown wait: block until `completion` is set, but after an
    /// abort give up once [`ABORT_DRAIN_GRACE`] has passed (no new
    /// fulfill can start post-abort, so the grace only needs to cover a
    /// copy already in flight). Never unwinds — safe in `Drop` impls.
    pub(crate) fn drain_completion(&self, completion: &Completion) {
        let mut waited_after_abort = Duration::ZERO;
        loop {
            if completion.wait_timeout(WAIT_SLICE) {
                return;
            }
            if self.aborted() {
                waited_after_abort += WAIT_SLICE;
                if waited_after_abort >= ABORT_DRAIN_GRACE {
                    return;
                }
            }
        }
    }

    /// Rank-level barrier; must be called by exactly one thread per rank.
    /// Unwinds with [`RankAborted`] if the universe fails while waiting.
    pub(crate) fn rank_barrier(&self, rank: usize) {
        self.touch();
        if self.multiproc {
            // Cross-process: the transport runs a rank-0-coordinated
            // arrive/release round over the wire.
            self.transport.barrier(self, rank);
            return;
        }
        let mut st = self.barrier_state.lock();
        let gen = st.generation;
        st.count += 1;
        if st.count == self.n_ranks {
            st.count = 0;
            st.generation = st.generation.wrapping_add(1);
            self.barrier_cv.notify_all();
            return;
        }
        let reg_id = self.register_wait(rank, format!("barrier (generation {gen})"), None, None);
        while st.generation == gen {
            if self.aborted() {
                self.unregister_wait(reg_id);
                std::panic::panic_any(RankAborted);
            }
            self.barrier_cv.wait_timeout(&mut st, WAIT_SLICE);
        }
        self.unregister_wait(reg_id);
    }

    /// Derive a child context id; creation order must agree across ranks.
    pub(crate) fn alloc_child_ctx(&self, rank: usize, parent: u64, kind: CtxKind) -> u64 {
        let mut c = self.ctx_counters.lock();
        let counter = c.entry((rank, parent, kind as u8)).or_insert(0);
        let idx = *counter;
        *counter += 1;
        assert!(idx < 1 << 16, "too many child contexts");
        parent * (1 << 18) + ((kind as u64) << 16) + idx + 1
    }

    /// The shard a context's traffic uses (round-robin by context id).
    pub(crate) fn shard_of_ctx(&self, ctx: u64) -> usize {
        (ctx % self.n_shards as u64) as usize
    }

    /// Register a window's memory under its context (target side).
    pub(crate) fn register_win(&self, win_ctx: u64, mem: Arc<crate::rma::WinMem>) {
        self.touch();
        let mut reg = self.win_registry.lock();
        let prev = reg.insert(win_ctx, mem);
        assert!(prev.is_none(), "window registered twice");
        self.win_cv.notify_all();
    }

    /// Look up a window's memory, blocking until the target registers it.
    /// Unwinds with [`RankAborted`] if the universe fails while waiting.
    pub(crate) fn attach_win(&self, win_ctx: u64, rank: usize) -> Arc<crate::rma::WinMem> {
        let mut reg = self.win_registry.lock();
        if let Some(mem) = reg.get(&win_ctx) {
            return Arc::clone(mem);
        }
        let reg_id = self.register_wait(rank, format!("attach_win(ctx={win_ctx})"), None, None);
        loop {
            if let Some(mem) = reg.get(&win_ctx) {
                self.unregister_wait(reg_id);
                return Arc::clone(mem);
            }
            if self.aborted() {
                self.unregister_wait(reg_id);
                std::panic::panic_any(RankAborted);
            }
            self.win_cv.wait_timeout(&mut reg, WAIT_SLICE);
        }
    }

    /// Send `data` to `dst` on `(ctx, shard, tag)`.
    ///
    /// Eager messages complete locally (the returned ticket is already
    /// done); rendezvous tickets complete when a receiver has copied the
    /// data out.
    ///
    /// # Safety contract (rendezvous)
    /// The caller must keep `data`'s memory alive and unmodified until the
    /// ticket completes. The safe wrappers guarantee this by blocking or
    /// by owning the buffer alongside the ticket.
    pub(crate) fn send_raw(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
    ) -> SendTicket {
        if self.eager_max > 0 && data.len() <= self.eager_max {
            self.send_eager(dst, shard, ctx, src_rank, tag, data);
            SendTicket { done: None }
        } else {
            let done = Completion::new();
            self.send_rdv(dst, shard, ctx, src_rank, tag, data, &done);
            SendTicket { done: Some(done) }
        }
    }

    /// Like [`send_raw`](Fabric::send_raw), but signals a caller-supplied
    /// persistent completion instead of allocating a ticket: eager sends
    /// set `done` before returning, rendezvous sends hand `done` to the
    /// copier. Persistent requests (`p2p`, `part`) reuse one completion
    /// per message slot across `start()` cycles, so the per-send hot path
    /// allocates nothing.
    ///
    /// # Safety contract (rendezvous)
    /// Same as `send_raw`: `data` must stay alive and unmodified until
    /// `done` is set. `done` must be unset at the call.
    #[allow(clippy::too_many_arguments)] // one per MPI envelope field
    pub(crate) fn send_raw_signal(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
        done: &Arc<Completion>,
    ) {
        if self.eager_max > 0 && data.len() <= self.eager_max {
            self.send_eager(dst, shard, ctx, src_rank, tag, data);
            done.set();
        } else {
            self.send_rdv(dst, shard, ctx, src_rank, tag, data, done);
        }
    }

    /// Eager path: copy into a pooled buffer, hand it to the destination.
    /// Completes locally — the buffer travels, `data` is free immediately.
    fn send_eager(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
    ) {
        let (mut buf, hit) = self.pool.acquire(src_rank);
        buf.extend_from_slice(data);
        hotpath::count_pool(hit);
        self.trace.emit(src_rank as u16, || EventKind::EagerPool {
            shard: shard as u16,
            hit,
            bytes: data.len() as u64,
        });
        self.trace.emit(src_rank as u16, || EventKind::EagerSend {
            dst: dst as u16,
            shard: shard as u16,
            bytes: data.len() as u64,
        });
        if self.fault.is_some() {
            self.send_eager_chaos(dst, shard, ctx, src_rank, tag, buf);
        } else {
            self.route_eager(dst, shard, ctx, src_rank, tag, buf);
        }
    }

    /// Deliver an eager payload locally or put it on the wire — the one
    /// seam every eager path (clean, chaos, held-message flush) funnels
    /// through, so fault decisions happen identically either way.
    fn route_eager(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        buf: Vec<u8>,
    ) {
        if self.is_local(dst) {
            self.deliver(dst, shard, ctx, src_rank, tag, Payload::Eager(buf));
        } else {
            self.transport.ship_eager(dst, shard, ctx, tag, &buf);
            self.pool.release(src_rank, buf);
            self.touch();
        }
    }

    /// Eager delivery under a fault plan: the plan decides per message
    /// (keyed by channel sequence number, so the decision sequence is
    /// independent of thread interleaving) whether to drop, delay,
    /// duplicate, or reorder.
    ///
    /// A *drop* consumes one retry and re-decides with the next attempt
    /// number — modelling a sender that retransmits after a NACK/timeout.
    /// When the drop budget is exhausted the message is lost for good and
    /// the universe fails with [`PcommError::MessageLost`]. (The send
    /// still completes locally: eager sends are fire-and-forget, exactly
    /// like a real eager protocol that learns of the loss only later.)
    fn send_eager_chaos(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        buf: Vec<u8>,
    ) {
        let fs = self.fault.as_ref().expect("chaos path without fault state");
        let seq = fs.next_seq(src_rank, dst, ctx, tag);
        let mut attempt: u32 = 0;
        let action = loop {
            let a = fs.plan.decide(src_rank, dst, ctx, tag, seq, attempt);
            if !matches!(a, FaultAction::Drop) {
                break a;
            }
            let dropped_attempt = attempt;
            self.trace
                .emit(src_rank as u16, || EventKind::FaultInjected {
                    fault: FaultKind::Drop,
                    dst: dst as u16,
                    tag,
                    arg: dropped_attempt as u64,
                });
            if attempt >= fs.plan.max_retries {
                self.pool.release(src_rank, buf);
                self.fail(PcommError::MessageLost {
                    src: src_rank,
                    dst,
                    tag,
                    attempts: attempt + 1,
                });
                return;
            }
            attempt += 1;
            let retry = attempt;
            self.trace
                .emit(src_rank as u16, || EventKind::RetryAttempt {
                    dst: dst as u16,
                    attempt: retry as u16,
                    tag,
                });
        };
        match action {
            FaultAction::None | FaultAction::Drop => {
                self.chaos_deliver_eager(dst, shard, ctx, src_rank, tag, buf);
            }
            FaultAction::Delay { us } => {
                self.trace
                    .emit(src_rank as u16, || EventKind::FaultInjected {
                        fault: FaultKind::Delay,
                        dst: dst as u16,
                        tag,
                        arg: us,
                    });
                std::thread::sleep(Duration::from_micros(us));
                self.chaos_deliver_eager(dst, shard, ctx, src_rank, tag, buf);
            }
            FaultAction::Duplicate => {
                self.trace
                    .emit(src_rank as u16, || EventKind::FaultInjected {
                        fault: FaultKind::Duplicate,
                        dst: dst as u16,
                        tag,
                        arg: 0,
                    });
                let copy = buf.clone();
                self.chaos_deliver_eager(dst, shard, ctx, src_rank, tag, copy);
                self.chaos_deliver_eager(dst, shard, ctx, src_rank, tag, buf);
            }
            FaultAction::Reorder => {
                self.trace
                    .emit(src_rank as u16, || EventKind::FaultInjected {
                        fault: FaultKind::Reorder,
                        dst: dst as u16,
                        tag,
                        arg: 0,
                    });
                fs.held[dst].lock().push(HeldMsg {
                    shard,
                    ctx,
                    src: src_rank,
                    tag,
                    buf,
                });
            }
        }
    }

    /// Chaos-path delivery preserving MPI's per-channel non-overtaking
    /// guarantee: any held-back message of the *same* `(src, dst, ctx,
    /// tag)` channel is delivered first (channel FIFO — the reorder
    /// quietly decays), then the current message, then every *other* held
    /// message for `dst` (which has thereby been overtaken — the reorder
    /// the fault wanted).
    fn chaos_deliver_eager(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        buf: Vec<u8>,
    ) {
        self.flush_held_channel(dst, ctx, src_rank, tag);
        self.route_eager(dst, shard, ctx, src_rank, tag, buf);
        self.flush_held_for(dst);
    }

    /// Deliver held-back messages of one channel, oldest first.
    fn flush_held_channel(&self, dst: usize, ctx: u64, src: usize, tag: i64) {
        let Some(fs) = &self.fault else { return };
        let msgs: Vec<HeldMsg> = {
            let mut held = fs.held[dst].lock();
            let mut out = Vec::new();
            let mut i = 0;
            while i < held.len() {
                if held[i].ctx == ctx && held[i].src == src && held[i].tag == tag {
                    out.push(held.remove(i));
                } else {
                    i += 1;
                }
            }
            out
        };
        for m in msgs {
            self.route_eager(dst, m.shard, m.ctx, m.src, m.tag, m.buf);
        }
    }

    /// Deliver every held-back message destined for `dst`, oldest first.
    fn flush_held_for(&self, dst: usize) {
        let Some(fs) = &self.fault else { return };
        let msgs: Vec<HeldMsg> = std::mem::take(&mut *fs.held[dst].lock());
        for m in msgs {
            self.route_eager(dst, m.shard, m.ctx, m.src, m.tag, m.buf);
        }
    }

    /// Deliver every held-back message fabric-wide; returns how many.
    /// The watchdog supervisor calls this when the fabric goes quiet, so
    /// a reorder hold-back with no follow-up traffic cannot stall the
    /// run; the universe also calls it once after the rank closures
    /// return.
    pub(crate) fn flush_held(&self) -> usize {
        let Some(fs) = &self.fault else { return 0 };
        let mut n = 0;
        for dst in 0..self.n_ranks {
            let msgs: Vec<HeldMsg> = std::mem::take(&mut *fs.held[dst].lock());
            n += msgs.len();
            for m in msgs {
                self.route_eager(dst, m.shard, m.ctx, m.src, m.tag, m.buf);
            }
        }
        n
    }

    /// Rendezvous path: publish the source pointer; the matching side
    /// copies and sets `done`.
    #[allow(clippy::too_many_arguments)] // one per MPI envelope field
    fn send_rdv(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        data: &[u8],
        done: &Arc<Completion>,
    ) {
        self.trace.emit(src_rank as u16, || EventKind::RdvSend {
            dst: dst as u16,
            shard: shard as u16,
            bytes: data.len() as u64,
        });
        if let Some(fs) = &self.fault {
            // Rendezvous is a zero-copy pointer handoff: duplicating or
            // holding it back would alias or outlive the source buffer,
            // so only Drop (of the RTS, with retries) and Delay apply;
            // other decisions decay to clean delivery.
            let seq = fs.next_seq(src_rank, dst, ctx, tag);
            let mut attempt: u32 = 0;
            loop {
                match fs.plan.decide(src_rank, dst, ctx, tag, seq, attempt) {
                    FaultAction::Drop => {
                        let dropped_attempt = attempt;
                        self.trace
                            .emit(src_rank as u16, || EventKind::FaultInjected {
                                fault: FaultKind::Drop,
                                dst: dst as u16,
                                tag,
                                arg: dropped_attempt as u64,
                            });
                        if attempt >= fs.plan.max_retries {
                            // RTS lost for good: the sender's completion
                            // stays unset; its wait unwinds via the abort.
                            self.fail(PcommError::MessageLost {
                                src: src_rank,
                                dst,
                                tag,
                                attempts: attempt + 1,
                            });
                            return;
                        }
                        attempt += 1;
                        let retry = attempt;
                        self.trace
                            .emit(src_rank as u16, || EventKind::RetryAttempt {
                                dst: dst as u16,
                                attempt: retry as u16,
                                tag,
                            });
                    }
                    FaultAction::Delay { us } => {
                        self.trace
                            .emit(src_rank as u16, || EventKind::FaultInjected {
                                fault: FaultKind::Delay,
                                dst: dst as u16,
                                tag,
                                arg: us,
                            });
                        std::thread::sleep(Duration::from_micros(us));
                        break;
                    }
                    _ => break,
                }
            }
            // Preserve channel FIFO against any held-back eager message
            // of the same channel before the rendezvous overtakes it.
            self.flush_held_channel(dst, ctx, src_rank, tag);
        }
        if !self.is_local(dst) {
            // Wire rendezvous: pin the buffer with the transport and
            // ship an RTS; the CTS handler frames the bytes and sets
            // `done` (same pin-until-done contract as the in-process
            // pointer handoff).
            self.transport.ship_rts(
                dst,
                shard,
                ctx,
                tag,
                crate::transport::PinnedSend {
                    ptr: data.as_ptr(),
                    len: data.len(),
                    done: Arc::clone(done),
                },
            );
            self.touch();
            if self.fault.is_some() {
                self.flush_held_for(dst);
            }
            return;
        }
        let payload = Payload::Rdv(RdvHandoff {
            src_ptr: data.as_ptr(),
            len: data.len(),
            done: Arc::clone(done),
            rts_ns: self.trace.now_ns(),
        });
        self.deliver(dst, shard, ctx, src_rank, tag, payload);
        if self.fault.is_some() {
            self.flush_held_for(dst);
        }
    }

    /// Open a partitioned wire stream toward `dst` (see the transport's
    /// streaming protocol); returns the stream id that pushes name.
    /// `spans` carries the per-message sender completions: the writer
    /// threads flip each one once its byte range is on the wire.
    pub(crate) fn part_stream_begin(
        &self,
        dst: usize,
        ctx: u64,
        total_len: usize,
        spans: Vec<crate::transport::SendSpan>,
    ) -> u64 {
        let id = self.transport.part_stream_begin(dst, ctx, total_len, spans);
        self.touch();
        id
    }

    /// Ship one ready partition range on a wire stream, under the same
    /// fault taxonomy as [`Fabric::send_rdv`]'s RTS: a range is pushed
    /// exactly once into pinned remote memory, so Duplicate and Reorder
    /// decay to clean delivery, Delay sleeps, and Drop consumes retries
    /// — exhausting them loses the message for good (the span's `done`
    /// stays unset; the sender's wait unwinds via the abort).
    #[allow(clippy::too_many_arguments)] // one per envelope field
    pub(crate) fn part_stream_send(
        &self,
        dst: usize,
        src_rank: usize,
        ctx: u64,
        tag: i64,
        stream_id: u64,
        offset: u64,
        data: &[u8],
        parts: u16,
    ) {
        if let Some(fs) = &self.fault {
            let seq = fs.next_seq(src_rank, dst, ctx, tag);
            let mut attempt: u32 = 0;
            loop {
                match fs.plan.decide(src_rank, dst, ctx, tag, seq, attempt) {
                    FaultAction::Drop => {
                        let dropped_attempt = attempt;
                        self.trace
                            .emit(src_rank as u16, || EventKind::FaultInjected {
                                fault: FaultKind::Drop,
                                dst: dst as u16,
                                tag,
                                arg: dropped_attempt as u64,
                            });
                        if attempt >= fs.plan.max_retries {
                            self.fail(PcommError::MessageLost {
                                src: src_rank,
                                dst,
                                tag,
                                attempts: attempt + 1,
                            });
                            return;
                        }
                        attempt += 1;
                        let retry = attempt;
                        self.trace
                            .emit(src_rank as u16, || EventKind::RetryAttempt {
                                dst: dst as u16,
                                attempt: retry as u16,
                                tag,
                            });
                    }
                    FaultAction::Delay { us } => {
                        self.trace
                            .emit(src_rank as u16, || EventKind::FaultInjected {
                                fault: FaultKind::Delay,
                                dst: dst as u16,
                                tag,
                                arg: us,
                            });
                        std::thread::sleep(Duration::from_micros(us));
                        break;
                    }
                    _ => break,
                }
            }
            // No held-eager flush here: partitioned pairs never put
            // eager traffic on their context in streaming mode, so
            // there is no channel-FIFO obligation to preserve.
        }
        self.transport
            .part_stream_push(self, stream_id, offset, data, parts);
        // The range stays pinned in the sender's buffer: the writer
        // thread flips the message's span completion once the bytes are
        // on the wire, so there is no local copy to declare done here.
        self.touch();
    }

    /// Pin a whole partitioned destination buffer for the next stream
    /// from `src` on `ctx`.
    pub(crate) fn part_stream_post(
        &self,
        src: usize,
        ctx: u64,
        recv: crate::transport::PartStreamRecv,
    ) {
        self.transport.part_stream_post(self, src, ctx, recv);
        self.touch();
    }

    /// Try to pin a partitioned destination the sender can reach
    /// directly (the ipc fabric's shared arena); `None` on transports
    /// without shared destination memory — callers fall back to owned
    /// storage.
    pub(crate) fn alloc_part_dest(&self, src: usize, len: usize) -> Option<(u64, *mut u8)> {
        self.transport.alloc_part_dest(src, len)
    }

    /// Return a grant from [`Fabric::alloc_part_dest`].
    pub(crate) fn release_part_dest(&self, src: usize, token: u64, len: usize) {
        self.transport.release_part_dest(src, token, len);
    }

    fn deliver(
        &self,
        dst: usize,
        shard: usize,
        ctx: u64,
        src_rank: usize,
        tag: i64,
        payload: Payload,
    ) {
        assert!(dst < self.n_ranks, "destination rank out of range");
        self.touch();
        if self.aborted() {
            // The universe is unwinding: receivers' destination buffers
            // may already be gone, so no new fulfill may start. Eager
            // buffers go back to the pool; a rendezvous handoff is simply
            // dropped (its sender unwinds via the abort, not via `done`).
            if let Payload::Eager(v) = payload {
                self.pool.release(src_rank, v);
            }
            return;
        }
        let t0 = self.trace.now_ns();
        let mut q = self.shards[dst][shard].lock();
        self.trace.emit_span(t0, src_rank as u16, |start, dur| {
            EventKind::LockWait {
                shard: shard as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        if let Some(pos) = q.posted.iter().position(|p| p.matches(ctx, src_rank, tag)) {
            let posted = q.posted.remove(pos);
            drop(q); // copy outside the shard lock
            self.fulfill(posted, payload, src_rank, tag, shard, dst);
        } else {
            q.unexpected.push(UnexpectedMsg {
                ctx,
                src: src_rank,
                tag,
                payload,
            });
        }
    }

    /// Post a receive into `(rank, shard)`; matches the oldest unexpected
    /// message first.
    pub(crate) fn post_recv(&self, rank: usize, shard: usize, posted: PostedRecv) -> RecvTicket {
        let ticket = RecvTicket {
            completion: Arc::clone(&posted.completion),
            info: Arc::clone(&posted.info),
        };
        self.touch();
        if self.aborted() {
            // Ticket never completes; the caller's wait unwinds via the
            // abort flag. Not enqueuing keeps the raw destination pointer
            // out of the fabric while ranks tear down.
            return ticket;
        }
        let t0 = self.trace.now_ns();
        let mut q = self.shards[rank][shard].lock();
        self.trace.emit_span(t0, rank as u16, |start, dur| {
            EventKind::LockWait {
                shard: shard as u16,
                wait_ns: dur,
            }
            .at(start)
        });
        if let Some(pos) = q
            .unexpected
            .iter()
            .position(|u| u.ctx == posted.ctx && posted.matches(u.ctx, u.src, u.tag))
        {
            let u = q.unexpected.remove(pos);
            drop(q);
            self.fulfill(posted, u.payload, u.src, u.tag, shard, rank);
        } else {
            q.posted.push(posted);
        }
        ticket
    }

    /// Complete a matched pair: copy the payload into the destination and
    /// fire the completions.
    fn fulfill(
        &self,
        posted: PostedRecv,
        payload: Payload,
        src: usize,
        tag: i64,
        shard: usize,
        dst_rank: usize,
    ) {
        let len = payload.len();
        let matched_eager = matches!(payload, Payload::Eager(_));
        if len > posted.dest_cap {
            // Contract violation, caught before any copy: fail the
            // universe instead of panicking the fulfilling thread (which
            // might be the *sender*, nowhere near the offending recv).
            // The posted completion stays unset — the receiver unwinds
            // via the abort.
            if let Payload::Eager(v) = payload {
                self.pool.release(src, v);
            }
            self.fail(PcommError::misuse(
                dst_rank,
                format!(
                    "message of {len} bytes overflows {}-byte receive buffer \
                     (src rank {src}, tag {tag})",
                    posted.dest_cap
                ),
            ));
            return;
        }
        match payload {
            Payload::RdvRemote { rdv_id, rts_ns, .. } => {
                // The data is still in the sending process: park the
                // posted buffer with the transport and answer the CTS;
                // completion (and the verify event) happens in
                // `complete_remote_rdv` when the bytes land.
                self.transport
                    .accept_remote_rdv(src, rdv_id, posted, shard, tag, rts_ns);
                return;
            }
            Payload::Eager(v) => {
                if len > 0 {
                    // SAFETY: invariant (2) — exclusive, live destination.
                    unsafe {
                        std::ptr::copy_nonoverlapping(v.as_ptr(), posted.dest_ptr, len);
                    }
                }
                // Recycle the payload buffer for the sender's next eager
                // message.
                self.pool.release(src, v);
            }
            Payload::Rdv(h) => {
                if len > 0 {
                    // SAFETY: invariants (1) and (2); source and
                    // destination are distinct allocations.
                    unsafe {
                        std::ptr::copy_nonoverlapping(h.src_ptr, posted.dest_ptr, len);
                    }
                }
                h.done.set();
                // RTS-to-completion span, attributed to the sender whose
                // buffer stayed pinned for its duration.
                self.trace.emit_span(h.rts_ns, src as u16, |start, dur| {
                    EventKind::RdvCopy {
                        shard: shard as u16,
                        bytes: len as u64,
                        wait_ns: dur,
                    }
                    .at(start)
                });
            }
        }
        if let Some((vreq, m)) = posted.verify_msg {
            let eager = matched_eager;
            // Emitted before the completion fires so the analyzer sees
            // the transfer's buffer write ordered before any parrived /
            // wait edge it enables.
            self.trace
                .emit_verify(dst_rank as u16, || EventKind::VerifyMsgRecv {
                    req: vreq,
                    msg: m,
                    tid: pcomm_trace::current_tid(),
                    eager,
                });
        }
        *posted.info.lock() = Some(MsgInfo { src, tag, len });
        self.matched.fetch_add(1, Ordering::Relaxed);
        posted.completion.set();
        self.touch();
    }

    /// Finish a parked remote rendezvous: the wire data arrived, copy it
    /// into the posted buffer and fire the completion (the wire analogue
    /// of the tail of [`Fabric::fulfill`]'s `Rdv` arm). Runs on the
    /// transport's reader thread.
    pub(crate) fn complete_remote_rdv(
        &self,
        posted: PostedRecv,
        src: usize,
        tag: i64,
        shard: usize,
        data: &[u8],
        rts_ns: Option<u64>,
    ) {
        if self.aborted() {
            // The receiver's destination buffer may already be gone; the
            // local waiters unwind via the abort flag.
            return;
        }
        let len = data.len();
        debug_assert!(len <= posted.dest_cap, "checked at RTS match time");
        if len > 0 {
            // SAFETY: invariant (2) — the posted destination is exclusive
            // and stays alive until `posted.completion` is set below.
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), posted.dest_ptr, len);
            }
        }
        self.complete_remote_rdv_in_place(posted, src, tag, shard, len, rts_ns);
    }

    /// Tail of [`Fabric::complete_remote_rdv`] for transports that have
    /// already landed the payload in the posted destination (the
    /// zero-copy `RdvData` socket fast path and the ipc fabric): emit
    /// the spans/verify events, publish the envelope, fire the
    /// completion. The caller must have checked the abort flag before
    /// writing the destination.
    pub(crate) fn complete_remote_rdv_in_place(
        &self,
        posted: PostedRecv,
        src: usize,
        tag: i64,
        shard: usize,
        len: usize,
        rts_ns: Option<u64>,
    ) {
        debug_assert!(len <= posted.dest_cap, "checked at RTS match time");
        self.trace.emit_span(rts_ns, src as u16, |start, dur| {
            EventKind::RdvCopy {
                shard: shard as u16,
                bytes: len as u64,
                wait_ns: dur,
            }
            .at(start)
        });
        if let Some((vreq, m)) = posted.verify_msg {
            self.trace
                .emit_verify(self.transport.local_rank() as u16, || {
                    EventKind::VerifyMsgRecv {
                        req: vreq,
                        msg: m,
                        tid: pcomm_trace::current_tid(),
                        eager: false,
                    }
                });
        }
        *posted.info.lock() = Some(MsgInfo { src, tag, len });
        self.matched.fetch_add(1, Ordering::Relaxed);
        posted.completion.set();
        self.touch();
    }

    /// Complete one message of an incoming partitioned stream: every
    /// byte of its range has been committed by `PartData` frames (the
    /// wire-streaming analogue of the tail of [`Fabric::fulfill`]).
    /// Runs on a transport reader thread — possibly a different lane
    /// for every range of the message.
    pub(crate) fn complete_stream_msg(
        &self,
        src: usize,
        tag: i64,
        len: usize,
        info: &Mutex<Option<MsgInfo>>,
        completion: &Completion,
        verify_msg: Option<(u16, u16)>,
    ) {
        if let Some((vreq, m)) = verify_msg {
            // Before the completion fires, as in every other recv path,
            // so the analyzer sees the buffer write ordered before any
            // parrived / wait edge it enables.
            self.trace
                .emit_verify(self.transport.local_rank() as u16, || {
                    EventKind::VerifyMsgRecv {
                        req: vreq,
                        msg: m,
                        tid: pcomm_trace::current_tid(),
                        eager: false,
                    }
                });
        }
        *info.lock() = Some(MsgInfo { src, tag, len });
        self.matched.fetch_add(1, Ordering::Relaxed);
        completion.set();
        self.touch();
    }

    /// Wire ingress, eager: copy the frame payload into a pooled buffer
    /// and feed it to the ordinary matching path. Runs on the transport's
    /// reader thread.
    pub(crate) fn deliver_wire_eager(
        &self,
        src: usize,
        shard: usize,
        ctx: u64,
        tag: i64,
        data: &[u8],
    ) {
        let (mut buf, hit) = self.pool.acquire(src);
        buf.extend_from_slice(data);
        hotpath::count_pool(hit);
        let dst = self.transport.local_rank();
        self.deliver(dst, shard, ctx, src, tag, Payload::Eager(buf));
    }

    /// Wire ingress, rendezvous RTS: enters matching as a
    /// [`Payload::RdvRemote`]. Runs on the transport's reader thread.
    pub(crate) fn deliver_wire_rts(
        &self,
        src: usize,
        shard: usize,
        ctx: u64,
        tag: i64,
        len: usize,
        rdv_id: u64,
    ) {
        let dst = self.transport.local_rank();
        let rts_ns = self.trace.now_ns();
        self.deliver(
            dst,
            shard,
            ctx,
            src,
            tag,
            Payload::RdvRemote {
                len,
                rdv_id,
                rts_ns,
            },
        );
    }

    /// Wire ingress, one-sided put into a locally registered window.
    /// Runs on the transport's reader thread.
    pub(crate) fn apply_remote_put(&self, src: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        let mem = self.win_registry.lock().get(&win_ctx).cloned();
        match mem {
            Some(mem) if offset + data.len() <= mem.len() => {
                mem.apply_put(offset, data);
                self.touch();
            }
            Some(mem) => self.fail(PcommError::misuse(
                src,
                format!(
                    "remote put of {} bytes at offset {offset} overflows {}-byte window \
                     (ctx {win_ctx})",
                    data.len(),
                    mem.len()
                ),
            )),
            None => self.fail(PcommError::misuse(
                src,
                format!("remote put targets unregistered window ctx {win_ctx}"),
            )),
        }
    }

    /// Wire ingress, one-sided get from a locally registered window.
    /// `None` when the window is unknown or the range is out of bounds.
    pub(crate) fn read_win(&self, win_ctx: u64, offset: usize, len: usize) -> Option<Vec<u8>> {
        let mem = self.win_registry.lock().get(&win_ctx).cloned()?;
        if offset + len > mem.len() {
            return None;
        }
        Some(mem.read_range(offset, len))
    }

    /// One-sided put targeting a remote-hosted rank (multiprocess runs).
    pub(crate) fn remote_put(&self, target: usize, win_ctx: u64, offset: usize, data: &[u8]) {
        self.transport.put(target, win_ctx, offset, data);
        self.touch();
    }

    /// Blocking one-sided get from a remote-hosted rank.
    pub(crate) fn remote_get(
        &self,
        rank: usize,
        target: usize,
        win_ctx: u64,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        self.transport.get(self, rank, target, win_ctx, offset, len)
    }

    /// Announce a locally registered window to its remote origin.
    pub(crate) fn remote_announce_win(&self, origin: usize, win_ctx: u64, len: usize) {
        self.transport.announce_win(origin, win_ctx, len);
        self.touch();
    }

    /// Block until the remote target announces the window; returns its
    /// length.
    pub(crate) fn remote_wait_win_announce(&self, rank: usize, win_ctx: u64) -> usize {
        self.transport.wait_win_announce(self, rank, win_ctx)
    }

    /// Snapshot the fabric's blocked-wait and match-queue state into a
    /// [`StallReport`] (called by the watchdog supervisor when activity
    /// has been quiet past the deadline).
    pub(crate) fn stall_report(&self, watchdog_ms: u64, quiet_ms: u64) -> StallReport {
        let mut blocked: Vec<BlockedWait> = self.wait_registry.lock().values().cloned().collect();
        blocked.sort_by(|a, b| (a.rank, &a.what).cmp(&(b.rank, &b.what)));
        let finished_ranks = self
            .finished
            .iter()
            .enumerate()
            .filter(|(_, f)| f.load(Ordering::Acquire))
            .map(|(i, _)| i)
            .collect();
        let mut unmatched_posted = Vec::new();
        let mut unmatched_unexpected = Vec::new();
        for (rank, shards) in self.shards.iter().enumerate() {
            for (shard, q) in shards.iter().enumerate() {
                let q = q.lock();
                for p in &q.posted {
                    unmatched_posted.push(QueueEntry {
                        rank,
                        shard,
                        ctx: p.ctx,
                        src: p.src,
                        tag: p.tag,
                        bytes: p.dest_cap,
                    });
                }
                for u in &q.unexpected {
                    unmatched_unexpected.push(QueueEntry {
                        rank,
                        shard,
                        ctx: u.ctx,
                        src: Some(u.src),
                        tag: Some(u.tag),
                        bytes: u.payload.len(),
                    });
                }
            }
        }
        StallReport {
            watchdog_ms,
            quiet_ms,
            finished_ranks,
            blocked,
            unmatched_posted,
            unmatched_unexpected,
            matched: self.matched_count(),
            peers: self.transport.peer_states(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(
        fabric: &Fabric,
        rank: usize,
        shard: usize,
        ctx: u64,
        src: Option<usize>,
        tag: Option<i64>,
        buf: &mut [u8],
    ) -> RecvTicket {
        fabric.post_recv(
            rank,
            shard,
            PostedRecv {
                ctx,
                src,
                tag,
                dest_ptr: buf.as_mut_ptr(),
                dest_cap: buf.len(),
                info: Arc::new(Mutex::new(None)),
                completion: Completion::new(),
                verify_msg: None,
            },
        )
    }

    #[test]
    fn eager_send_to_posted_recv() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 16];
        let ticket = post(&f, 1, 0, 0, Some(0), Some(7), &mut buf);
        let st = f.send_raw(1, 0, 0, 0, 7, &[1, 2, 3]);
        assert!(st.test(), "eager completes locally");
        let info = ticket.wait();
        assert_eq!(
            info,
            MsgInfo {
                src: 0,
                tag: 7,
                len: 3
            }
        );
        assert_eq!(&buf[..3], &[1, 2, 3]);
    }

    #[test]
    fn eager_unexpected_then_post() {
        let f = Fabric::new(2, 1, 1024);
        f.send_raw(1, 0, 0, 0, 9, &[42; 8]);
        let mut buf = vec![0u8; 8];
        let ticket = post(&f, 1, 0, 0, None, Some(9), &mut buf);
        assert!(ticket.test());
        assert_eq!(buf, vec![42; 8]);
    }

    #[test]
    fn rendezvous_send_blocks_until_recv() {
        let f = Fabric::new(2, 1, 64);
        let data = vec![7u8; 1000]; // > eager_max
        let ticket = f.send_raw(1, 0, 0, 0, 1, &data);
        assert!(!ticket.test(), "rendezvous must not complete locally");
        let mut buf = vec![0u8; 1000];
        let rt = post(&f, 1, 0, 0, Some(0), Some(1), &mut buf);
        assert!(ticket.test(), "receiver copy completes the send");
        assert_eq!(rt.wait().len, 1000);
        assert_eq!(buf, data);
    }

    #[test]
    fn rendezvous_preposted_recv() {
        let f = Fabric::new(2, 1, 64);
        let mut buf = vec![0u8; 256];
        let rt = post(&f, 1, 0, 0, Some(0), Some(2), &mut buf);
        let data: Vec<u8> = (0..=255).collect();
        let st = f.send_raw(1, 0, 0, 0, 2, &data);
        st.wait();
        rt.wait();
        assert_eq!(buf, data);
    }

    #[test]
    fn context_and_tag_isolation() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 4];
        let rt = post(&f, 1, 0, 5, Some(0), Some(1), &mut buf);
        f.send_raw(1, 0, 6, 0, 1, &[1]); // wrong ctx
        f.send_raw(1, 0, 5, 0, 2, &[2]); // wrong tag
        assert!(!rt.test());
        f.send_raw(1, 0, 5, 0, 1, &[3]);
        assert!(rt.test());
        assert_eq!(buf[0], 3);
    }

    #[test]
    fn cross_thread_eager_roundtrip() {
        let f = Fabric::new(2, 2, 256);
        let f2 = Arc::clone(&f);
        let sender = std::thread::spawn(move || {
            for i in 0..100u8 {
                f2.send_raw(1, 1, 0, 0, i as i64, &[i]).wait();
            }
        });
        let mut got = Vec::new();
        for i in 0..100u8 {
            let mut b = [0u8; 1];
            let rt = post(&f, 1, 1, 0, Some(0), Some(i as i64), &mut b);
            rt.wait();
            got.push(b[0]);
        }
        sender.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u8>>());
    }

    #[test]
    fn cross_thread_rendezvous_roundtrip() {
        let f = Fabric::new(2, 1, 16);
        let f2 = Arc::clone(&f);
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let sender = std::thread::spawn(move || {
            f2.send_raw(1, 0, 0, 0, 3, &payload).wait();
        });
        let mut buf = vec![0u8; 5000];
        let rt = post(&f, 1, 0, 0, Some(0), Some(3), &mut buf);
        rt.wait();
        sender.join().unwrap();
        assert_eq!(buf, expect);
    }

    #[test]
    fn ctx_derivation_symmetric() {
        let f = Fabric::new(2, 4, 64);
        let a = f.alloc_child_ctx(0, 0, CtxKind::Dup);
        let b = f.alloc_child_ctx(1, 0, CtxKind::Dup);
        assert_eq!(a, b);
        let a2 = f.alloc_child_ctx(0, 0, CtxKind::Dup);
        assert_ne!(a, a2);
        // Shards cycle with consecutive contexts.
        let shards: Vec<usize> = (0..8)
            .map(|_| f.shard_of_ctx(f.alloc_child_ctx(0, 0, CtxKind::Dup)))
            .collect();
        let distinct: std::collections::HashSet<_> = shards.iter().collect();
        assert_eq!(distinct.len(), 4, "dup contexts should cover all shards");
    }

    #[test]
    fn oversized_message_fails_universe_not_thread() {
        let f = Fabric::new(2, 1, 1024);
        let mut buf = vec![0u8; 2];
        let rt = post(&f, 1, 0, 0, None, None, &mut buf);
        f.send_raw(1, 0, 0, 0, 5, &[1, 2, 3]);
        assert!(f.aborted(), "oversized message must abort the universe");
        assert!(!rt.test(), "receive must not complete");
        match f.take_failure() {
            Some(PcommError::Misuse { rank, detail }) => {
                assert_eq!(rank, Some(1), "misuse attributed to the receiver");
                assert!(detail.contains("overflows"), "{detail}");
            }
            other => panic!("expected Misuse, got {other:?}"),
        }
    }

    #[test]
    fn chaos_drop_with_retries_still_delivers() {
        // drop_p = 1 forces a Drop on every decision *below* the retry
        // threshold... that would never deliver. Instead use a plan whose
        // drop probability is high but the retry budget is large enough
        // that some attempt decides differently.
        let plan = FaultPlan::seeded(7).drops(0.5).retries(64);
        let f = Fabric::new_configured(
            2,
            1,
            1024,
            Trace::disabled(),
            Some(plan),
            Arc::new(crate::transport::SharedMemTransport),
        );
        let mut bufs = [[0u8; 1]; 32];
        let tickets: Vec<RecvTicket> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| post(&f, 1, 0, 0, Some(0), Some(i as i64), b))
            .collect();
        for i in 0..32 {
            f.send_raw(1, 0, 0, 0, i as i64, &[i as u8]);
        }
        assert!(
            !f.aborted(),
            "retry budget must absorb 0.5-probability drops"
        );
        for (i, t) in tickets.iter().enumerate() {
            t.wait();
            assert_eq!(bufs[i], [i as u8]);
        }
    }

    #[test]
    fn chaos_certain_drop_without_retries_loses_message() {
        let plan = FaultPlan::seeded(1).drops(1.0).retries(0);
        let f = Fabric::new_configured(
            2,
            1,
            64,
            Trace::disabled(),
            Some(plan),
            Arc::new(crate::transport::SharedMemTransport),
        );
        let mut buf = [0u8; 1];
        let rt = post(&f, 1, 0, 0, Some(0), Some(3), &mut buf);
        f.send_raw(1, 0, 0, 0, 3, &[9]);
        assert!(f.aborted());
        assert!(!rt.test());
        match f.take_failure() {
            Some(PcommError::MessageLost {
                src,
                dst,
                tag,
                attempts,
            }) => {
                assert_eq!((src, dst, tag, attempts), (0, 1, 3, 1));
            }
            other => panic!("expected MessageLost, got {other:?}"),
        }
    }

    #[test]
    fn chaos_reorder_holds_then_flushes() {
        let plan = FaultPlan::seeded(11).reorders(1.0);
        let f = Fabric::new_configured(
            2,
            1,
            1024,
            Trace::disabled(),
            Some(plan),
            Arc::new(crate::transport::SharedMemTransport),
        );
        let mut buf = [0u8; 1];
        let rt = post(&f, 1, 0, 0, Some(0), Some(1), &mut buf);
        f.send_raw(1, 0, 0, 0, 1, &[7]);
        assert!(!rt.test(), "reordered message must be held back");
        assert_eq!(f.flush_held(), 1);
        rt.wait();
        assert_eq!(buf, [7]);
    }

    #[test]
    fn chaos_channel_fifo_survives_reorder() {
        // Two messages on the SAME channel under certain-reorder: the
        // second send must first flush the held first message, so payload
        // order (and therefore data) is preserved.
        let plan = FaultPlan::seeded(3).reorders(1.0);
        let f = Fabric::new_configured(
            2,
            1,
            1024,
            Trace::disabled(),
            Some(plan),
            Arc::new(crate::transport::SharedMemTransport),
        );
        let mut a = [0u8; 1];
        let mut b = [0u8; 1];
        let ra = post(&f, 1, 0, 0, Some(0), Some(4), &mut a);
        let rb = post(&f, 1, 0, 0, Some(0), Some(4), &mut b);
        f.send_raw(1, 0, 0, 0, 4, &[1]);
        f.send_raw(1, 0, 0, 0, 4, &[2]);
        f.flush_held();
        ra.wait();
        rb.wait();
        assert_eq!((a, b), ([1], [2]), "per-channel FIFO must hold");
    }

    #[test]
    fn chaos_decisions_are_interleaving_independent() {
        // Same plan, same channel+seq: the decision must not depend on
        // what other channels did in between.
        let plan = FaultPlan::seeded(99).drops(0.3).delays(0.3, 50);
        let a: Vec<FaultAction> = (0..20).map(|s| plan.decide(0, 1, 0, 7, s, 0)).collect();
        let b: Vec<FaultAction> = (0..20).map(|s| plan.decide(0, 1, 0, 7, s, 0)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn eager_pool_recycles_buffers() {
        let f = Fabric::new(2, 1, 1024);
        let before = crate::hotpath::pool_stats();
        // First send allocates; once fulfilled, the buffer returns to
        // rank 0's stripe and the following sends reuse it.
        for i in 0..5u8 {
            let mut buf = [0u8; 4];
            let rt = post(&f, 1, 0, 0, Some(0), Some(i as i64), &mut buf);
            f.send_raw(1, 0, 0, 0, i as i64, &[i; 4]);
            rt.wait();
            assert_eq!(buf, [i; 4]);
        }
        let after = crate::hotpath::pool_stats();
        // Sends 2..5 ran strictly after send 1's buffer was released, so
        // at least 4 of the 5 acquisitions were pool hits (other tests in
        // the process can only add hits, never subtract).
        assert!(
            after.hits >= before.hits + 4,
            "expected >=4 pool hits, got {} -> {}",
            before.hits,
            after.hits
        );
    }

    #[test]
    fn recycled_buffer_carries_no_stale_bytes() {
        let f = Fabric::new(2, 1, 1024);
        // Long message first, then a short one: the short message must
        // arrive with exactly its own bytes even though it likely reuses
        // the long message's (larger-capacity) buffer.
        let mut big = [0u8; 16];
        let rt = post(&f, 1, 0, 0, Some(0), Some(1), &mut big);
        f.send_raw(1, 0, 0, 0, 1, &[0xAA; 16]);
        rt.wait();
        let mut small = [7u8; 16];
        let rt = post(&f, 1, 0, 0, Some(0), Some(2), &mut small);
        f.send_raw(1, 0, 0, 0, 2, &[0xBB; 3]);
        let info = rt.wait();
        assert_eq!(info.len, 3);
        assert_eq!(&small[..3], &[0xBB; 3]);
        assert_eq!(&small[3..], &[7u8; 13], "bytes past len untouched");
    }

    #[test]
    fn send_raw_signal_eager_sets_immediately() {
        let f = Fabric::new(2, 1, 1024);
        let done = Completion::new();
        f.send_raw_signal(1, 0, 0, 0, 4, &[9; 8], &done);
        assert!(done.is_set(), "eager signal-send completes locally");
        let mut buf = [0u8; 8];
        let rt = post(&f, 1, 0, 0, Some(0), Some(4), &mut buf);
        rt.wait();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn send_raw_signal_rdv_sets_on_copy() {
        let f = Fabric::new(2, 1, 16);
        let data = vec![5u8; 500];
        let done = Completion::new();
        f.send_raw_signal(1, 0, 0, 0, 4, &data, &done);
        assert!(!done.is_set(), "rendezvous completes only on copy");
        let mut buf = vec![0u8; 500];
        let rt = post(&f, 1, 0, 0, Some(0), Some(4), &mut buf);
        rt.wait();
        assert!(done.is_set());
        assert_eq!(buf, data);
    }

    #[test]
    fn pool_stripe_overflow_drops_excess() {
        // More unmatched releases than slots: fill the stripe via many
        // matched sends in flight, then keep going — must not leak or
        // crash, and data stays correct.
        let f = Fabric::new(2, 1, 1024);
        let mut bufs = [[0u8; 2]; 2 * POOL_SLOTS];
        let tickets: Vec<RecvTicket> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, b)| post(&f, 1, 0, 0, Some(0), Some(i as i64), b))
            .collect();
        for i in 0..2 * POOL_SLOTS {
            f.send_raw(1, 0, 0, 0, i as i64, &[i as u8; 2]);
        }
        for (i, t) in tickets.iter().enumerate() {
            t.wait();
            assert_eq!(bufs[i], [i as u8; 2]);
        }
    }

    #[test]
    fn matched_counter_increments() {
        let f = Fabric::new(2, 1, 1024);
        assert_eq!(f.matched_count(), 0);
        let mut buf = [0u8; 1];
        let _rt = post(&f, 1, 0, 0, None, None, &mut buf);
        f.send_raw(1, 0, 0, 0, 0, &[1]);
        assert_eq!(f.matched_count(), 1);
    }
}
