//! Hot-path observability counters.
//!
//! The atomics-first runtime makes two promises on its probe paths:
//! completed-operation probes (`Completion::is_set`, `parrived`) are a
//! single atomic load, and eager sends recycle pooled buffers instead of
//! allocating. This module makes both promises *testable*:
//!
//! * **Per-thread counters** ([`thread_stats`]) — every acquisition of a
//!   runtime mutex ([`crate::sync::Mutex`]) and every completion
//!   fast-probe / slow-wait is counted in a thread-local `Cell` (a plain
//!   non-atomic increment, ~1 ns). A test can assert "this probe loop
//!   acquired zero locks" without interference from concurrently running
//!   tests, because only the calling thread's counters move.
//! * **Process-wide pool counters** ([`pool_stats`]) — eager-buffer pool
//!   hits and misses, aggregated across all threads (monotonic, so tests
//!   assert on deltas being at least the expected count).
//!
//! [`Universe::run`](crate::Universe::run) additionally emits a
//! `ProbeStats` trace event per rank at rank exit when tracing is
//! enabled, carrying that rank thread's fast/slow probe deltas.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    static MUTEX_LOCKS: Cell<u64> = const { Cell::new(0) };
    static FAST_PROBES: Cell<u64> = const { Cell::new(0) };
    static SLOW_WAITS: Cell<u64> = const { Cell::new(0) };
}

static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the calling thread's hot-path counters.
///
/// All counters are monotonic; measure a code region by taking the
/// difference of two snapshots on the same thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadHotpathStats {
    /// Acquisitions of runtime mutexes (`crate::sync::Mutex::lock`) by
    /// this thread. A lock-free probe path leaves this unchanged.
    pub mutex_locks: u64,
    /// `Completion` probes answered by the single-atomic-load fast path
    /// (`is_set`, and the immediate-return path of `wait`).
    pub completion_fast_probes: u64,
    /// Times this thread fell through to the spin-then-park slow path of
    /// `Completion::wait`.
    pub completion_slow_waits: u64,
}

/// This thread's counters so far.
pub fn thread_stats() -> ThreadHotpathStats {
    ThreadHotpathStats {
        mutex_locks: MUTEX_LOCKS.with(Cell::get),
        completion_fast_probes: FAST_PROBES.with(Cell::get),
        completion_slow_waits: SLOW_WAITS.with(Cell::get),
    }
}

/// Process-wide eager-buffer pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Eager sends served from a recycled buffer.
    pub hits: u64,
    /// Eager sends that had to allocate a fresh buffer.
    pub misses: u64,
}

/// Pool hits/misses since process start (all threads).
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: POOL_HITS.load(Ordering::Relaxed),
        misses: POOL_MISSES.load(Ordering::Relaxed),
    }
}

#[inline]
pub(crate) fn count_mutex_lock() {
    MUTEX_LOCKS.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_fast_probe() {
    FAST_PROBES.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_slow_wait() {
    SLOW_WAITS.with(|c| c.set(c.get() + 1));
}

#[inline]
pub(crate) fn count_pool(hit: bool) {
    if hit {
        POOL_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counters_are_thread_local() {
        let before = thread_stats();
        count_mutex_lock();
        count_fast_probe();
        count_fast_probe();
        let t = std::thread::spawn(move || {
            // A fresh thread starts from zero regardless of this thread.
            count_slow_wait();
            thread_stats().completion_slow_waits
        });
        assert_eq!(t.join().unwrap(), 1);
        let after = thread_stats();
        assert_eq!(after.mutex_locks - before.mutex_locks, 1);
        assert_eq!(
            after.completion_fast_probes - before.completion_fast_probes,
            2
        );
        // The spawned thread's slow wait did not land on this thread.
        assert_eq!(after.completion_slow_waits, before.completion_slow_waits);
    }

    #[test]
    fn pool_counters_are_monotonic() {
        let before = pool_stats();
        count_pool(true);
        count_pool(false);
        let after = pool_stats();
        assert!(after.hits > before.hits);
        assert!(after.misses > before.misses);
    }
}
