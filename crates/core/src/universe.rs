//! The [`Universe`]: spawns rank threads over a shared fabric.

use std::sync::Arc;

use pcomm_trace::{Trace, TraceData};

use crate::comm::Comm;
use crate::fabric::Fabric;

/// Default eager/rendezvous switch: MPICH's shared-memory eager limit is
/// of this order; messages above it use the zero-copy handoff path.
pub const DEFAULT_EAGER_MAX: usize = 64 * 1024;

/// Default per-thread trace ring capacity (events retained per thread).
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Builder/runner for a multi-rank in-process job.
#[derive(Debug, Clone)]
pub struct Universe {
    n_ranks: usize,
    n_shards: usize,
    eager_max: usize,
    trace: Trace,
}

impl Universe {
    /// A universe of `n_ranks` ranks with one match shard (VCI) per rank.
    pub fn new(n_ranks: usize) -> Universe {
        assert!(n_ranks >= 1, "need at least one rank");
        Universe {
            n_ranks,
            n_shards: 1,
            eager_max: DEFAULT_EAGER_MAX,
            trace: Trace::disabled(),
        }
    }

    /// Set the number of match shards per rank (the `MPIR_CVAR_NUM_VCIS`
    /// analogue).
    pub fn with_shards(mut self, n_shards: usize) -> Universe {
        assert!(n_shards >= 1, "need at least one shard");
        self.n_shards = n_shards;
        self
    }

    /// Set the eager/rendezvous threshold in bytes.
    pub fn with_eager_max(mut self, eager_max: usize) -> Universe {
        self.eager_max = eager_max;
        self
    }

    /// Attach a trace sink; every fabric and partitioned-communication
    /// event of the run is recorded into it. Use [`Universe::run_traced`]
    /// to get the merged trace back directly.
    pub fn with_trace(mut self, trace: Trace) -> Universe {
        self.trace = trace;
        self
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Run `f` once per rank, each on its own OS thread, and collect the
    /// per-rank results in rank order. Panics in any rank propagate.
    ///
    /// If `PCOMM_TRACE=<path>` is set in the environment (and no trace
    /// was attached via [`Universe::with_trace`]), the run is traced and
    /// a Chrome trace-event JSON is written to `<path>` at teardown;
    /// `PCOMM_TRACE_REPORT=<path>` additionally writes the plain-text
    /// summary.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let env_json = std::env::var("PCOMM_TRACE").ok().filter(|p| !p.is_empty());
        let env_report = std::env::var("PCOMM_TRACE_REPORT")
            .ok()
            .filter(|p| !p.is_empty());
        if self.trace.is_enabled() || (env_json.is_none() && env_report.is_none()) {
            return self.run_on(self.trace.clone(), &f);
        }
        let trace = Trace::ring(DEFAULT_TRACE_CAP);
        let out = self.run_on(trace.clone(), &f);
        let data = trace.snapshot().expect("trace was enabled");
        if let Some(path) = env_json {
            let json = pcomm_trace::chrome_trace_json(&data.events, data.dropped);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("pcomm: failed to write PCOMM_TRACE={path}: {e}");
            }
        }
        if let Some(path) = env_report {
            let report = pcomm_trace::summary_report(&data.events, data.dropped);
            if let Err(e) = std::fs::write(&path, report) {
                eprintln!("pcomm: failed to write PCOMM_TRACE_REPORT={path}: {e}");
            }
        }
        out
    }

    /// Run with the attached trace (see [`Universe::with_trace`]) and
    /// return the per-rank results together with the merged trace data.
    pub fn run_traced<T, F>(&self, f: F) -> (Vec<T>, TraceData)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let trace = if self.trace.is_enabled() {
            self.trace.clone()
        } else {
            Trace::ring(DEFAULT_TRACE_CAP)
        };
        let out = self.run_on(trace.clone(), &f);
        let data = trace.snapshot().expect("trace is enabled");
        (out, data)
    }

    fn run_on<T, F>(&self, trace: Trace, f: &F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let fabric = Fabric::new_traced(self.n_ranks, self.n_shards, self.eager_max, trace);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.n_ranks)
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    scope.spawn(move || {
                        let traced = fabric.trace().is_enabled();
                        let before = crate::hotpath::thread_stats();
                        let out = f(Comm::world(Arc::clone(&fabric), rank));
                        if traced {
                            // The rank thread's completion-probe tally for
                            // this run: how often probes stayed on the
                            // single-load fast path vs fell back to
                            // spin-then-park.
                            let after = crate::hotpath::thread_stats();
                            fabric.trace().emit(rank as u16, || {
                                pcomm_trace::EventKind::ProbeStats {
                                    fast_probes: after.completion_fast_probes
                                        - before.completion_fast_probes,
                                    slow_waits: after.completion_slow_waits
                                        - before.completion_slow_waits,
                                }
                            });
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_collects_results_in_rank_order() {
        let out = Universe::new(4).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn comm_world_properties() {
        let sizes = Universe::new(3).run(|comm| (comm.rank(), comm.size()));
        assert_eq!(sizes, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        Universe::new(4).run(|comm| {
            arrived.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(arrived.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn run_traced_captures_fabric_events() {
        let (out, data) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1, 2, 3]);
            } else {
                let mut b = [0u8; 3];
                comm.recv_into(Some(0), Some(1), &mut b);
            }
            comm.rank()
        });
        assert_eq!(out, vec![0, 1]);
        assert!(
            data.events
                .iter()
                .any(|e| matches!(e.kind, pcomm_trace::EventKind::EagerSend { .. })),
            "expected an eager send in the trace, got {} events",
            data.events.len()
        );
    }

    #[test]
    fn traced_run_emits_per_rank_probe_stats() {
        let (_, data) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1]);
            } else {
                let mut b = [0u8; 1];
                comm.recv_into(Some(0), Some(1), &mut b);
            }
        });
        let stats: Vec<u16> = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, pcomm_trace::EventKind::ProbeStats { .. }))
            .map(|e| e.rank)
            .collect();
        assert_eq!(stats.len(), 2, "one ProbeStats event per rank");
        assert!(stats.contains(&0) && stats.contains(&1));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::new(0);
    }
}
