//! The [`Universe`]: spawns rank threads over a shared fabric.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pcomm_trace::{EventKind, FaultPlan, Trace, TraceData};

use crate::comm::Comm;
use crate::error::{panic_message, PcommError, RankAborted};
use crate::fabric::Fabric;
use crate::sync::Completion;

/// Default eager/rendezvous switch: MPICH's shared-memory eager limit is
/// of this order; messages above it use the zero-copy handoff path.
pub const DEFAULT_EAGER_MAX: usize = 64 * 1024;

/// Default per-thread trace ring capacity (events retained per thread).
pub const DEFAULT_TRACE_CAP: usize = 1 << 16;

/// Watchdog deadline used automatically when a fault plan is configured
/// but no explicit watchdog was requested: a chaos run must never hang.
pub const DEFAULT_CHAOS_WATCHDOG_MS: u64 = 5000;

/// Builder/runner for a multi-rank in-process job.
#[derive(Debug, Clone)]
pub struct Universe {
    n_ranks: usize,
    n_shards: usize,
    eager_max: usize,
    trace: Trace,
    fault_plan: Option<FaultPlan>,
    watchdog_ms: Option<u64>,
}

impl Universe {
    /// A universe of `n_ranks` ranks with one match shard (VCI) per rank.
    pub fn new(n_ranks: usize) -> Universe {
        assert!(n_ranks >= 1, "need at least one rank");
        Universe {
            n_ranks,
            n_shards: 1,
            eager_max: DEFAULT_EAGER_MAX,
            trace: Trace::disabled(),
            fault_plan: None,
            watchdog_ms: None,
        }
    }

    /// Set the number of match shards per rank (the `MPIR_CVAR_NUM_VCIS`
    /// analogue).
    pub fn with_shards(mut self, n_shards: usize) -> Universe {
        assert!(n_shards >= 1, "need at least one shard");
        self.n_shards = n_shards;
        self
    }

    /// Set the eager/rendezvous threshold in bytes.
    pub fn with_eager_max(mut self, eager_max: usize) -> Universe {
        self.eager_max = eager_max;
        self
    }

    /// Attach a trace sink; every fabric and partitioned-communication
    /// event of the run is recorded into it. Use [`Universe::run_traced`]
    /// to get the merged trace back directly.
    pub fn with_trace(mut self, trace: Trace) -> Universe {
        self.trace = trace;
        self
    }

    /// Attach a fault-injection plan: the fabric consults it at every
    /// send/deliver point and injects seeded, reproducible drops, delays,
    /// duplicates, reorders, and `pready` jitter. A watchdog (default
    /// [`DEFAULT_CHAOS_WATCHDOG_MS`]) is armed automatically so an
    /// injected fault can never hang the run.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Universe {
        self.fault_plan = Some(plan);
        self
    }

    /// Arm the hang watchdog: if the fabric makes no progress for `ms`
    /// milliseconds while some rank is blocked in the runtime, the run
    /// fails with [`PcommError::Stall`] carrying a structured
    /// [`StallReport`](crate::StallReport) instead of hanging forever.
    pub fn with_watchdog_ms(mut self, ms: u64) -> Universe {
        assert!(ms > 0, "watchdog deadline must be positive");
        self.watchdog_ms = Some(ms);
        self
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Run `f` once per rank, each on its own OS thread, and collect the
    /// per-rank results in rank order.
    ///
    /// Failure is data, not a hang or an opaque panic:
    ///
    /// * a rank panic aborts the survivors and returns
    ///   [`PcommError::PeerPanicked`];
    /// * a watchdog-detected hang returns [`PcommError::Stall`] with a
    ///   structured report;
    /// * chaos-injected unrecoverable faults return
    ///   [`PcommError::MessageLost`];
    /// * caught API misuse returns [`PcommError::Misuse`].
    ///
    /// Environment knobs (each ignored when the corresponding builder was
    /// used): `PCOMM_TRACE=<path>` / `PCOMM_TRACE_REPORT=<path>` write a
    /// Chrome trace / text summary at teardown; `PCOMM_FAULTS=<spec>`
    /// attaches a fault plan (see [`FaultPlan::parse`]);
    /// `PCOMM_WATCHDOG_MS=<ms>` arms the watchdog; `PCOMM_VERIFY=1` runs
    /// the [`pcomm_verify`] analyses (races, deadlock verdicts, protocol
    /// lints) at teardown — findings are printed to stderr and turn an
    /// otherwise successful run into [`PcommError::Misuse`], so a CI job
    /// fails loudly.
    /// When the `PCOMM_NET_*` environment says this process is rank *k*
    /// of a multiprocess launch (see `pcomm-launch` and
    /// [`Universe::run_multiprocess`]) and the rank counts agree, the
    /// universe joins the socket mesh and runs only rank *k* here — the
    /// closure, strategies and chaos plans are unchanged. The returned
    /// vector then repeats the local rank's result (hence `T: Clone`);
    /// `PCOMM_TRACE` / `PCOMM_TRACE_REPORT` paths get a `.rank<k>`
    /// suffix so the processes do not clobber each other's files.
    pub fn run<T, F>(&self, f: F) -> Result<Vec<T>, PcommError>
    where
        T: Send + Clone,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let mut u = self.clone();
        if u.fault_plan.is_none() {
            if let Ok(spec) = std::env::var("PCOMM_FAULTS") {
                if !spec.trim().is_empty() {
                    match FaultPlan::parse(&spec) {
                        Ok(plan) => u.fault_plan = Some(plan),
                        Err(e) => eprintln!("pcomm: ignoring invalid PCOMM_FAULTS: {e}"),
                    }
                }
            }
        }
        if u.watchdog_ms.is_none() {
            if let Ok(v) = std::env::var("PCOMM_WATCHDOG_MS") {
                if !v.trim().is_empty() {
                    match v.trim().parse::<u64>() {
                        Ok(ms) if ms > 0 => u.watchdog_ms = Some(ms),
                        _ => eprintln!("pcomm: ignoring invalid PCOMM_WATCHDOG_MS=`{v}`"),
                    }
                }
            }
        }
        // Multiprocess launch detection. Builder-attached traces keep
        // the run in-process (their sink belongs to this process and
        // expects every rank's events); the env-driven trace/verify
        // paths below work per process instead.
        let wire_env = if u.trace.is_enabled() {
            None
        } else {
            match pcomm_net::MultiprocEnv::from_env() {
                Some(env) if env.n_ranks != u.n_ranks => {
                    eprintln!(
                        "pcomm: PCOMM_NET_RANKS={} does not match this universe's {} ranks; \
                         running in-process",
                        env.n_ranks, u.n_ranks
                    );
                    None
                }
                other => other,
            }
        };
        let rank_suffix = |p: String| match &wire_env {
            Some(env) => format!("{p}.rank{}", env.rank),
            None => p,
        };
        let env_json = std::env::var("PCOMM_TRACE")
            .ok()
            .filter(|p| !p.is_empty())
            .map(&rank_suffix);
        let env_report = std::env::var("PCOMM_TRACE_REPORT")
            .ok()
            .filter(|p| !p.is_empty())
            .map(&rank_suffix);
        let env_verify = std::env::var("PCOMM_VERIFY")
            .map(|v| {
                let v = v.trim().to_string();
                !v.is_empty() && v != "0"
            })
            .unwrap_or(false);
        let engine = |trace: Trace| match &wire_env {
            Some(env) => u.run_wire(env, trace, &f),
            None => u.run_on(trace, &f),
        };
        if u.trace.is_enabled() || (env_json.is_none() && env_report.is_none() && !env_verify) {
            return engine(u.trace.clone());
        }
        let trace = if env_verify {
            Trace::ring_verify(DEFAULT_TRACE_CAP)
        } else {
            Trace::ring(DEFAULT_TRACE_CAP)
        };
        let out = engine(trace.clone());
        let data = trace.snapshot().expect("trace was enabled");
        if env_verify {
            // Persist the analysis-grade ring next to the Chrome trace:
            // `pcomm-audit` merges these per-rank `.events` sidecars
            // after a multi-process run. This point is reached on typed
            // failures too (`engine` already returned), so crashed and
            // aborted runs still leave auditable evidence.
            if let Some(path) = &env_json {
                let rank = wire_env.as_ref().map_or(0, |e| e.rank as u16);
                let ev_path = format!("{path}.events");
                if let Err(e) =
                    pcomm_trace::write_events(std::path::Path::new(&ev_path), rank, &data)
                {
                    eprintln!("pcomm: failed to write {ev_path}: {e}");
                }
            }
        }
        if let Some(path) = env_json {
            let json = pcomm_trace::chrome_trace_json(&data.events, data.dropped);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("pcomm: failed to write PCOMM_TRACE={path}: {e}");
            }
        }
        if let Some(path) = env_report {
            let report = pcomm_trace::summary_report(&data.events, data.dropped);
            if let Err(e) = std::fs::write(&path, report) {
                eprintln!("pcomm: failed to write PCOMM_TRACE_REPORT={path}: {e}");
            }
        }
        if env_verify {
            let report = pcomm_verify::analyze(&data.events);
            if !report.is_clean() {
                eprintln!("{report}");
                if out.is_ok() {
                    return Err(PcommError::Misuse {
                        rank: None,
                        detail: format!(
                            "PCOMM_VERIFY: {} findings (see report above)",
                            report.finding_count()
                        ),
                    });
                }
            }
        }
        out
    }

    /// Run with verification instrumentation on and return the analysis
    /// report alongside the per-rank results. A verify-capable trace is
    /// attached automatically (the one from [`Universe::with_trace`] is
    /// reused if it was created with
    /// [`Trace::ring_verify`](pcomm_trace::Trace::ring_verify)); at
    /// teardown the captured events run through all three
    /// [`pcomm_verify`] passes — happens-before races, wait-for-graph
    /// deadlock verdicts, and protocol lints. The report is returned
    /// even when the run itself failed: a stalled run's report carries
    /// the deadlock-vs-orphan verdict for the stall.
    pub fn run_verified<T, F>(
        &self,
        f: F,
    ) -> (Result<Vec<T>, PcommError>, pcomm_verify::VerifyReport)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let trace = if self.trace.is_verify() {
            self.trace.clone()
        } else {
            Trace::ring_verify(DEFAULT_TRACE_CAP)
        };
        let out = self.run_on(trace.clone(), &f);
        let data = trace.snapshot().expect("trace is enabled");
        (out, pcomm_verify::analyze(&data.events))
    }

    /// Run with the attached trace (see [`Universe::with_trace`]) and
    /// return the per-rank results together with the merged trace data.
    /// Unlike [`Universe::run`], configuration comes only from the
    /// builders — the environment is not consulted — so traced runs are
    /// exactly reproducible.
    pub fn run_traced<T, F>(&self, f: F) -> (Result<Vec<T>, PcommError>, TraceData)
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let trace = if self.trace.is_enabled() {
            self.trace.clone()
        } else {
            Trace::ring(DEFAULT_TRACE_CAP)
        };
        let out = self.run_on(trace.clone(), &f);
        let data = trace.snapshot().expect("trace is enabled");
        (out, data)
    }

    /// The watchdog deadline in effect: explicit, or the chaos default
    /// when a fault plan is set (a chaos run must never hang).
    fn effective_watchdog_ms(&self) -> Option<u64> {
        self.watchdog_ms
            .or(self.fault_plan.as_ref().map(|_| DEFAULT_CHAOS_WATCHDOG_MS))
    }

    fn run_on<T, F>(&self, trace: Trace, f: &F) -> Result<Vec<T>, PcommError>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        install_quiet_abort_hook();
        let fabric = Fabric::new_configured(
            self.n_ranks,
            self.n_shards,
            self.eager_max,
            trace,
            self.fault_plan.clone(),
            Arc::new(crate::transport::SharedMemTransport),
        );
        let watchdog_ms = self.effective_watchdog_ms();
        let results: Vec<Option<T>> = std::thread::scope(|scope| {
            let supervisor_shutdown = Completion::new();
            let supervisor = watchdog_ms.map(|ms| {
                let fabric = Arc::clone(&fabric);
                let shutdown = Arc::clone(&supervisor_shutdown);
                scope.spawn(move || supervise(&fabric, &shutdown, ms))
            });
            let handles: Vec<_> = (0..self.n_ranks)
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    scope.spawn(move || rank_main(&fabric, rank, f))
                })
                .collect();
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("rank wrapper never panics"))
                .collect();
            supervisor_shutdown.set();
            if let Some(s) = supervisor {
                s.join().expect("supervisor never panics");
            }
            results
        });
        // Deliver any reorder hold-backs that outlived the run so their
        // buffers recycle; with every rank done nobody consumes them.
        fabric.flush_held();
        match fabric.take_failure() {
            Some(err) => Err(err),
            None => Ok(results
                .into_iter()
                .map(|r| r.expect("rank produced no result yet no failure was recorded"))
                .collect()),
        }
    }

    /// Run as one rank process of a multiprocess universe: join the
    /// socket mesh, start the progress engine, and run the local rank's
    /// closure on a thread exactly as [`Universe::run_on`] would.
    fn run_wire<T, F>(
        &self,
        env: &pcomm_net::MultiprocEnv,
        trace: Trace,
        f: &F,
    ) -> Result<Vec<T>, PcommError>
    where
        T: Send + Clone,
        F: Fn(Comm) -> T + Send + Sync,
    {
        install_quiet_abort_hook();
        // The ipc fabric needs a same-host UDS mesh (to pass the memfd),
        // a platform with the raw syscall funnel, and a fault-free plan
        // (wire chaos is a socket concept: the shared segment has no
        // byte stream to corrupt). Anything else falls back to sockets.
        let want_ipc = pcomm_net::launch::fabric_from_env() == pcomm_net::launch::FabricKind::Ipc;
        let use_ipc = want_ipc
            && pcomm_net::sys::supported()
            && env.backend == pcomm_net::Backend::Uds
            && !self
                .fault_plan
                .as_ref()
                .is_some_and(|p| p.any_wire_faults());
        if want_ipc && !use_ipc {
            eprintln!(
                "pcomm: PCOMM_NET_FABRIC=ipc unavailable here \
                 (needs linux x86_64/aarch64, a UDS mesh, and no wire faults); \
                 falling back to the socket fabric"
            );
        }
        let cfg = pcomm_net::MeshConfig {
            rank: env.rank,
            n_ranks: env.n_ranks,
            dir: env.dir.clone(),
            backend: env.backend,
            seq: next_multiproc_seq(),
            // The segment is one lane per pair; extra mesh sockets
            // would idle after bootstrap.
            lanes: if use_ipc {
                1
            } else {
                pcomm_net::launch::lanes_from_env()
            },
        };
        let mut mesh = pcomm_net::mesh::establish(&cfg).map_err(|e| PcommError::Misuse {
            rank: Some(env.rank),
            detail: format!("multiprocess mesh establishment failed: {e}"),
        })?;
        enum WireEngine {
            Socket(Arc<crate::transport::SocketTransport>),
            Ipc(Arc<crate::transport_ipc::IpcTransport>),
        }
        let engine = if use_ipc {
            let (slots, slab, arena) = pcomm_net::launch::ipc_params_from_env();
            let params = pcomm_net::ipc::IpcParams {
                n_ranks: env.n_ranks,
                ring_slots: slots as u32,
                fifo_bytes: slab as u64,
                arena_bytes: arena as u64,
            };
            let segment = crate::transport_ipc::bootstrap(&mut mesh, params)?;
            // The mesh sockets carried the fd exchange; the segment is
            // the wire from here on.
            drop(mesh);
            WireEngine::Ipc(crate::transport_ipc::IpcTransport::new(
                segment,
                env.rank,
                env.n_ranks,
            ))
        } else {
            WireEngine::Socket(Arc::new(crate::transport::SocketTransport::new(
                mesh,
                cfg,
                self.fault_plan.as_ref(),
            )))
        };
        let transport: Arc<dyn crate::transport::Transport> = match &engine {
            WireEngine::Socket(t) => Arc::clone(t) as _,
            WireEngine::Ipc(t) => Arc::clone(t) as _,
        };
        let fabric = Fabric::new_configured(
            self.n_ranks,
            self.n_shards,
            self.eager_max,
            trace,
            self.fault_plan.clone(),
            transport,
        );
        match &engine {
            WireEngine::Socket(t) => t.start(&fabric)?,
            WireEngine::Ipc(t) => t.start(&fabric)?,
        }
        let watchdog_ms = self.effective_watchdog_ms();
        let rank = env.rank;
        let result: Option<T> = std::thread::scope(|scope| {
            let supervisor_shutdown = Completion::new();
            let supervisor = watchdog_ms.map(|ms| {
                let fabric = Arc::clone(&fabric);
                let shutdown = Arc::clone(&supervisor_shutdown);
                scope.spawn(move || supervise(&fabric, &shutdown, ms))
            });
            let handle = {
                let fabric = Arc::clone(&fabric);
                scope.spawn(move || rank_main(&fabric, rank, f))
            };
            let result = handle.join().expect("rank wrapper never panics");
            supervisor_shutdown.set();
            if let Some(s) = supervisor {
                s.join().expect("supervisor never panics");
            }
            result
        });
        fabric.flush_held();
        // Closing barrier, goodbye frames, thread joins — never unwinds.
        match &engine {
            WireEngine::Socket(t) => t.finalize(&fabric),
            WireEngine::Ipc(t) => t.finalize(&fabric),
        }
        match fabric.take_failure() {
            Some(err) => Err(err),
            None => {
                let local = result.expect("rank produced no result yet no failure was recorded");
                Ok(vec![local; self.n_ranks])
            }
        }
    }

    /// Run this universe as `n_ranks` OS *processes* connected by the
    /// socket transport, without an external launcher: the calling
    /// process re-executes itself (same program, same arguments) once
    /// per extra rank with the `PCOMM_NET_*` environment set, then
    /// becomes rank 0 itself. Inside an already-launched rank process
    /// (environment present — e.g. under `pcomm-launch`, or in one of
    /// the children this very call spawned) it is exactly
    /// [`Universe::run`].
    ///
    /// The re-execution makes the program SPMD, so everything before
    /// this call runs once per rank process; call it early in `main`,
    /// and note that every later `Universe::run` in the program also
    /// runs multiprocess (the environment stays set — universes must
    /// stay SPMD-aligned across the rank processes, like MPI programs
    /// under `mpirun`).
    pub fn run_multiprocess<T, F>(&self, f: F) -> Result<Vec<T>, PcommError>
    where
        T: Send + Clone,
        F: Fn(Comm) -> T + Send + Sync,
    {
        if pcomm_net::MultiprocEnv::from_env().is_some() {
            return self.run(f);
        }
        let misuse = |detail: String| PcommError::Misuse { rank: None, detail };
        let dir = pcomm_net::launch::unique_rendezvous_dir()
            .map_err(|e| misuse(format!("multiprocess launch: no rendezvous dir: {e}")))?;
        let backend = match std::env::var(pcomm_net::launch::ENV_BACKEND) {
            Ok(s) => pcomm_net::Backend::parse(&s)
                .ok_or_else(|| misuse(format!("invalid {}={s}", pcomm_net::launch::ENV_BACKEND)))?,
            Err(_) => pcomm_net::Backend::Uds,
        };
        let exe = std::env::current_exe()
            .map_err(|e| misuse(format!("multiprocess launch: current_exe failed: {e}")))?;
        let spmd_env = pcomm_net::MultiprocEnv {
            rank: 0,
            n_ranks: self.n_ranks,
            dir: dir.clone(),
            backend,
        };
        let args: Vec<std::ffi::OsString> = std::env::args_os().skip(1).collect();
        let mut children = Vec::new();
        for rank in 1..self.n_ranks {
            let mut cmd = std::process::Command::new(&exe);
            cmd.args(&args);
            spmd_env.apply_to(&mut cmd, rank);
            match cmd.spawn() {
                Ok(child) => children.push((rank, child)),
                Err(e) => {
                    for (_, mut c) in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                    return Err(misuse(format!(
                        "multiprocess launch: spawning rank {rank} failed: {e}"
                    )));
                }
            }
        }
        // Become rank 0. The variables stay set so any later universe in
        // this program run is multiprocess too, matching the children
        // (which re-execute the whole program with them set from birth).
        std::env::set_var(pcomm_net::launch::ENV_RANK, "0");
        std::env::set_var(pcomm_net::launch::ENV_RANKS, self.n_ranks.to_string());
        std::env::set_var(pcomm_net::launch::ENV_DIR, &dir);
        std::env::set_var(pcomm_net::launch::ENV_BACKEND, backend.name());
        let out = self.run(f);
        let mut child_failure = None;
        for (rank, mut child) in children {
            let code = match child.wait() {
                Ok(status) => status.code().unwrap_or(101),
                Err(_) => 101,
            };
            if code != 0 && child_failure.is_none() {
                child_failure = Some((rank, code));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        match (out, child_failure) {
            (Ok(results), None) => Ok(results),
            (Err(e), _) => Err(e),
            (Ok(_), Some((rank, code))) => Err(PcommError::PeerPanicked {
                rank,
                message: format!("rank process exited with code {code}"),
            }),
        }
    }

    /// [`Universe::run_multiprocess`] with a cross-process audit: every
    /// rank process records an analysis-grade trace ring and persists
    /// it on exit (clean or failed); the launching process then merges
    /// the per-rank `.events` sidecars and runs
    /// [`pcomm_verify::audit`] — the wire-protocol FSM, stream-ledger,
    /// and cross-process happens-before passes — over the whole run.
    ///
    /// The report is `Some` only in the launching process; the
    /// re-executed rank processes return `None` (their evidence is the
    /// persisted ring, audited by the launcher). A missing or
    /// unreadable sidecar also yields `None`, with the reason on
    /// stderr, rather than inventing a verdict from partial evidence.
    pub fn run_multiprocess_verified<T, F>(
        &self,
        f: F,
    ) -> (
        Result<Vec<T>, PcommError>,
        Option<pcomm_verify::AuditReport>,
    )
    where
        T: Send + Clone,
        F: Fn(Comm) -> T + Send + Sync,
    {
        if pcomm_net::MultiprocEnv::from_env().is_some() {
            // Child rank process: `PCOMM_TRACE` / `PCOMM_VERIFY` came
            // with the spawn environment, so plain `run` persists the
            // ring this process contributes to the launcher's audit.
            return (self.run_multiprocess(f), None);
        }
        static AUDIT_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = AUDIT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("pcomm-audit-{}-{seq}", std::process::id()));
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!(
                "pcomm: audit dir {} failed: {e}; running unaudited",
                dir.display()
            );
            return (self.run_multiprocess(f), None);
        }
        let base = dir.join("trace.json");
        let base_str = base.to_string_lossy().into_owned();
        // Set before spawning so the children inherit both; restored
        // after, so later universes in this process behave as before.
        let saved_trace = std::env::var("PCOMM_TRACE").ok();
        let saved_verify = std::env::var("PCOMM_VERIFY").ok();
        std::env::set_var("PCOMM_TRACE", &base_str);
        std::env::set_var("PCOMM_VERIFY", "1");
        let out = self.run_multiprocess(f);
        match saved_trace {
            Some(v) => std::env::set_var("PCOMM_TRACE", v),
            None => std::env::remove_var("PCOMM_TRACE"),
        }
        match saved_verify {
            Some(v) => std::env::set_var("PCOMM_VERIFY", v),
            None => std::env::remove_var("PCOMM_VERIFY"),
        }
        let mut ranks = Vec::with_capacity(self.n_ranks);
        let mut complete = true;
        for k in 0..self.n_ranks {
            let path = format!("{base_str}.rank{k}.events");
            match pcomm_trace::read_events(std::path::Path::new(&path)) {
                Ok(r) => ranks.push(r),
                Err(e) => {
                    eprintln!("pcomm: audit cannot read rank {k} ring: {e}");
                    complete = false;
                }
            }
        }
        let report = complete.then(|| pcomm_verify::audit(&ranks));
        let _ = std::fs::remove_dir_all(&dir);
        (out, report)
    }
}

/// The shared body of every rank thread: run the closure under
/// `catch_unwind`, convert unwinds into recorded failures, and emit the
/// per-thread probe statistics when tracing.
fn rank_main<T, F>(fabric: &Arc<Fabric>, rank: usize, f: &F) -> Option<T>
where
    T: Send,
    F: Fn(Comm) -> T + Send + Sync,
{
    let traced = fabric.trace().is_enabled();
    let before = crate::hotpath::thread_stats();
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        f(Comm::world(Arc::clone(fabric), rank))
    }));
    let out = match out {
        Ok(v) => Some(v),
        Err(payload) => {
            if payload.downcast_ref::<RankAborted>().is_some() {
                // Casualty of an abort some other rank already recorded;
                // nothing to add.
            } else if let Some(e) = payload.downcast_ref::<PcommError>() {
                fabric.fail(e.clone());
            } else {
                fabric.fail(PcommError::PeerPanicked {
                    rank,
                    message: panic_message(payload.as_ref()),
                });
            }
            None
        }
    };
    fabric.mark_finished(rank);
    if traced {
        // The rank thread's completion-probe tally for this run: how
        // often probes stayed on the single-load fast path vs fell back
        // to spin-then-park.
        let after = crate::hotpath::thread_stats();
        fabric
            .trace()
            .emit(rank as u16, || pcomm_trace::EventKind::ProbeStats {
                fast_probes: after.completion_fast_probes - before.completion_fast_probes,
                slow_waits: after.completion_slow_waits - before.completion_slow_waits,
            });
    }
    out
}

/// Per-process counter of multiprocess universes. All rank processes of
/// an SPMD program execute the same universes in the same order, so the
/// counter yields the same sequence number in each — it names the mesh
/// the processes rendezvous on (`u<seq>.r<rank>` sockets). Bumped only
/// for multiprocess runs so in-process universes never desynchronize it.
fn next_multiproc_seq() -> u64 {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Silence the default panic hook for the runtime's control-flow unwind
/// ([`RankAborted`]): it is always caught by the rank wrapper and the
/// real error surfaced as `Err`, so the default hook's "thread panicked"
/// backtrace would make every clean abort look like a crash. Installed
/// once, wrapping (and otherwise delegating to) the previous hook, so
/// genuine panics still print.
fn install_quiet_abort_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RankAborted>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The watchdog supervisor: watches the fabric's activity counter and,
/// when it stays still past the deadline while some thread is blocked in
/// the runtime, records [`PcommError::Stall`] with a structured report
/// and aborts the universe. Reorder hold-backs are flushed after a short
/// quiet period *before* any stall is declared — a held message may be
/// exactly what the blocked ranks are waiting for.
fn supervise(fabric: &Fabric, shutdown: &Completion, watchdog_ms: u64) {
    let interval = Duration::from_millis((watchdog_ms / 4).clamp(10, 250));
    let mut last_activity = fabric.activity();
    let mut quiet_since = Instant::now();
    let mut flushed_this_quiet = false;
    loop {
        if shutdown.wait_timeout(interval) {
            return;
        }
        let now = fabric.activity();
        if now != last_activity {
            last_activity = now;
            quiet_since = Instant::now();
            flushed_this_quiet = false;
            continue;
        }
        let quiet = quiet_since.elapsed();
        if !flushed_this_quiet && quiet >= 2 * interval {
            flushed_this_quiet = true;
            if fabric.flush_held() > 0 {
                continue; // delivered something: that is progress
            }
        }
        if quiet >= Duration::from_millis(watchdog_ms) && fabric.has_blocked_waits() {
            let quiet_ms = quiet.as_millis() as u64;
            let report = fabric.stall_report(watchdog_ms, quiet_ms);
            let blocked = report.blocked.len() as u16;
            fabric.trace().emit(0, || EventKind::StallDetected {
                blocked,
                watchdog_ms,
                quiet_ms,
            });
            // One analysis-grade edge per blocked wait: the wait-for
            // graph the deadlock analyzer builds its cycle search from.
            for b in &report.blocked {
                fabric
                    .trace()
                    .emit_verify(b.rank as u16, || EventKind::VerifyBlocked {
                        peer: b.peer.map(|p| p as u16),
                        tag: b.tag,
                    });
            }
            fabric.fail(PcommError::Stall(Box::new(report)));
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_collects_results_in_rank_order() {
        let out = Universe::new(4).run(|comm| comm.rank() * 10).unwrap();
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn comm_world_properties() {
        let sizes = Universe::new(3)
            .run(|comm| (comm.rank(), comm.size()))
            .unwrap();
        assert_eq!(sizes, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        Universe::new(4)
            .run(|comm| {
                arrived.fetch_add(1, Ordering::SeqCst);
                comm.barrier();
                assert_eq!(arrived.load(Ordering::SeqCst), 4);
            })
            .unwrap();
    }

    #[test]
    fn rank_panic_becomes_peer_panicked() {
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 1 {
                    panic!("deliberate test panic");
                }
            })
            .unwrap_err();
        match err {
            PcommError::PeerPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("deliberate test panic"), "{message}");
            }
            other => panic!("expected PeerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn rank_panic_unblocks_peers_waiting_on_it() {
        // Rank 1 dies before sending; rank 0 is blocked in recv. Without
        // abort propagation this deadlocks; with it, run() returns.
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let mut b = [0u8; 1];
                    comm.recv_into(Some(1), Some(7), &mut b);
                } else {
                    panic!("rank 1 dies before sending");
                }
            })
            .unwrap_err();
        assert!(
            matches!(err, PcommError::PeerPanicked { rank: 1, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn run_traced_captures_fabric_events() {
        let (out, data) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1, 2, 3]);
            } else {
                let mut b = [0u8; 3];
                comm.recv_into(Some(0), Some(1), &mut b);
            }
            comm.rank()
        });
        assert_eq!(out.unwrap(), vec![0, 1]);
        assert!(
            data.events
                .iter()
                .any(|e| matches!(e.kind, pcomm_trace::EventKind::EagerSend { .. })),
            "expected an eager send in the trace, got {} events",
            data.events.len()
        );
    }

    #[test]
    fn traced_run_emits_per_rank_probe_stats() {
        let (_, data) = Universe::new(2).run_traced(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1]);
            } else {
                let mut b = [0u8; 1];
                comm.recv_into(Some(0), Some(1), &mut b);
            }
        });
        let stats: Vec<u16> = data
            .events
            .iter()
            .filter(|e| matches!(e.kind, pcomm_trace::EventKind::ProbeStats { .. }))
            .map(|e| e.rank)
            .collect();
        assert_eq!(stats.len(), 2, "one ProbeStats event per rank");
        assert!(stats.contains(&0) && stats.contains(&1));
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::new(0);
    }

    #[test]
    fn run_verified_clean_partitioned_roundtrip() {
        use crate::part::PartOptions;
        let (out, report) = Universe::new(2).with_shards(2).run_verified(|comm| {
            if comm.rank() == 0 {
                let psend = comm.psend_init(1, 7, 4, 256, PartOptions::default());
                psend.start();
                for p in 0..4 {
                    psend.write_partition(p, |buf| buf.fill(p as u8));
                    psend.pready(p);
                }
                psend.wait();
            } else {
                let precv = comm.precv_init(0, 7, 4, 256, PartOptions::default());
                precv.start();
                precv.wait();
                assert_eq!(precv.partition(3)[0], 3);
            }
        });
        out.unwrap();
        assert!(report.is_clean(), "{report}");
        assert!(report.stats.verify_events > 0, "instrumentation was on");
        assert_eq!(report.stats.requests, 1);
    }

    #[test]
    fn run_verified_returns_deadlock_verdict_on_stall() {
        // Two ranks each wait for a message the other never sends: the
        // watchdog stalls out and the analyzer must upgrade the stall to
        // an exact cycle verdict.
        let (out, report) = Universe::new(2).with_watchdog_ms(150).run_verified(|comm| {
            let peer = 1 - comm.rank();
            let mut b = [0u8; 1];
            comm.recv_into(Some(peer), Some(5), &mut b);
        });
        assert!(
            matches!(out, Err(PcommError::Stall(_))),
            "expected a stall, got {out:?}"
        );
        assert!(
            report
                .deadlocks
                .iter()
                .any(|d| matches!(d, pcomm_verify::DeadlockFinding::Cycle { .. })),
            "{report}"
        );
    }
}
