//! The [`Universe`]: spawns rank threads over a shared fabric.

use std::sync::Arc;

use crate::comm::Comm;
use crate::fabric::Fabric;

/// Default eager/rendezvous switch: MPICH's shared-memory eager limit is
/// of this order; messages above it use the zero-copy handoff path.
pub const DEFAULT_EAGER_MAX: usize = 64 * 1024;

/// Builder/runner for a multi-rank in-process job.
#[derive(Debug, Clone)]
pub struct Universe {
    n_ranks: usize,
    n_shards: usize,
    eager_max: usize,
}

impl Universe {
    /// A universe of `n_ranks` ranks with one match shard (VCI) per rank.
    pub fn new(n_ranks: usize) -> Universe {
        assert!(n_ranks >= 1, "need at least one rank");
        Universe {
            n_ranks,
            n_shards: 1,
            eager_max: DEFAULT_EAGER_MAX,
        }
    }

    /// Set the number of match shards per rank (the `MPIR_CVAR_NUM_VCIS`
    /// analogue).
    pub fn with_shards(mut self, n_shards: usize) -> Universe {
        assert!(n_shards >= 1, "need at least one shard");
        self.n_shards = n_shards;
        self
    }

    /// Set the eager/rendezvous threshold in bytes.
    pub fn with_eager_max(mut self, eager_max: usize) -> Universe {
        self.eager_max = eager_max;
        self
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Run `f` once per rank, each on its own OS thread, and collect the
    /// per-rank results in rank order. Panics in any rank propagate.
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Comm) -> T + Send + Sync,
    {
        let fabric = Fabric::new(self.n_ranks, self.n_shards, self.eager_max);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.n_ranks)
                .map(|rank| {
                    let fabric = Arc::clone(&fabric);
                    let f = &f;
                    scope.spawn(move || f(Comm::world(fabric, rank)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_collects_results_in_rank_order() {
        let out = Universe::new(4).run(|comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn comm_world_properties() {
        let sizes = Universe::new(3).run(|comm| (comm.rank(), comm.size()));
        assert_eq!(sizes, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn barrier_synchronizes_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        Universe::new(4).run(|comm| {
            arrived.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(arrived.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Universe::new(0);
    }
}
