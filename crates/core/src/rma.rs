//! One-sided (RMA) communication over shared memory.
//!
//! A window exposes a byte region of the *target* rank; the *origin*
//! `put`s into it directly (a real memcpy into shared memory — the
//! in-process analogue of NIC-driven RDMA). Synchronization:
//!
//! * **Active (PSCW)**: target `post`s, origin `start_epoch`s (blocks for
//!   the post), puts, `complete_epoch`s; target `wait_epoch`s for the
//!   completion notice. Control messages are real 0/8-byte sends on the
//!   window's context.
//! * **Passive**: `lock` (MPI_MODE_NOCHECK — local), puts, `flush`
//!   (memory fence; local puts are synchronous so remote completion is
//!   immediate), `unlock`. Exposure is managed by the caller with 0-byte
//!   messages, as the paper's passive strategies do (§2.3.3).
//!
//! # Safety
//!
//! Window memory is an `UnsafeCell` shared across threads. Soundness
//! rests on the epoch protocol: the target must not read the window
//! between its `post`/exposure and the matching `wait_epoch`/done
//! notification, and origins must not put outside an epoch. The control
//! messages travel through mutexes, establishing the happens-before
//! edges that make the plain memcpys race-free under that protocol.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pcomm_trace::EventKind;

use crate::comm::Comm;

/// Tag for the active-target "post" notification.
const TAG_POST: i64 = -11;
/// Tag for the active-target "complete" notification (payload: put count).
const TAG_COMPLETE: i64 = -12;

/// Shared window memory (registered in the fabric by the target).
pub struct WinMem {
    data: UnsafeCell<Box<[u8]>>,
    /// Puts that have landed in the current exposure epoch.
    arrived: AtomicU64,
}

// SAFETY: access is governed by the epoch protocol documented above.
unsafe impl Sync for WinMem {}
unsafe impl Send for WinMem {}

impl WinMem {
    fn new(len: usize) -> Arc<WinMem> {
        Arc::new(WinMem {
            data: UnsafeCell::new(vec![0u8; len].into_boxed_slice()),
            arrived: AtomicU64::new(0),
        })
    }

    pub(crate) fn len(&self) -> usize {
        // SAFETY: the length is fixed at construction; reading it never
        // aliases the window contents concurrent `put`s may be writing.
        unsafe { (&*self.data.get()).len() }
    }

    /// Apply a put that arrived over the wire (target process's reader
    /// thread). Bounds are checked by the caller.
    pub(crate) fn apply_put(&self, offset: usize, data: &[u8]) {
        if !data.is_empty() {
            // SAFETY: epoch protocol — the target does not read the
            // window between exposure and completion, and the completion
            // notice travels the same FIFO socket *after* every put of
            // the epoch, so no local reader races this copy.
            unsafe {
                let base = (*self.data.get()).as_mut_ptr();
                std::ptr::copy_nonoverlapping(data.as_ptr(), base.add(offset), data.len());
            }
        }
        self.arrived.fetch_add(1, Ordering::Relaxed);
    }

    /// Read a range for a wire get (target process's reader thread).
    /// Bounds are checked by the caller.
    pub(crate) fn read_range(&self, offset: usize, len: usize) -> Vec<u8> {
        // SAFETY: epoch protocol — gets and puts to overlapping ranges
        // in one epoch are erroneous, so nothing writes this range now.
        unsafe { (&*self.data.get())[offset..offset + len].to_vec() }
    }
}

/// Where an origin's window memory lives.
enum OriginBacking {
    /// Target rank in the same process: direct memcpy into shared
    /// memory.
    Local(Arc<WinMem>),
    /// Target rank in another process: puts and gets travel the wire
    /// as one-sided frames applied by the target's progress engine.
    Remote { len: usize },
}

/// Origin side of a window: issues `put`s toward the target.
pub struct WinOrigin {
    comm: Comm,
    target: usize,
    backing: OriginBacking,
    puts_in_epoch: AtomicU64,
}

/// Target side of a window: owns the exposed memory.
pub struct WinTarget {
    comm: Comm,
    origin: usize,
    mem: Arc<WinMem>,
}

impl Comm {
    /// Collective window creation: the target rank calls with
    /// `origin == false` and allocates `len` bytes; the origin attaches.
    /// Both ranks must call in the same creation order.
    pub fn win_create_origin(&self, target: usize, len: usize) -> WinOrigin {
        let ctx = self.win_ctx();
        let backing = if self.fabric().is_local(target) {
            let mem = self.fabric().attach_win(ctx, self.rank());
            assert_eq!(mem.len(), len, "window size mismatch between ranks");
            OriginBacking::Local(mem)
        } else {
            let announced = self.fabric().remote_wait_win_announce(self.rank(), ctx);
            assert_eq!(announced, len, "window size mismatch between ranks");
            OriginBacking::Remote { len }
        };
        let shard = self.fabric().shard_of_ctx(ctx);
        WinOrigin {
            comm: self.with_ctx(ctx, shard),
            target,
            backing,
            puts_in_epoch: AtomicU64::new(0),
        }
    }

    /// Collective window creation, target side: allocates and exposes
    /// `len` bytes to `origin`.
    pub fn win_create_target(&self, origin: usize, len: usize) -> WinTarget {
        let ctx = self.win_ctx();
        let mem = WinMem::new(len);
        self.fabric().register_win(ctx, Arc::clone(&mem));
        if !self.fabric().is_local(origin) {
            // The origin's process cannot attach our memory: tell it the
            // window exists (and how big it is) over the wire.
            self.fabric().remote_announce_win(origin, ctx, len);
        }
        let shard = self.fabric().shard_of_ctx(ctx);
        WinTarget {
            comm: self.with_ctx(ctx, shard),
            origin,
            mem,
        }
    }
}

impl WinOrigin {
    /// Window size in bytes.
    pub fn len(&self) -> usize {
        match &self.backing {
            OriginBacking::Local(mem) => mem.len(),
            OriginBacking::Remote { len } => *len,
        }
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `MPI_Win_lock(MPI_MODE_NOCHECK)`: local only.
    pub fn lock(&self) {}

    /// `MPI_Win_unlock`: flush and release.
    pub fn unlock(&self) {
        self.flush();
    }

    /// `MPI_Put`: copy `data` into the target window at `offset`.
    ///
    /// Must be called within an epoch (passive lock or active
    /// start/complete); the copy is performed by the calling thread.
    pub fn put(&self, offset: usize, data: &[u8]) {
        let end = offset.checked_add(data.len()).expect("offset overflow");
        assert!(end <= self.len(), "put exceeds window");
        match &self.backing {
            OriginBacking::Local(mem) => {
                if !data.is_empty() {
                    // SAFETY: epoch protocol — the target does not read
                    // between exposure and completion; concurrent puts
                    // touch disjoint ranges by API contract (as in MPI,
                    // overlapping puts in one epoch are erroneous).
                    unsafe {
                        let base = (*mem.data.get()).as_mut_ptr();
                        std::ptr::copy_nonoverlapping(data.as_ptr(), base.add(offset), data.len());
                    }
                }
                // Relaxed: these are pure tallies. The target only reads
                // them after the TAG_COMPLETE message, whose send/recv
                // (plus the SeqCst fence in `flush`) already orders every
                // put of the epoch before the read — an extra AcqRel per
                // put buys nothing.
                mem.arrived.fetch_add(1, Ordering::Relaxed);
            }
            OriginBacking::Remote { .. } => {
                // The target's reader applies the put (and bumps its
                // `arrived` counter) before any later frame from us —
                // including the TAG_COMPLETE eager message — so the
                // epoch accounting holds across the wire.
                self.comm
                    .fabric()
                    .remote_put(self.target, self.comm.ctx(), offset, data);
            }
        }
        self.puts_in_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// `MPI_Get`: copy `buf.len()` bytes from the target window at
    /// `offset` into `buf`. Same epoch contract as [`WinOrigin::put`];
    /// in-process the read is a synchronous memcpy by the calling thread.
    pub fn get(&self, offset: usize, buf: &mut [u8]) {
        let end = offset.checked_add(buf.len()).expect("offset overflow");
        assert!(end <= self.len(), "get exceeds window");
        match &self.backing {
            OriginBacking::Local(mem) => {
                if !buf.is_empty() {
                    // SAFETY: epoch protocol — no concurrent writer to
                    // this range (gets and puts to overlapping ranges in
                    // one epoch are erroneous, as in MPI).
                    unsafe {
                        let base = (&*mem.data.get()).as_ptr();
                        std::ptr::copy_nonoverlapping(
                            base.add(offset),
                            buf.as_mut_ptr(),
                            buf.len(),
                        );
                    }
                }
            }
            OriginBacking::Remote { .. } => {
                if !buf.is_empty() {
                    let data = self.comm.fabric().remote_get(
                        self.comm.rank(),
                        self.target,
                        self.comm.ctx(),
                        offset,
                        buf.len(),
                    );
                    buf.copy_from_slice(&data);
                }
            }
        }
    }

    /// `MPI_Win_flush`: make all puts of this epoch remotely visible.
    /// In-process puts are synchronous memcpys, so this is a fence. Over
    /// the wire the per-peer socket is FIFO and the target's reader
    /// applies each put before reading any later frame, so the fence
    /// semantics carry over without a round trip.
    pub fn flush(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Active sync: `MPI_Win_start` — block until the target posted.
    pub fn start_epoch(&self) {
        let trace = self.comm.fabric().trace();
        let t0 = trace.now_ns();
        let mut b = [0u8; 1];
        self.comm
            .recv_into(Some(self.target), Some(TAG_POST), &mut b);
        trace.emit_span(t0, self.comm.rank() as u16, |start, dur| {
            EventKind::EpochOpen {
                win: (self.comm.ctx() & 0xffff) as u16,
                wait_ns: dur,
            }
            .at(start)
        });
    }

    /// Active sync: `MPI_Win_complete` — notify the target with the put
    /// count of this epoch.
    pub fn complete_epoch(&self) {
        self.flush();
        let n = self.puts_in_epoch.swap(0, Ordering::AcqRel);
        self.comm.send(self.target, TAG_COMPLETE, &n.to_le_bytes());
        self.comm
            .fabric()
            .trace()
            .emit(self.comm.rank() as u16, || EventKind::EpochClose {
                win: (self.comm.ctx() & 0xffff) as u16,
                puts: n,
            });
    }
}

impl WinTarget {
    /// Window size in bytes.
    pub fn len(&self) -> usize {
        self.mem.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Active sync: `MPI_Post` — expose the window.
    pub fn post(&self) {
        self.mem.arrived.store(0, Ordering::Release);
        self.comm.send(self.origin, TAG_POST, &[0]);
    }

    /// Active sync: `MPI_Win_wait` — wait for the origin's completion
    /// notice and verify all announced puts landed.
    pub fn wait_epoch(&self) {
        let mut b = [0u8; 8];
        self.comm
            .recv_into(Some(self.origin), Some(TAG_COMPLETE), &mut b);
        let announced = u64::from_le_bytes(b);
        // Puts are synchronous; by the time the complete notice (which is
        // sent after them) arrives, they are all visible.
        let arrived = self.mem.arrived.load(Ordering::Acquire);
        assert!(
            arrived >= announced,
            "epoch ended with {arrived}/{announced} puts visible"
        );
    }

    /// Mutate the window contents locally (only outside exposure epochs,
    /// as MPI allows local window access between epochs).
    pub fn write(&self, f: impl FnOnce(&mut [u8])) {
        // SAFETY: epoch protocol — no origin accesses the window outside
        // an exposure epoch.
        f(unsafe { &mut *self.mem.data.get() });
    }

    /// Read the window contents (only outside exposure epochs).
    pub fn read(&self, f: impl FnOnce(&[u8])) {
        // SAFETY: epoch protocol — caller reads only after wait_epoch /
        // done notification, when no origin is writing.
        f(unsafe { &*self.mem.data.get() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    #[test]
    fn active_epoch_put_roundtrip() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let win = comm.win_create_origin(1, 256);
                    win.start_epoch();
                    win.put(0, &[1, 2, 3]);
                    win.put(100, &[9; 10]);
                    win.complete_epoch();
                } else {
                    let win = comm.win_create_target(0, 256);
                    win.post();
                    win.wait_epoch();
                    win.read(|b| {
                        assert_eq!(&b[..3], &[1, 2, 3]);
                        assert_eq!(&b[100..110], &[9; 10]);
                        assert_eq!(b[50], 0);
                    });
                }
            })
            .unwrap();
    }

    #[test]
    fn epochs_reusable_across_iterations() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let win = comm.win_create_origin(1, 64);
                    for it in 0..10u8 {
                        win.start_epoch();
                        win.put(0, &[it; 64]);
                        win.complete_epoch();
                    }
                } else {
                    let win = comm.win_create_target(0, 64);
                    for it in 0..10u8 {
                        win.post();
                        win.wait_epoch();
                        win.read(|b| assert!(b.iter().all(|&x| x == it)));
                    }
                }
            })
            .unwrap();
    }

    #[test]
    fn passive_puts_with_explicit_exposure() {
        // The paper's passive pattern: exposure via 0B messages.
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let win = comm.win_create_origin(1, 128);
                    win.lock();
                    let mut b = [0u8; 1];
                    comm.recv_into(Some(1), Some(50), &mut b); // exposure
                    win.put(0, &[7; 128]);
                    win.flush();
                    comm.send(1, 51, &[0]); // done
                    win.unlock();
                } else {
                    let win = comm.win_create_target(0, 128);
                    comm.send(0, 50, &[0]); // expose
                    let mut b = [0u8; 1];
                    comm.recv_into(Some(0), Some(51), &mut b); // done
                    win.read(|buf| assert!(buf.iter().all(|&x| x == 7)));
                }
            })
            .unwrap();
    }

    #[test]
    fn get_reads_target_memory() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let win = comm.win_create_origin(1, 64);
                    win.start_epoch(); // target filled its window before post
                    let mut buf = [0u8; 16];
                    win.get(8, &mut buf);
                    assert!(buf.iter().all(|&b| b == 0x5A), "get returned {buf:?}");
                    win.put(0, &[1; 4]);
                    win.complete_epoch();
                } else {
                    let win = comm.win_create_target(0, 64);
                    // Local window fill outside any exposure epoch.
                    win.write(|b| b.fill(0x5A));
                    win.post();
                    win.wait_epoch();
                    win.read(|b| assert_eq!(&b[..4], &[1; 4]));
                }
            })
            .unwrap();
    }

    #[test]
    fn multithreaded_puts_disjoint_ranges() {
        Universe::new(2)
            .run(|comm| {
                let n_threads = 8;
                let chunk = 64;
                if comm.rank() == 0 {
                    let win = Arc::new(comm.win_create_origin(1, n_threads * chunk));
                    win.start_epoch();
                    std::thread::scope(|s| {
                        for t in 0..n_threads {
                            let win = Arc::clone(&win);
                            s.spawn(move || {
                                win.put(t * chunk, &vec![t as u8 + 1; chunk]);
                            });
                        }
                    });
                    win.complete_epoch();
                } else {
                    let win = comm.win_create_target(0, n_threads * chunk);
                    win.post();
                    win.wait_epoch();
                    win.read(|b| {
                        for t in 0..n_threads {
                            assert!(
                                b[t * chunk..(t + 1) * chunk]
                                    .iter()
                                    .all(|&x| x == t as u8 + 1),
                                "thread {t}'s chunk corrupted"
                            );
                        }
                    });
                }
            })
            .unwrap();
    }

    #[test]
    fn multiple_windows_per_rank_pair() {
        Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let w1 = comm.win_create_origin(1, 16);
                    let w2 = comm.win_create_origin(1, 32);
                    w1.start_epoch();
                    w1.put(0, &[1; 16]);
                    w1.complete_epoch();
                    w2.start_epoch();
                    w2.put(0, &[2; 32]);
                    w2.complete_epoch();
                } else {
                    let w1 = comm.win_create_target(0, 16);
                    let w2 = comm.win_create_target(0, 32);
                    w1.post();
                    w1.wait_epoch();
                    w2.post();
                    w2.wait_epoch();
                    w1.read(|b| assert!(b.iter().all(|&x| x == 1)));
                    w2.read(|b| assert!(b.iter().all(|&x| x == 2)));
                }
            })
            .unwrap();
    }

    #[test]
    fn oversized_put_returns_peer_panicked() {
        let err = Universe::new(2)
            .run(|comm| {
                if comm.rank() == 0 {
                    let win = comm.win_create_origin(1, 8);
                    win.put(4, &[0; 8]);
                } else {
                    let _win = comm.win_create_target(0, 8);
                }
            })
            .unwrap_err();
        match err {
            crate::PcommError::PeerPanicked { rank, message } => {
                assert_eq!(rank, 0);
                assert!(message.contains("put exceeds window"), "{message}");
            }
            other => panic!("expected PeerPanicked, got {other:?}"),
        }
    }
}
